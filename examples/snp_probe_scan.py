"""SNP-tolerant probe scanning.

The paper's introduction motivates k-mismatch search with polymorphisms:
"due to polymorphisms or mutations among individuals ... the read may
disagree in some positions at any of its occurrences in the genome."

This example makes that concrete: take probe sequences designed against a
reference genome, then scan an *individual's* genome that carries SNPs.
Exact search misses the mutated loci; k-mismatch search recovers them and
pinpoints each variant position.

    python examples/snp_probe_scan.py
"""

import random

from repro import KMismatchIndex
from repro.simulate import GenomeConfig, generate_genome

PROBE_LENGTH = 40
N_PROBES = 8
SNPS_PER_LOCUS = 2


def main() -> None:
    rng = random.Random(21)
    reference = generate_genome(GenomeConfig(length=30_000, repeat_fraction=0.2, seed=20))

    # Design probes against the reference, at non-overlapping sites so
    # each locus carries exactly its own SNPs.
    probe_sites = []
    while len(probe_sites) < N_PROBES:
        site = rng.randrange(0, len(reference) - PROBE_LENGTH)
        if all(abs(site - other) >= PROBE_LENGTH for other in probe_sites):
            probe_sites.append(site)
    probe_sites.sort()
    probes = [reference[site:site + PROBE_LENGTH] for site in probe_sites]

    # The individual's genome: the reference plus SNPs inside every probe
    # locus (plus background variation elsewhere).
    individual = list(reference)
    planted = {}
    for site in probe_sites:
        offsets = sorted(rng.sample(range(PROBE_LENGTH), SNPS_PER_LOCUS))
        planted[site] = offsets
        for off in offsets:
            base = individual[site + off]
            individual[site + off] = rng.choice([b for b in "acgt" if b != base])
    individual = "".join(individual)

    index = KMismatchIndex(individual)

    print(f"{N_PROBES} probes of {PROBE_LENGTH} bp; each locus carries "
          f"{SNPS_PER_LOCUS} SNPs in the individual\n")
    header = f"{'probe site':>10} | {'exact':>5} | {'k=2 hits':>8} | detected SNP offsets"
    print(header)
    print("-" * len(header))
    recovered = 0
    for site, probe in zip(probe_sites, probes):
        exact = index.count(probe)
        hits = index.search(probe, k=SNPS_PER_LOCUS)
        at_site = [h for h in hits if h.start == site]
        detected = list(at_site[0].mismatches) if at_site else []
        if detected == planted[site]:
            recovered += 1
        print(f"{site:>10} | {exact:>5} | {len(hits):>8} | {detected}")

    print(f"\nrecovered the exact SNP offsets at {recovered}/{N_PROBES} loci")
    assert recovered == N_PROBES


if __name__ == "__main__":
    main()
