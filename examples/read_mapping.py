"""Read mapping: the paper's motivating workload end to end.

Simulates a genome and a batch of wgsim-style reads (polymorphisms +
sequencing errors, both strands), indexes the genome once, then maps
every read back allowing k mismatches — reporting sensitivity and the
average matching time, the metric of the paper's Fig. 11.

    python examples/read_mapping.py
"""

import time

from repro import KMismatchIndex
from repro.simulate import (
    GenomeConfig,
    ReadConfig,
    generate_genome,
    reverse_complement,
    simulate_reads,
)

GENOME_BP = 60_000
N_READS = 40
READ_LENGTH = 80
K = 4


def main() -> None:
    print(f"simulating a {GENOME_BP:,} bp genome ...")
    genome = generate_genome(GenomeConfig(length=GENOME_BP, repeat_fraction=0.35, seed=11))
    reads = simulate_reads(genome, ReadConfig(n_reads=N_READS, length=READ_LENGTH, seed=12))

    print("building the BWT index ...")
    start = time.perf_counter()
    index = KMismatchIndex(genome)
    print(f"  built in {time.perf_counter() - start:.2f}s "
          f"({index.nbytes() / GENOME_BP:.1f} index bytes/char)")

    mapped = 0
    multimapped = 0
    total_time = 0.0
    for read in reads:
        # Real aligners try both strands; a reverse-strand read maps via
        # its reverse complement.
        query = read.sequence
        start = time.perf_counter()
        hits = index.search(query, K)
        if not hits:
            hits = index.search(reverse_complement(query), K)
        total_time += time.perf_counter() - start

        if any(h.start == read.position for h in hits):
            mapped += 1
        if len(hits) > 1:
            multimapped += 1

    print(f"\nmapped {mapped}/{N_READS} reads to their true origin "
          f"(k={K}, {multimapped} had multiple hits)")
    print(f"average matching time per read: {1000 * total_time / N_READS:.2f} ms")

    # A single read in detail.
    read = reads[0]
    hits = index.search(read.forward_sequence(), K)
    print(f"\nexample read: true position {read.position}, "
          f"{read.n_mutations} mutation(s), strand "
          f"{'-' if read.reverse_strand else '+'}")
    for hit in hits[:5]:
        print(f"  hit at {hit.start} with {hit.n_mismatches} mismatch(es) "
              f"at offsets {list(hit.mismatches)}")

    # Paired-end mapping: the mate rescues ambiguous placements.
    from repro.mapping import best_pair
    from repro.simulate.pairs import PairedReadConfig, simulate_read_pairs

    pairs = simulate_read_pairs(
        genome,
        PairedReadConfig(n_pairs=10, read_length=READ_LENGTH,
                         insert_size=400, insert_std=40, seed=13),
    )
    rescued = 0
    for pair in pairs:
        placement = best_pair(index, pair.read1, pair.read2, k_max=K,
                              min_fragment=100, max_fragment=800)
        if placement is not None and placement.start == pair.position1:
            rescued += 1
    print(f"\npaired-end: {rescued}/{len(pairs)} pairs placed concordantly "
          f"at their true fragment")


if __name__ == "__main__":
    main()
