"""Problem variants and multi-record targets in one tour.

Shows the features beyond plain k-mismatch search: k-errors (Levenshtein)
matching, don't-care wild cards, multi-record collections (FASTA-style),
index persistence, and the analytical occurrence model used to pick
evaluation parameters.

    python examples/variants_and_collections.py
"""

from repro import KMismatchIndex
from repro.analysis import expected_occurrences, recommended_k_for_error_rate
from repro.collection import SequenceCollection
from repro.core.kerrors import best_per_start


def main() -> None:
    # --- k errors: indels, not just substitutions ------------------------
    index = KMismatchIndex("acagacagtt")
    print("k-errors search for 'acgaca' (one deletion away from 'acagaca'):")
    for occ in best_per_start(index.search_edit("acgaca", k=1)):
        window = index.text[occ.start:occ.end()]
        print(f"  window [{occ.start}:{occ.end()}] = {window!r}, distance {occ.distance}")

    # --- don't-cares: IUPAC 'n' positions match anything -------------------
    print("\nwild-card search for 'ana' (n = any base) in 'acagaca':")
    idx2 = KMismatchIndex("acagaca")
    print(f"  starts: {[o.start for o in idx2.search_wildcard('ana')]}")

    # --- multi-record targets ----------------------------------------------
    fasta = """>chr1
acagacagtt
>chr2
ttttacagaa
>plasmid
acagacagac
"""
    collection = SequenceCollection.from_fasta_text(fasta)
    print(f"\ncollection: {collection.names}, {collection.total_length()} bp total")
    print("hits for 'acag' with k=1:")
    for name, occ in collection.search("acag", k=1):
        print(f"  {name}:{occ.start}  ({occ.n_mismatches} mismatch)")

    # --- persistence -----------------------------------------------------------
    payload = index.dumps()
    restored = KMismatchIndex.loads(payload)
    restored.verify()
    print(f"\npersisted and restored index over {len(restored.text)} bp "
          f"({len(payload)} payload chars); self-check passed")

    # --- picking k analytically ---------------------------------------------------
    k99 = recommended_k_for_error_rate(read_length=100, error_rate=0.02)
    noise = expected_occurrences(n=3_000_000, m=100, k=k99)
    print(f"\nfor 100 bp reads at 2% error, k={k99} maps 99% of reads;")
    print(f"expected random-noise hits at that k in a 3 Mbp genome: {noise:.2e}")


if __name__ == "__main__":
    main()
