"""Quickstart: index a target once, run k-mismatch queries against it.

Runs the paper's own worked examples (Sec. I and Sec. IV) through the
public API.

    python examples/quickstart.py
"""

from repro import KMismatchIndex


def main() -> None:
    # --- the paper's Sec. I example -------------------------------------
    target = "ccacacagaagcc"
    pattern = "aaaaacaaac"
    index = KMismatchIndex(target)

    print(f"target  : {target}")
    print(f"pattern : {pattern}")
    print(f"exact occurrences (k=0): {index.count(pattern)}")

    occurrences = index.search(pattern, k=4)
    print(f"occurrences with k=4   : {len(occurrences)}")
    for occ in occurrences:
        window = target[occ.start:occ.start + len(pattern)]
        print(f"  start={occ.start}  window={window}  "
              f"mismatch offsets={list(occ.mismatches)}")

    # --- the paper's Fig. 3 example -------------------------------------
    index2 = KMismatchIndex("acagaca")
    print("\ntarget  : acagaca")
    print("pattern : tcaca, k=2")
    for occ in index2.search("tcaca", k=2):
        print(f"  start={occ.start}  mismatches at pattern offsets {list(occ.mismatches)}")

    # --- search statistics (the paper's n') ------------------------------
    occs, stats = index2.search_with_stats("tcaca", k=2)
    print(f"\nM-tree leaves (n'): {stats.leaves}, "
          f"index nodes expanded: {stats.nodes_expanded}, "
          f"subtrees derived instead of re-searched: {stats.reuse_hits}")


if __name__ == "__main__":
    main()
