"""Method comparison: a miniature of the paper's Fig. 11(a).

Runs the four methods of the paper's evaluation — Algorithm A, the BWT
S-tree of [34], Amir's filter-and-verify, and Cole's suffix-tree search —
over one simulated workload and prints the average matching time per
read for each k.

    python examples/method_comparison.py
"""

from repro.bench.reporting import format_seconds, format_series
from repro.bench.suite import MethodSuite, PAPER_METHODS
from repro.simulate import GenomeConfig, ReadConfig, generate_genome, simulate_reads

GENOME_BP = 50_000
N_READS = 5
READ_LENGTH = 100
K_VALUES = (1, 2, 3)


def main() -> None:
    genome = generate_genome(
        GenomeConfig(length=GENOME_BP, gc_content=0.42, repeat_fraction=0.4, seed=101)
    )
    reads = [
        r.forward_sequence()
        for r in simulate_reads(genome, ReadConfig(n_reads=N_READS, length=READ_LENGTH, seed=7))
    ]
    print(f"target {GENOME_BP:,} bp, {N_READS} reads x {READ_LENGTH} bp")
    print("building per-method structures (BWT index, suffix tree) ...\n")
    suite = MethodSuite(genome)

    series = {method: [] for method in PAPER_METHODS}
    for k in K_VALUES:
        found = set()
        for result in suite.run_all(reads, k):
            series[result.method].append(format_seconds(result.avg_seconds))
            found.add(result.n_occurrences)
        assert len(found) == 1, "methods disagreed!"

    print(format_series("k", list(K_VALUES), series,
                        title="average matching time per read"))
    print("\n(all four methods returned identical occurrence sets)")


if __name__ == "__main__":
    main()
