"""Packed integer sequences.

The paper stores the BWT of a genome with 2 bits per character (Sec. V:
"we use 2 bits to represent a character in {a, c, g, t}").  This module
provides :class:`PackedSequence`, a bit-packed, random-access sequence of
small integer codes, used by the BWT layer to keep the index compact, plus
helpers to encode/decode texts against an :class:`~repro.alphabet.Alphabet`.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List

from .alphabet import Alphabet
from .errors import ReproError

_WORD_BITS = 64


def bits_needed(n_codes: int) -> int:
    """Smallest number of bits able to hold codes ``0 .. n_codes-1``.

    >>> bits_needed(5)   # DNA with sentinel: $ a c g t
    3
    >>> bits_needed(4)
    2
    """
    if n_codes <= 1:
        return 1
    return (n_codes - 1).bit_length()


class PackedSequence:
    """A fixed-width bit-packed sequence of unsigned integers.

    Stores values in 64-bit words, ``width`` bits each, with values allowed
    to straddle word boundaries.  Supports O(1) random access, iteration,
    slicing to a plain list, and equality.

    Parameters
    ----------
    width:
        Bits per element; each stored value must fit in ``width`` bits.
    values:
        Optional initial contents.
    """

    __slots__ = ("_width", "_length", "_words", "_mask")

    def __init__(self, width: int, values: Iterable[int] = ()):
        if not 1 <= width <= _WORD_BITS:
            raise ReproError(f"element width must be in 1..{_WORD_BITS}, got {width}")
        self._width = width
        self._mask = (1 << width) - 1
        self._length = 0
        self._words = array("Q")
        self.extend(values)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, alphabet: Alphabet) -> "PackedSequence":
        """Pack ``text`` using ``alphabet`` codes."""
        return cls(bits_needed(alphabet.size), alphabet.encode(text))

    @classmethod
    def from_words(cls, width: int, length: int, words) -> "PackedSequence":
        """Wrap an existing 64-bit word buffer without copying it.

        ``words`` is anything indexable as unsigned 64-bit values — an
        ``array('Q')`` or a ``memoryview`` cast to ``'Q'`` over an
        ``mmap``-ed index file.  The buffer must hold at least
        ``ceil(length * width / 64)`` words.  Buffer-backed sequences are
        read-only: :meth:`append` fails on them.
        """
        if not 1 <= width <= _WORD_BITS:
            raise ReproError(f"element width must be in 1..{_WORD_BITS}, got {width}")
        if length < 0:
            raise ReproError(f"sequence length must be non-negative, got {length}")
        needed = (length * width + _WORD_BITS - 1) // _WORD_BITS
        if len(words) < needed:
            raise ReproError(
                f"word buffer too small: {len(words)} words for "
                f"{length} x {width}-bit values (need {needed})"
            )
        instance = cls.__new__(cls)
        instance._width = width
        instance._mask = (1 << width) - 1
        instance._length = length
        instance._words = words
        return instance

    def append(self, value: int) -> None:
        """Append one value."""
        if value < 0 or value > self._mask:
            raise ReproError(f"value {value} does not fit in {self._width} bits")
        bit = self._length * self._width
        word, offset = divmod(bit, _WORD_BITS)
        while word >= len(self._words):
            self._words.append(0)
        self._words[word] |= (value << offset) & ((1 << _WORD_BITS) - 1)
        spill = offset + self._width - _WORD_BITS
        if spill > 0:
            if word + 1 >= len(self._words):
                self._words.append(0)
            self._words[word + 1] |= value >> (self._width - spill)
        self._length += 1

    def extend(self, values: Iterable[int]) -> None:
        """Append every value in ``values``."""
        for v in values:
            self.append(v)

    # -- access ------------------------------------------------------------

    @property
    def width(self) -> int:
        """Bits per element."""
        return self._width

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("PackedSequence index out of range")
        bit = index * self._width
        word, offset = divmod(bit, _WORD_BITS)
        value = self._words[word] >> offset
        spill = offset + self._width - _WORD_BITS
        if spill > 0:
            value |= self._words[word + 1] << (self._width - spill)
        return value & self._mask

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self[i]

    def tolist(self) -> List[int]:
        """Unpack into a plain Python list."""
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedSequence):
            return NotImplemented
        return (
            self._width == other._width
            and self._length == other._length
            and self.tolist() == other.tolist()
        )

    def __hash__(self) -> int:
        return hash((self._width, tuple(self)))

    def nbytes(self) -> int:
        """Exact payload size in bytes (the 64-bit word buffer)."""
        return len(self._words) * 8

    @property
    def raw_words(self):
        """The underlying 64-bit word buffer (``array('Q')`` or memoryview).

        This is what the binary index format serializes verbatim; treat
        it as read-only.
        """
        return self._words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedSequence(width={self._width}, len={self._length})"


def pack_text(text: str, alphabet: Alphabet) -> PackedSequence:
    """Convenience wrapper for :meth:`PackedSequence.from_text`."""
    return PackedSequence.from_text(text, alphabet)


def unpack_text(packed: PackedSequence, alphabet: Alphabet) -> str:
    """Inverse of :func:`pack_text`."""
    return alphabet.decode(packed)
