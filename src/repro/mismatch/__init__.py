"""Pattern mismatch-information machinery (paper Sec. IV-B/C).

The speed of Algorithm A comes from never re-deriving how the pattern
disagrees with itself:

* :mod:`repro.mismatch.kangaroo` — O(1) longest-common-extension jumps
  over the pattern (and over text+pattern for verification), the
  Landau–Vishkin/Galil–Giancarlo primitive the paper's ``R`` tables are
  built from;
* :mod:`repro.mismatch.tables` — the tables ``R_1 .. R_{m-1}``: for each
  relative shift ``i``, the positions of the first ``k + 2`` mismatches
  between the overlapping copies of the pattern;
* :mod:`repro.mismatch.merge` — the paper's ``merge(A_1, A_2, β, γ)``
  sort-merge-join over two mismatch arrays, used to derive ``R_ij`` (the
  mismatches between two arbitrary pattern suffixes) and the mismatch
  arrays of derived S-tree paths.
"""

from .kangaroo import PatternSelfMismatchOracle, TextPatternOracle
from .tables import MismatchTables, NO_MISMATCH
from .merge import merge_mismatch_arrays, derive_r_ij

__all__ = [
    "PatternSelfMismatchOracle",
    "TextPatternOracle",
    "MismatchTables",
    "NO_MISMATCH",
    "merge_mismatch_arrays",
    "derive_r_ij",
]
