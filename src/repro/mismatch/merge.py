"""The paper's ``merge`` operator (Sec. IV-B) and ``R_ij`` derivation.

Let ``α``, ``β``, ``γ`` be strings, ``A_1`` the sorted mismatch positions
between ``α`` and ``β``, and ``A_2`` those between ``α`` and ``γ``.
``merge(A_1, A_2, β, γ)`` produces the mismatch positions between ``β`` and
``γ`` without touching ``α``:

* a position in exactly one input array is a guaranteed ``β``/``γ``
  mismatch (one of them equals ``α`` there, the other does not);
* a position in both arrays is ambiguous and resolved by comparing
  ``β``/``γ`` directly (paper step 4);
* a position in neither is a guaranteed match.

This is how Algorithm A turns the precomputed root tables ``R_i``/``R_j``
into ``R_ij`` — the mismatches between two arbitrary pattern suffixes —
in O(k) (paper Proposition 1).

Coordinate convention: positions are 0-based offsets; entries use
:data:`~repro.mismatch.tables.NO_MISMATCH` (``None``) as the paper's ``∞``
padding.  Output positions are clipped to ``min(len(β), len(γ))``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .tables import NO_MISMATCH, MismatchTables

_INF = float("inf")


def _entries(array: Sequence[Optional[int]], window: int) -> List[int]:
    """Strip padding and clip to the comparison window."""
    out = []
    for value in array:
        if value is NO_MISMATCH:
            break
        if value < window:
            out.append(value)
    return out


def merge_mismatch_arrays(
    a1: Sequence[Optional[int]],
    a2: Sequence[Optional[int]],
    beta: str,
    gamma: str,
    limit: Optional[int] = None,
) -> List[int]:
    """Mismatch positions between ``beta`` and ``gamma`` via the paper's merge.

    ``a1``/``a2`` are the mismatch arrays of ``beta``/``gamma`` against a
    common (unseen) string ``α``, padded with ``None``.  The result is
    exact wherever both inputs are exhaustive; with ``limit`` set, at most
    ``limit`` positions are produced (the paper emits ``k + 1``).

    >>> merge_mismatch_arrays([0, 1, 2, 3, None], [0, 2, None, None, None],
    ...                       "cacg", "acg")
    [0, 1, 2, 3]

    (The example is the paper's Fig. 5: ``α = r = tcacg``, ``β = r[1:]``,
    ``γ = r[2:]``; position 3 survives because only β extends that far —
    comparing against a missing character counts as a mismatch, matching
    the paper's "or one of them does not exist".)
    """
    window = max(len(beta), len(gamma))
    short = min(len(beta), len(gamma))
    e1 = _entries(a1, window)
    e2 = _entries(a2, window)
    out: List[int] = []
    p = q = 0
    while p < len(e1) or q < len(e2):
        v1 = e1[p] if p < len(e1) else _INF
        v2 = e2[q] if q < len(e2) else _INF
        if v1 < v2:
            # β disagrees with α here, γ agrees ⇒ β ≠ γ (paper step 3).
            out.append(e1[p])
            p += 1
        elif v2 < v1:
            # Symmetric (paper step 2).
            out.append(e2[q])
            q += 1
        else:
            # Both disagree with α: compare β and γ directly (paper step 4).
            pos = e1[p]
            beta_ch = beta[pos] if pos < len(beta) else None
            gamma_ch = gamma[pos] if pos < len(gamma) else None
            if beta_ch != gamma_ch:
                out.append(pos)
            p += 1
            q += 1
    # Positions past the shorter string are mismatches "because one of them
    # does not exist" (paper Sec. IV-B) — but only those not already found.
    found = set(out)
    out.extend(pos for pos in range(short, window) if pos not in found)
    out.sort()
    return out if limit is None else out[:limit]


def derive_r_ij(tables: MismatchTables, i: int, j: int, limit: Optional[int] = None) -> List[int]:
    """The paper's ``R_ij``: mismatch offsets between suffixes ``i`` and ``j``.

    Executes ``merge(R_i, R_j, r[i .. m-q+i-1], r[j .. m-q+j-1])`` with
    ``q = max(i, j)`` (paper Sec. IV-C, step "create R_ij").  Offsets are
    relative to the suffix starts; the comparison window is the overlap
    ``m - q``.

    Exactness caveat (inherited from the paper's fixed-size tables): the
    result is guaranteed only while both ``R_i`` and ``R_j`` are
    un-truncated within the window; Algorithm A backs this with the
    unbounded kangaroo oracle.
    """
    m = len(tables.pattern)
    q = max(i, j)
    window = m - q
    beta = tables.pattern[i:i + window]
    gamma = tables.pattern[j:j + window]
    return merge_mismatch_arrays(tables.table(i), tables.table(j), beta, gamma, limit=limit)
