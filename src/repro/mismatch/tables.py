"""The pattern self-mismatch tables ``R_1 .. R_{m-1}`` (paper Sec. IV-B).

``R_i`` records the positions of the first ``k + 2`` mismatches between
``r[0 .. m-i-1]`` and ``r[i .. m-1]`` — the overlapping portions of two
copies of the pattern at relative shift ``i``.  The paper stores ``k + 2``
(not ``k + 1``) entries because deriving an ``R_j`` from an ``R_i`` can
consume one extra entry; we follow that convention.

Positions here are **0-based offsets into the overlap** (the paper uses
1-based positions; tests pin the correspondence).  Exhausted entries hold
:data:`NO_MISMATCH`, the analogue of the paper's ``∞`` default.

Construction uses kangaroo jumps, O(k) per shift and O(km) total, which
meets the paper's O(m log m) preprocessing budget for the k ranges used in
its experiments; a direct-scan reference implementation is kept for tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import PatternError
from ..strings.zfunc import prefix_mismatch_positions
from .kangaroo import PatternSelfMismatchOracle

#: Sentinel for "no further mismatch" — the paper's ``∞`` table default.
NO_MISMATCH: Optional[int] = None


class MismatchTables:
    """Precomputed ``R_i`` tables for one pattern and mismatch bound ``k``.

    Parameters
    ----------
    pattern:
        The pattern string ``r``.
    k:
        The mismatch bound; each table keeps ``k + 2`` entries.

    >>> tables = MismatchTables("tcacg", k=3)
    >>> tables.table(1)       # r[0:4]='tcac' vs r[1:5]='cacg'
    (0, 1, 2, 3, None)
    >>> tables.entry_count(1)
    4
    """

    def __init__(self, pattern: str, k: int):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        self._pattern = pattern
        self._k = k
        self._capacity = k + 2
        self._oracle = PatternSelfMismatchOracle(pattern)
        self._tables: List[Tuple[Optional[int], ...]] = [()] * len(pattern)
        self._tables[0] = (NO_MISMATCH,) * self._capacity  # R_0 is trivially empty
        for shift in range(1, len(pattern)):
            found = self._oracle.mismatch_offsets(0, shift, limit=self._capacity)
            padded = tuple(found) + (NO_MISMATCH,) * (self._capacity - len(found))
            self._tables[shift] = padded

    # -- access ---------------------------------------------------------------

    @property
    def pattern(self) -> str:
        """The pattern the tables describe."""
        return self._pattern

    @property
    def k(self) -> int:
        """The mismatch bound used to size the tables."""
        return self._k

    @property
    def capacity(self) -> int:
        """Entries per table (``k + 2``)."""
        return self._capacity

    @property
    def oracle(self) -> PatternSelfMismatchOracle:
        """The kangaroo oracle the tables were built from.

        Algorithm A shares it for the unbounded derivation jumps that back
        up the (truncated) tables.
        """
        return self._oracle

    def table(self, shift: int) -> Tuple[Optional[int], ...]:
        """``R_shift``: padded tuple of the first ``k+2`` mismatch offsets.

        ``shift`` must satisfy ``0 <= shift < m``; ``R_0`` is all
        :data:`NO_MISMATCH` (a string never mismatches itself).
        """
        if not 0 <= shift < len(self._pattern):
            raise PatternError(f"shift {shift} out of range 0..{len(self._pattern) - 1}")
        return self._tables[shift]

    def entry_count(self, shift: int) -> int:
        """The paper's ``γ(R_i)``: number of non-default entries in ``R_shift``."""
        return sum(1 for x in self._tables[shift] if x is not NO_MISMATCH)

    def is_truncated(self, shift: int) -> bool:
        """True when ``R_shift`` filled all ``k+2`` slots (more may exist)."""
        return self._tables[shift][-1] is not NO_MISMATCH

    # -- validation -------------------------------------------------------------

    @staticmethod
    def reference_table(pattern: str, shift: int, capacity: int) -> Tuple[Optional[int], ...]:
        """Direct-scan construction of one table (testing oracle)."""
        found = prefix_mismatch_positions(pattern, shift, capacity)
        return tuple(found) + (NO_MISMATCH,) * (capacity - len(found))
