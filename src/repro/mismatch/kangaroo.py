"""Kangaroo-jump mismatch oracles.

A *kangaroo jump* finds the next mismatch between two aligned strings in
O(1): jump the length of the longest common extension, land on a mismatch.
Two oracles are provided:

* :class:`PatternSelfMismatchOracle` — both strings are suffixes of the
  pattern.  This powers the ``R`` tables of paper Sec. IV-B and the O(k)
  derivation jumps inside Algorithm A's subtree replay.
* :class:`TextPatternOracle` — one string is a window of the target, the
  other the pattern.  This powers O(k)-per-candidate verification in the
  Amir and Landau–Vishkin baselines.

Both are built on :class:`repro.suffix.LCEOracle` (suffix array + LCP +
RMQ), so each jump is a constant-time range-minimum probe.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import PatternError
from ..suffix.lce import LCEOracle

#: Separator for the text#pattern concatenation trick; never matches DNA.
_SEPARATOR = "\x01"


class PatternSelfMismatchOracle:
    """Enumerate mismatches between any two suffixes of one pattern.

    >>> oracle = PatternSelfMismatchOracle("tcacg")
    >>> list(oracle.iter_mismatch_offsets(0, 1))   # r[0:] vs r[1:], overlap 4
    [0, 1, 2, 3]
    >>> oracle.mismatch_offsets(0, 1, limit=2)
    [0, 1]
    """

    __slots__ = ("_pattern", "_lce")

    def __init__(self, pattern: str):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._pattern = pattern
        self._lce = LCEOracle(pattern)

    @property
    def pattern(self) -> str:
        """The pattern the oracle was built over."""
        return self._pattern

    def iter_mismatch_offsets(self, i: int, j: int, window: int = -1) -> Iterator[int]:
        """Yield offsets ``d`` with ``pattern[i+d] != pattern[j+d]`` in order.

        The comparison covers the overlap of the two suffixes, i.e.
        ``d < m - max(i, j)``, further capped by ``window`` when given.
        ``i == j`` yields nothing.
        """
        m = len(self._pattern)
        overlap = m - max(i, j)
        if window >= 0:
            overlap = min(overlap, window)
        if i == j:
            return
        d = 0
        lce = self._lce.lce
        while d < overlap:
            d += lce(i + d, j + d)
            if d >= overlap:
                return
            yield d
            d += 1

    def mismatch_offsets(self, i: int, j: int, limit: int, window: int = -1) -> List[int]:
        """First ``limit`` mismatch offsets between suffixes ``i`` and ``j``."""
        out: List[int] = []
        for d in self.iter_mismatch_offsets(i, j, window):
            out.append(d)
            if len(out) >= limit:
                break
        return out


class TextPatternOracle:
    """Enumerate mismatches between target windows and the pattern in O(k).

    Builds one LCE oracle over ``text + SEP + pattern`` so that comparisons
    between ``text[p:]`` and ``pattern[q:]`` are constant-time.

    >>> oracle = TextPatternOracle("acagaca", "tcaca")
    >>> oracle.count_mismatches(2, cap=4)   # window s[2:7] vs pattern
    2
    >>> oracle.mismatch_positions(2, limit=8)   # s[2:7]='agaca' vs 'tcaca'
    [0, 1]
    """

    __slots__ = ("_text", "_pattern", "_lce", "_pattern_base")

    def __init__(self, text: str, pattern: str):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if _SEPARATOR in text or _SEPARATOR in pattern:
            raise PatternError("inputs may not contain the reserved separator byte")
        self._text = text
        self._pattern = pattern
        self._pattern_base = len(text) + 1
        self._lce = LCEOracle(text + _SEPARATOR + pattern)

    def iter_mismatch_offsets(self, start: int) -> Iterator[int]:
        """Yield offsets ``d`` with ``text[start+d] != pattern[d]``.

        ``start`` is a candidate occurrence start; the window is clipped to
        the text, and offsets beyond the text's end are *not* reported
        (callers reject windows that overrun the text first).
        """
        m = len(self._pattern)
        window = min(m, len(self._text) - start)
        d = 0
        lce = self._lce.lce
        base = self._pattern_base
        while d < window:
            d += lce(start + d, base + d)
            if d >= window:
                return
            yield d
            d += 1

    def count_mismatches(self, start: int, cap: int) -> int:
        """Mismatches of window ``text[start:start+m]`` vs the pattern.

        Stops counting at ``cap + 1``.  Windows overrunning the text count
        as ``cap + 1`` (they can never be occurrences).
        """
        if start < 0 or start + len(self._pattern) > len(self._text):
            return cap + 1
        count = 0
        for _ in self.iter_mismatch_offsets(start):
            count += 1
            if count > cap:
                break
        return count

    def mismatch_positions(self, start: int, limit: int) -> List[int]:
        """First ``limit`` mismatch offsets of the window at ``start``."""
        out: List[int] = []
        for d in self.iter_mismatch_offsets(start):
            out.append(d)
            if len(out) >= limit:
                break
        return out
