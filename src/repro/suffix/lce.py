"""Longest-common-extension oracle ("kangaroo jumps").

``lce(i, j)`` = length of the longest common prefix of ``text[i:]`` and
``text[j:]``, answered in O(1) after O(n log n) preprocessing
(suffix array + Kasai LCP + sparse-table RMQ).

This is the classical kangaroo-jump machinery of Landau–Vishkin / Galil–
Giancarlo, which the paper's related work ([20], [9]) uses to achieve
O(kn + m log m) on-line matching, and which this reproduction uses to

* enumerate the pattern's self-mismatch tables ``R_i`` in O(k) per shift
  (:mod:`repro.mismatch.tables`), and
* verify candidate target positions in O(k) (:mod:`repro.baselines`).
"""

from __future__ import annotations

from .lcp import lcp_array_kasai
from .rmq import SparseTableRMQ
from .suffix_array import rank_array, suffix_array


class LCEOracle:
    """O(1) longest-common-extension queries over a fixed text.

    >>> oracle = LCEOracle("acagaca")
    >>> oracle.lce(0, 4)   # 'acagaca' vs 'aca' share 'aca'
    3
    >>> oracle.lce(0, 0)
    7
    """

    __slots__ = ("_text_len", "_rank", "_rmq")

    def __init__(self, text: str):
        self._text_len = len(text)
        sa = suffix_array(text) if text else [0]
        self._rank = rank_array(sa)
        self._rmq = SparseTableRMQ(lcp_array_kasai(text, sa)) if text else None

    def __len__(self) -> int:
        return self._text_len

    def lce(self, i: int, j: int) -> int:
        """Length of the longest common prefix of ``text[i:]`` and ``text[j:]``.

        Positions may equal ``len(text)`` (empty suffix ⇒ 0).
        """
        n = self._text_len
        if not (0 <= i <= n and 0 <= j <= n):
            raise IndexError(f"positions ({i}, {j}) out of range for text of length {n}")
        if i == j:
            return n - i
        if i == n or j == n:
            return 0
        ri, rj = self._rank[i], self._rank[j]
        if ri > rj:
            ri, rj = rj, ri
        return self._rmq.query(ri + 1, rj + 1)
