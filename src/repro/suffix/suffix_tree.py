"""Ukkonen suffix tree.

The substrate of the Cole-style baseline (paper Sec. V tests "Cole's
method", a brute-force k-mismatch search over a suffix tree of the target
[14]).  Built on-line in O(n) for a constant-size alphabet.

The tree is over ``text + '$'``.  Each node exposes its children keyed by
first edge character; edges carry half-open ``(start, end)`` slices of the
text.  Leaves know the suffix start position they represent, and internal
nodes can enumerate the positions in their subtree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..alphabet import SENTINEL


class _Node:
    """A suffix-tree node; edges are labelled by (start, end) text slices."""

    __slots__ = ("start", "end", "children", "suffix_link", "suffix_index")

    def __init__(self, start: int, end: Optional[int]):
        self.start = start
        #: ``None`` marks a leaf whose end tracks the growing text ("open" edge).
        self.end = end
        self.children: Dict[str, "_Node"] = {}
        self.suffix_link: Optional["_Node"] = None
        self.suffix_index: int = -1

    def edge_length(self, position: int) -> int:
        end = self.end if self.end is not None else position + 1
        return end - self.start


class SuffixTree:
    """Suffix tree of ``text + '$'`` built with Ukkonen's algorithm.

    >>> st = SuffixTree("acagaca")
    >>> st.contains("aga")
    True
    >>> sorted(st.occurrences("aca"))
    [0, 4]
    """

    def __init__(self, text: str):
        if SENTINEL in text:
            raise ValueError("text may not contain the sentinel '$'")
        self.text = text + SENTINEL
        self._root = _Node(-1, -1)
        self._build()
        self._assign_suffix_indices()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        text = self.text
        root = self._root
        active_node = root
        active_edge = 0  # index into text of the active edge's first char
        active_length = 0
        remainder = 0

        for position, ch in enumerate(text):
            remainder += 1
            last_internal: Optional[_Node] = None
            while remainder > 0:
                if active_length == 0:
                    active_edge = position
                edge_char = text[active_edge]
                child = active_node.children.get(edge_char)
                if child is None:
                    # Rule 2: new leaf directly off the active node.
                    active_node.children[edge_char] = _Node(position, None)
                    if last_internal is not None:
                        last_internal.suffix_link = active_node
                        last_internal = None
                else:
                    edge_len = child.edge_length(position)
                    if active_length >= edge_len:
                        # Walk down (skip/count trick).
                        active_edge += edge_len
                        active_length -= edge_len
                        active_node = child
                        continue
                    if text[child.start + active_length] == ch:
                        # Rule 3: char already present; extend implicitly.
                        active_length += 1
                        if last_internal is not None:
                            last_internal.suffix_link = active_node
                            last_internal = None
                        break
                    # Rule 2 with split: divide the edge.
                    split = _Node(child.start, child.start + active_length)
                    active_node.children[edge_char] = split
                    split.children[ch] = _Node(position, None)
                    child.start += active_length
                    split.children[text[child.start]] = child
                    if last_internal is not None:
                        last_internal.suffix_link = split
                    last_internal = split
                remainder -= 1
                if active_node is root and active_length > 0:
                    active_length -= 1
                    active_edge = position - remainder + 1
                elif active_node is not root:
                    active_node = active_node.suffix_link or root
        self._position = len(text) - 1

    def _assign_suffix_indices(self) -> None:
        """Label each leaf with the start position of its suffix (DFS)."""
        n = len(self.text)
        stack: List[tuple] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if not node.children:
                node.suffix_index = n - depth
                continue
            for child in node.children.values():
                stack.append((child, depth + child.edge_length(self._position)))

    # -- queries -----------------------------------------------------------

    def _edge_end(self, node: _Node) -> int:
        return node.end if node.end is not None else len(self.text)

    def _walk(self, pattern: str):
        """Follow ``pattern`` from the root; return (node, chars_into_edge) or None."""
        node = self._root
        i = 0
        while i < len(pattern):
            child = node.children.get(pattern[i])
            if child is None:
                return None
            end = self._edge_end(child)
            j = child.start
            while j < end and i < len(pattern):
                if self.text[j] != pattern[i]:
                    return None
                i += 1
                j += 1
            if i == len(pattern):
                return child, j - child.start
            node = child
        return node, 0

    def contains(self, pattern: str) -> bool:
        """True when ``pattern`` occurs in the text."""
        return bool(pattern) and self._walk(pattern) is not None or pattern == ""

    def occurrences(self, pattern: str) -> List[int]:
        """All 0-based occurrence start positions of ``pattern``."""
        if pattern == "":
            return list(range(len(self.text)))
        landed = self._walk(pattern)
        if landed is None:
            return []
        node, _ = landed
        return [p for p in self._iter_leaf_positions(node) if p + len(pattern) <= len(self.text) - 1]

    def _iter_leaf_positions(self, node: _Node) -> Iterator[int]:
        stack = [node]
        while stack:
            cur = stack.pop()
            if not cur.children:
                yield cur.suffix_index
            else:
                stack.extend(cur.children.values())

    # -- traversal hooks for the Cole baseline -------------------------------

    @property
    def root(self) -> _Node:
        """Root node (for external traversals such as the Cole baseline)."""
        return self._root

    def edge_text(self, node: _Node) -> str:
        """The edge label leading into ``node``."""
        return self.text[node.start:self._edge_end(node)]

    def leaf_positions(self, node: _Node) -> List[int]:
        """Suffix start positions under ``node``."""
        return list(self._iter_leaf_positions(node))

    def node_count(self) -> int:
        """Total number of nodes (root included)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
