"""Suffix-structure substrate.

The BWT array of the paper is constructed through its suffix-array
relationship (paper Sec. III-B, eq. (3)): ``L[i] = $`` when ``H[i] = 0``,
else ``L[i] = s[H[i] - 1]``.  This subpackage supplies:

* three suffix-array constructions (naive sort, prefix doubling, and the
  linear-time SA-IS used in production — the paper cites Hon et al.'s
  space-economical construction, which SA-IS stands in for at our scale);
* Kasai's LCP array and a sparse-table RMQ, which together give O(1)
  longest-common-extension queries (the "kangaroo jumps" behind the
  mismatch tables and the Landau–Vishkin baseline);
* an Ukkonen suffix tree, the substrate of the Cole-style baseline [14].
"""

from .suffix_array import (
    suffix_array_naive,
    suffix_array_doubling,
    suffix_array,
    rank_array,
)
from .sais import sais
from .lcp import lcp_array_kasai
from .rmq import SparseTableRMQ
from .lce import LCEOracle
from .suffix_tree import SuffixTree

__all__ = [
    "suffix_array",
    "suffix_array_naive",
    "suffix_array_doubling",
    "rank_array",
    "sais",
    "lcp_array_kasai",
    "SparseTableRMQ",
    "LCEOracle",
    "SuffixTree",
]
