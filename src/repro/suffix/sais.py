"""SA-IS: linear-time suffix-array construction by induced sorting.

The paper builds its BWT from a suffix array and cites Hon et al. [25] for
a space-economical construction of the human-genome BWT.  At reproduction
scale the relevant property is *linear time*; SA-IS (Nong, Zhang & Chan,
2009) provides it with a compact, dependency-free implementation.

The function operates on integer sequences.  Callers are expected to append
a unique smallest sentinel (code 0) — :func:`repro.suffix.suffix_array`
does this for text inputs.
"""

from __future__ import annotations

from typing import List, Sequence

_L_TYPE = False
_S_TYPE = True


def _classify(text: Sequence[int]) -> List[bool]:
    """Suffix type per position: S (True) or L (False).

    ``suffix[i]`` is S-type iff ``text[i:] < text[i+1:]``; the final
    sentinel is S by definition.
    """
    n = len(text)
    types = [_S_TYPE] * n
    for i in range(n - 2, -1, -1):
        if text[i] > text[i + 1]:
            types[i] = _L_TYPE
        elif text[i] == text[i + 1]:
            types[i] = types[i + 1]
    return types


def _is_lms(types: Sequence[bool], i: int) -> bool:
    """True when position ``i`` is a left-most S-type position."""
    return i > 0 and types[i] is _S_TYPE and types[i - 1] is _L_TYPE


def _bucket_sizes(text: Sequence[int], n_codes: int) -> List[int]:
    sizes = [0] * n_codes
    for c in text:
        sizes[c] += 1
    return sizes


def _bucket_heads(sizes: Sequence[int]) -> List[int]:
    heads = [0] * len(sizes)
    total = 0
    for c, size in enumerate(sizes):
        heads[c] = total
        total += size
    return heads


def _bucket_tails(sizes: Sequence[int]) -> List[int]:
    tails = [0] * len(sizes)
    total = 0
    for c, size in enumerate(sizes):
        total += size
        tails[c] = total - 1
    return tails


def _induce_l(sa: List[int], text: Sequence[int], types: Sequence[bool], sizes: Sequence[int]) -> None:
    heads = _bucket_heads(sizes)
    for i in range(len(sa)):
        j = sa[i] - 1
        if sa[i] > 0 and types[j] is _L_TYPE:
            c = text[j]
            sa[heads[c]] = j
            heads[c] += 1


def _induce_s(sa: List[int], text: Sequence[int], types: Sequence[bool], sizes: Sequence[int]) -> None:
    tails = _bucket_tails(sizes)
    for i in range(len(sa) - 1, -1, -1):
        j = sa[i] - 1
        if sa[i] > 0 and types[j] is _S_TYPE:
            c = text[j]
            sa[tails[c]] = j
            tails[c] -= 1


def _lms_substrings_equal(text: Sequence[int], types: Sequence[bool], a: int, b: int) -> bool:
    """Compare the LMS substrings starting at ``a`` and ``b``."""
    n = len(text)
    if a == n - 1 or b == n - 1:
        return a == b
    i = 0
    while True:
        a_lms = i > 0 and _is_lms(types, a + i)
        b_lms = i > 0 and _is_lms(types, b + i)
        if a_lms and b_lms:
            return True
        if a_lms != b_lms:
            return False
        if text[a + i] != text[b + i]:
            return False
        i += 1


def sais(text: Sequence[int], n_codes: int) -> List[int]:
    """Suffix array of integer sequence ``text`` via induced sorting.

    ``text`` must end with a unique smallest symbol (value 0 occurring
    exactly once, at the end).  ``n_codes`` is the number of distinct codes
    (max value + 1).  Runs in O(n) time.

    >>> sais([1, 2, 1, 3, 1, 2, 1, 0], 4)   # 'acagaca$' with a=1,c=2,g=3
    [7, 6, 4, 0, 2, 5, 1, 3]
    """
    n = len(text)
    if n == 0:
        return []
    if n == 1:
        return [0]

    types = _classify(text)
    sizes = _bucket_sizes(text, n_codes)

    # Step 1: place LMS suffixes at their bucket tails (approximate order),
    # then induce L and S to sort all LMS *substrings*.
    sa = [-1] * n
    tails = _bucket_tails(sizes)
    for i in range(n - 1, -1, -1):
        if _is_lms(types, i):
            c = text[i]
            sa[tails[c]] = i
            tails[c] -= 1
    _induce_l(sa, text, types, sizes)
    _induce_s(sa, text, types, sizes)

    # Step 2: name LMS substrings in the order they appear in sa.
    lms_order = [p for p in sa if _is_lms(types, p)]
    names = [-1] * n
    current = 0
    prev = -1
    for p in lms_order:
        if prev >= 0 and not _lms_substrings_equal(text, types, prev, p):
            current += 1
        names[p] = current
        prev = p
    lms_positions = [i for i in range(n) if _is_lms(types, i)]
    reduced = [names[i] for i in lms_positions]

    # Step 3: order LMS suffixes — recurse if names collide.
    if current + 1 == len(reduced):
        order = [0] * len(reduced)
        for idx, name in enumerate(reduced):
            order[name] = idx
    else:
        order = sais(reduced, current + 1)

    # Step 4: place LMS suffixes in their true order, induce again.
    sa = [-1] * n
    tails = _bucket_tails(sizes)
    for idx in range(len(order) - 1, -1, -1):
        p = lms_positions[order[idx]]
        c = text[p]
        sa[tails[c]] = p
        tails[c] -= 1
    _induce_l(sa, text, types, sizes)
    _induce_s(sa, text, types, sizes)
    return sa
