"""LCP array via Kasai's algorithm.

``lcp[i]`` is the length of the longest common prefix of the suffixes
ranked ``i-1`` and ``i`` in the suffix array (``lcp[0] = 0``).  Combined
with a range-minimum structure this yields O(1) longest-common-extension
queries between arbitrary suffixes — the machinery behind "kangaroo jumps"
used by the mismatch tables (paper Sec. IV-B) and the Landau–Vishkin
baseline.
"""

from __future__ import annotations

from typing import List, Sequence

from .suffix_array import rank_array


def lcp_array_kasai(text: str, sa: Sequence[int]) -> List[int]:
    """Kasai's O(n) LCP construction over ``text + '$'``.

    ``sa`` must be the suffix array of ``text + '$'`` (length
    ``len(text) + 1``).

    >>> from repro.suffix import suffix_array
    >>> lcp_array_kasai("acagaca", suffix_array("acagaca"))
    [0, 0, 1, 3, 1, 0, 2, 0]
    """
    s = text + "\x00"
    n = len(s)
    if len(sa) != n:
        raise ValueError("suffix array length must be len(text) + 1")
    rank = rank_array(sa)
    lcp = [0] * n
    h = 0
    for p in range(n):
        r = rank[p]
        if r == 0:
            h = 0
            continue
        q = sa[r - 1]
        while p + h < n and q + h < n and s[p + h] == s[q + h]:
            h += 1
        lcp[r] = h
        if h > 0:
            h -= 1
    return lcp
