"""Sparse-table range-minimum queries.

O(n log n) preprocessing, O(1) query.  Used to answer range minima over the
LCP array, which turns suffix-array rank intervals into
longest-common-extension answers (:class:`repro.suffix.lce.LCEOracle`).
"""

from __future__ import annotations

from typing import List, Sequence


class SparseTableRMQ:
    """Immutable range-minimum structure over a sequence of integers.

    >>> rmq = SparseTableRMQ([3, 1, 4, 1, 5, 9, 2, 6])
    >>> rmq.query(2, 6)   # min of values[2:6]
    1
    """

    __slots__ = ("_table", "_logs", "_n")

    def __init__(self, values: Sequence[int]):
        n = len(values)
        self._n = n
        logs = [0] * (n + 1)
        for i in range(2, n + 1):
            logs[i] = logs[i // 2] + 1
        self._logs = logs
        table: List[List[int]] = [list(values)]
        length = 1
        while 2 * length <= n:
            prev = table[-1]
            cur = [0] * (n - 2 * length + 1)
            for i in range(len(cur)):
                a, b = prev[i], prev[i + length]
                cur[i] = a if a <= b else b
            table.append(cur)
            length *= 2
        self._table = table

    def __len__(self) -> int:
        return self._n

    def query(self, lo: int, hi: int) -> int:
        """Minimum of ``values[lo:hi]`` (half-open; requires ``lo < hi``)."""
        if not 0 <= lo < hi <= self._n:
            raise IndexError(f"bad RMQ range [{lo}, {hi}) for length {self._n}")
        level = self._logs[hi - lo]
        row = self._table[level]
        a, b = row[lo], row[hi - (1 << level)]
        return a if a <= b else b
