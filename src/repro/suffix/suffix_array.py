"""Suffix-array construction front end.

Three constructions with one contract:

* :func:`suffix_array_naive` — O(n² log n) comparison sort; the oracle the
  others are tested against.
* :func:`suffix_array_doubling` — O(n log² n) prefix doubling; a useful
  mid-scale fallback and a second independent implementation for
  cross-checking.
* :func:`suffix_array` — the production path: encodes the text (appending
  the sentinel) and runs linear-time SA-IS (:mod:`repro.suffix.sais`).

All return the suffix array ``H`` of ``text + '$'`` as 0-based start
positions: ``H[i]`` is the start of the i-th smallest suffix.  ``H[0]`` is
always ``len(text)`` (the sentinel suffix).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..alphabet import Alphabet, infer_alphabet
from ..errors import AlphabetError
from .sais import sais


def _encode_with_sentinel(text: str, alphabet: Optional[Alphabet]) -> tuple:
    if alphabet is None:
        alphabet = infer_alphabet(text) if text else Alphabet("a")
    codes = list(alphabet.encode(text))
    if 0 in codes:
        raise AlphabetError("text may not contain the sentinel")
    codes.append(0)
    return codes, alphabet


def suffix_array_naive(text: str) -> List[int]:
    """Suffix array of ``text + '$'`` by direct sorting (testing oracle).

    >>> suffix_array_naive("acagaca")
    [7, 6, 4, 0, 2, 5, 1, 3]
    """
    s = text + "\x00"  # NUL sorts before any printable character
    n = len(s)
    return sorted(range(n), key=lambda i: s[i:])


def suffix_array_doubling(text: str) -> List[int]:
    """Suffix array of ``text + '$'`` by prefix doubling (O(n log² n)).

    >>> suffix_array_doubling("acagaca")
    [7, 6, 4, 0, 2, 5, 1, 3]
    """
    s = text + "\x00"
    n = len(s)
    sa = list(range(n))
    rank = [ord(c) for c in s]
    tmp = [0] * n
    width = 1
    while True:
        def key(i: int):
            tail = rank[i + width] if i + width < n else -1
            return (rank[i], tail)

        sa.sort(key=key)
        tmp[sa[0]] = 0
        for j in range(1, n):
            tmp[sa[j]] = tmp[sa[j - 1]] + (1 if key(sa[j]) != key(sa[j - 1]) else 0)
        rank = tmp[:]
        if rank[sa[-1]] == n - 1:
            break
        width *= 2
    return sa


def suffix_array(text: str, alphabet: Optional[Alphabet] = None) -> List[int]:
    """Suffix array of ``text + '$'`` via SA-IS (linear time).

    ``alphabet`` defaults to the smallest alphabet covering ``text``.

    >>> suffix_array("acagaca")
    [7, 6, 4, 0, 2, 5, 1, 3]
    """
    codes, _ = _encode_with_sentinel(text, alphabet)
    n_codes = max(codes) + 1
    return sais(codes, n_codes)


def rank_array(sa: Sequence[int]) -> List[int]:
    """Inverse permutation of a suffix array.

    ``rank[p]`` is the lexicographic rank of the suffix starting at ``p``.
    """
    rank = [0] * len(sa)
    for r, p in enumerate(sa):
        rank[p] = r
    return rank
