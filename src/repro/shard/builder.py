"""Parallel shard builds: a process pool that ships built shards via shm.

``ShardedIndex.build`` constructs N independent per-shard FM-indexes;
each build is CPU-bound and shares nothing with its siblings, so a
process pool over shards cuts wall-clock by ~N on multi-core hosts.
The transport reuses the executor's shared-memory plumbing in both
directions:

* **down**: the parent writes the ASCII-encoded target text into one
  shared segment; each worker slices its shard's ``[start, start+length)``
  window out of it — the text is mapped once, never pickled N times;
* **up**: the worker builds its :class:`~repro.core.matcher.KMismatchIndex`,
  serialises it with the deterministic ``REPROIDX`` writer
  (:func:`repro.io.binfmt.dump_fmindex` via ``to_binary``), writes the
  blob into a fresh per-shard segment and sends only the segment *name*
  through the result queue.  The parent copies the blob out, unlinks the
  segment, and hydrates the shard zero-copy with ``from_binary`` —
  because the writer is deterministic, parallel-built shard files are
  byte-identical to serial-built ones.

Ownership handoff: the child unregisters its result segment from its
own :mod:`multiprocessing.resource_tracker` before closing, so the
parent (which attaches without registering) is the sole unlinker — no
double-unlink warnings, no leaked segments.

Failure semantics: a worker that dies mid-build (OOM kill, segfault)
or ships an exception surfaces as :class:`~repro.errors.IndexBuildError`
in the parent, with the death counted under
``query.errors{engine="shard_build", kind="worker"}``.  Remaining
workers are terminated and every segment is unlinked on the way out.
"""

from __future__ import annotations

import multiprocessing as _mp
import os as _os
import queue as _queue
import traceback as _traceback
from multiprocessing import resource_tracker, shared_memory
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import IndexBuildError
from ..obs import OBS, count_query_error

#: Histogram of per-shard build wall-clock (milliseconds); emitted
#: unlabelled and per-``{shard}`` for both serial and parallel builds.
BUILD_MS_METRIC = "shard.build_ms"

#: How long the parent waits on the result queue between liveness checks.
BUILD_POLL_S = 0.25

#: Test hook: a worker that picks up the shard id named by this env var
#: exits immediately without reporting — exercises the dead-worker path.
_DIE_ENV = "REPRO_BUILD_WORKER_DIE"


def record_build_ms(shard_id: int, build_ms: float) -> None:
    """Emit the ``shard.build_ms`` histogram (unlabelled + ``{shard}``)."""
    if OBS.enabled:
        OBS.metrics.histogram(BUILD_MS_METRIC).observe(build_ms)
        OBS.metrics.histogram(BUILD_MS_METRIC, shard=shard_id).observe(build_ms)


def _unregister_shm(segment: shared_memory.SharedMemory) -> None:
    """Drop ``segment`` from this process's resource tracker so another
    process can own the unlink without tracker double-free warnings."""
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by platform
        pass


def _build_worker(
    text_shm_name: str,
    alphabet_symbols: str,
    occ_sample_rate: int,
    sa_sample_rate: int,
    task_q,
    result_q,
) -> None:
    """Pool worker: pull ``(shard_id, start, length)`` tasks until the
    ``None`` sentinel; ship each built shard back as a named segment."""
    from ..alphabet import Alphabet
    from ..core.matcher import KMismatchIndex

    alphabet = Alphabet(alphabet_symbols)
    text_shm = shared_memory.SharedMemory(name=text_shm_name)
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            shard_id, start, length = task
            try:
                if _os.environ.get(_DIE_ENV, "") == str(shard_id):
                    _os._exit(17)
                begin = perf_counter()
                piece = bytes(text_shm.buf[start:start + length]).decode("ascii")
                index = KMismatchIndex(
                    piece,
                    alphabet=alphabet,
                    occ_sample_rate=occ_sample_rate,
                    sa_sample_rate=sa_sample_rate,
                )
                blob = index.to_binary()
                build_ms = (perf_counter() - begin) * 1e3
                try:
                    out = shared_memory.SharedMemory(
                        create=True, size=max(1, len(blob))
                    )
                except OSError:
                    # No shm left (tiny /dev/shm): fall back to pickling
                    # the blob — slower, never wrong.
                    result_q.put(("built-bytes", shard_id, blob, build_ms))
                    continue
                out.buf[: len(blob)] = blob
                name = out.name
                # Hand unlink ownership to the parent before detaching.
                _unregister_shm(out)
                out.close()
                result_q.put(("built", shard_id, name, len(blob), build_ms))
            except BaseException as exc:  # ship the failure; never hang the parent
                result_q.put(
                    ("error", shard_id, repr(exc), _traceback.format_exc())
                )
                break
    finally:
        text_shm.close()


def build_shards_parallel(
    text: str,
    plan: Sequence[Tuple[int, int, int, int]],
    alphabet,
    occ_sample_rate: int,
    sa_sample_rate: int,
    workers: int,
) -> Optional[List[object]]:
    """Build every shard in ``plan`` over a process pool; return the
    hydrated :class:`~repro.core.matcher.KMismatchIndex` list in shard
    order, or ``None`` when the text cannot ride shared memory (non-ASCII
    targets fall back to the serial path — correctness first).

    Raises :class:`~repro.errors.IndexBuildError` when a worker dies or
    a shard build fails.
    """
    from ..core.matcher import KMismatchIndex

    try:
        encoded = text.encode("ascii")
    except UnicodeEncodeError:
        return None
    workers = max(1, min(int(workers), len(plan)))
    ctx = _mp.get_context()
    text_shm = shared_memory.SharedMemory(create=True, size=max(1, len(encoded)))
    procs: List[_mp.process.BaseProcess] = []
    blobs: Dict[int, bytes] = {}
    timings: Dict[int, float] = {}
    try:
        text_shm.buf[: len(encoded)] = encoded
        task_q = ctx.Queue()
        result_q = ctx.Queue()
        for shard_id, (start, length, _core_start, _core_end) in enumerate(plan):
            task_q.put((shard_id, start, length))
        for _ in range(workers):
            task_q.put(None)
        for _ in range(workers):
            proc = ctx.Process(
                target=_build_worker,
                args=(
                    text_shm.name, "".join(alphabet.symbols),
                    occ_sample_rate, sa_sample_rate, task_q, result_q,
                ),
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        while len(blobs) < len(plan):
            try:
                message = result_q.get(timeout=BUILD_POLL_S)
            except _queue.Empty:
                dead = [
                    p for p in procs
                    if not p.is_alive() and p.exitcode not in (0, None)
                ]
                if dead:
                    count_query_error("shard_build", 0, "worker")
                    raise IndexBuildError(
                        f"shard build worker died with exit code "
                        f"{dead[0].exitcode} before delivering its shards"
                    )
                if all(not p.is_alive() for p in procs):
                    count_query_error("shard_build", 0, "worker")
                    raise IndexBuildError(
                        f"all shard build workers exited but "
                        f"{len(plan) - len(blobs)} shard(s) are missing"
                    )
                continue
            tag = message[0]
            if tag == "built":
                _, shard_id, segment_name, nbytes, build_ms = message
                segment = shared_memory.SharedMemory(name=segment_name)
                try:
                    blobs[shard_id] = bytes(segment.buf[:nbytes])
                finally:
                    segment.close()
                    try:
                        segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                timings[shard_id] = build_ms
            elif tag == "built-bytes":
                _, shard_id, blob, build_ms = message
                blobs[shard_id] = blob
                timings[shard_id] = build_ms
            else:  # "error"
                _, shard_id, exc_repr, tb_text = message
                raise IndexBuildError(
                    f"shard {shard_id} build failed in worker: "
                    f"{exc_repr}\n{tb_text}"
                )
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()
        text_shm.close()
        text_shm.unlink()
    for shard_id in sorted(timings):
        record_build_ms(shard_id, timings[shard_id])
    # `from_binary` wraps the blob zero-copy; the deterministic writer
    # guarantees a later `save()` re-emits these exact bytes.
    return [KMismatchIndex.from_binary(blobs[i]) for i in range(len(plan))]
