"""Sharded indexes: split multi-Gbp targets, route queries, merge hits.

See ``docs/SHARDING.md`` for the seam-overlap math and routing rules.
"""

from .manifest import (
    DEFAULT_MAX_K,
    DEFAULT_MAX_PATTERN,
    ShardManifest,
    ShardSpec,
    plan_shards,
)
from .sharded import QueryRouter, ShardedIndex

__all__ = [
    "DEFAULT_MAX_PATTERN",
    "DEFAULT_MAX_K",
    "ShardSpec",
    "ShardManifest",
    "plan_shards",
    "ShardedIndex",
    "QueryRouter",
]
