"""Sharded k-mismatch index: split targets, routed queries, global hits.

:class:`ShardedIndex` removes the single-index assumption from the
stack: a multi-Gbp target is split into per-shard
:class:`~repro.core.matcher.KMismatchIndex` instances (each an ordinary
``REPROIDX`` file on disk, mmap'd on open) whose cores partition the
target and whose texts overlap by ``max_pattern - 1 + max_k`` at the
seams.  :class:`QueryRouter` fans every query out across the shards,
keeps exactly the hits each shard *owns* (global start inside the
shard's core — the deterministic seam dedup), rebases them into global
coordinates and merges, so results are byte-identical to an unsharded
index.

The facade mirrors :class:`~repro.core.matcher.KMismatchIndex`'s query
surface (``search``/``search_batch``/``map_read``/``map_reads``/
``search_edit``/``search_wildcard``/``count``/``contains``), and
``KMismatchIndex.open()`` returns a :class:`ShardedIndex` transparently
when pointed at a ``REPROSHD`` manifest — every registered engine and
every CLI query path works unchanged over shards.  Batch queries reuse
:class:`~repro.engine.BatchExecutor` per shard (thread clones or
shared-memory process pools), tagging worker telemetry with the
``{shard}`` label; the router's own fan-out emits
``query.shard_ms``/``query.shard_occurrences`` series and
``router.fanout``/``router.shard`` spans (``docs/SHARDING.md``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabet import DNA, Alphabet, infer_alphabet
from ..bwt.fmindex import DEFAULT_SA_SAMPLE
from ..bwt.rankall import DEFAULT_SAMPLE_RATE
from ..core.kerrors import EditOccurrence
from ..core.matcher import KMismatchIndex, ReadHit
from ..core.types import Occurrence, SearchStats
from ..core.wildcard import DEFAULT_WILDCARD
from ..dna import reverse_complement
from ..engine.registry import REGISTRY
from ..errors import IndexCorruptionError, PatternError
from ..obs import OBS, record_query_error
from .builder import build_shards_parallel, record_build_ms
from .manifest import (
    DEFAULT_MAX_K,
    DEFAULT_MAX_PATTERN,
    ShardManifest,
    ShardSpec,
    plan_shards,
)


class QueryRouter:
    """Fans queries across a :class:`ShardedIndex` and merges the hits.

    Parameters
    ----------
    sharded:
        The index whose shards are routed over.
    workers / mode / chunk_size:
        Parallelism knobs.  Single queries fan out over shards on a
        thread pool when ``workers > 1`` (serially otherwise); batch
        queries hand the whole batch to one
        :class:`~repro.engine.BatchExecutor` per shard, so ``mode``
        selects thread clones vs the shared-memory process pool exactly
        as it does for an unsharded batch — each shard's workers
        hydrate that shard's binary blob zero-copy.

    Merging is a projection onto shard ownership: a hit found by shard
    ``i`` survives iff its global start lies in shard ``i``'s core.
    The seam overlap guarantees the owner saw the full window, so the
    union over shards equals the unsharded result exactly (and each hit
    is produced once — no cross-shard comparison needed).
    """

    def __init__(
        self,
        sharded: "ShardedIndex",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ):
        self._sharded = sharded
        self.workers = max(0, int(workers))
        self.mode = mode
        self.chunk_size = chunk_size

    # -- single-query fan-out ---------------------------------------------------

    def search_with_stats(
        self, pattern: str, k: int, method: str = "algorithm_a"
    ) -> Tuple[List[Occurrence], SearchStats]:
        """Route one k-mismatch query across every shard and merge."""
        return self._route(
            pattern, k,
            lambda index: index.search_with_stats(pattern, k, method),
            engine=REGISTRY.canonical_name(method),
        )

    def search_edit(self, pattern: str, k: int) -> List[EditOccurrence]:
        """Route one k-errors (Levenshtein) query; windows reach ``m + k``."""
        occurrences, _ = self._route(
            pattern, k,
            lambda index: (index.search_edit(pattern, k), SearchStats()),
            engine="kerrors",
            window=len(pattern) + k,
            rebase=lambda occ, offset: EditOccurrence(
                occ.start + offset, occ.length, occ.distance
            ),
        )
        return occurrences

    def search_wildcard(
        self, pattern: str, k: int = 0, wildcard: str = DEFAULT_WILDCARD
    ) -> List[Occurrence]:
        """Route one wildcard query across every shard and merge."""
        occurrences, _ = self._route(
            pattern, k,
            lambda index: (index.search_wildcard(pattern, k, wildcard=wildcard),
                           SearchStats()),
            engine="wildcard",
        )
        return occurrences

    def _route(self, pattern, k, shard_fn, engine, window=None, rebase=None):
        """Fan ``shard_fn`` out over the shards; merge owned hits globally.

        ``window`` is the longest target window a hit may cover
        (defaults to ``len(pattern)``, the k-mismatch case); shards too
        short to hold one window contribute nothing without being
        searched.  ``rebase`` maps ``(occurrence, global_offset)`` to a
        globally-positioned occurrence (defaults to the
        :class:`Occurrence` shape).

        A raised routed query — seam-budget rejection, a shard failing
        mid-fanout — is counted in ``query.errors{engine,k,kind}``
        before re-raising (idempotently: per-shard facades count their
        own failures first and tag the exception).
        """
        try:
            return self._route_inner(pattern, k, shard_fn, engine, window, rebase)
        except Exception as exc:
            record_query_error(engine, k, exc)
            raise

    def _route_inner(self, pattern, k, shard_fn, engine, window=None, rebase=None):
        sharded = self._sharded
        window = window if window is not None else len(pattern)
        sharded.check_seam_budget(window)
        if rebase is None:
            def rebase(occ, offset):
                return Occurrence(occ.start + offset, occ.mismatches)

        def run_shard(item):
            shard_id, spec, index = item
            if window > index.text_length:
                # No window starting in this core fits the target at all
                # (the seam containment argument: if one did, it would
                # fit the shard text too) — skip the search outright.
                return shard_id, spec, [], SearchStats(), 0.0
            start_ns = perf_counter_ns()
            with OBS.span("router.shard", shard=shard_id):
                occurrences, stats = shard_fn(index)
            return (
                shard_id, spec, occurrences, stats,
                (perf_counter_ns() - start_ns) / 1e6,
            )

        items = [
            (i, spec, index)
            for i, (spec, index) in enumerate(zip(sharded.manifest.shards, sharded.shards))
        ]
        start_ns = perf_counter_ns()
        with OBS.span(
            "router.fanout", engine=engine, k=k, m=len(pattern),
            shards=len(items), workers=self.workers,
        ) as span:
            if self.workers > 1 and len(items) > 1:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(items))
                ) as pool:
                    outcomes = list(pool.map(run_shard, items))
            else:
                outcomes = [run_shard(item) for item in items]
            merged = []
            stats = SearchStats()
            for shard_id, spec, occurrences, shard_stats, _ in outcomes:
                stats.merge(shard_stats)
                merged.extend(
                    rebase(occ, spec.start)
                    for occ in occurrences
                    if spec.owns(occ.start + spec.start)
                )
            merged.sort()
            span.set(occurrences=len(merged))
        if OBS.enabled:
            for shard_id, _, occurrences, _, shard_ms in outcomes:
                OBS.metrics.histogram(
                    "query.shard_ms", engine=engine, k=k, shard=shard_id
                ).observe(shard_ms)
                OBS.metrics.counter(
                    "query.shard_occurrences", engine=engine, k=k, shard=shard_id
                ).inc(len(occurrences))
            duration_ms = (perf_counter_ns() - start_ns) / 1e6
            OBS.record_event(
                "router",
                engine=engine,
                k=k,
                m=len(pattern),
                duration_ms=duration_ms,
                shards=len(items),
                occurrences=len(merged),
                stats=stats.to_dict(),
            )
            # The routed query's wide event: ``shards`` > 0 marks it as
            # the user-facing fan-out (per-shard searches emit their own
            # shards=0 events underneath).
            OBS.emit_wide(
                "query",
                engine=engine,
                k=k,
                m=len(pattern),
                duration_ms=duration_ms,
                occurrences=len(merged),
                shards=len(items),
            )
        return merged, stats

    # -- batch fan-out ----------------------------------------------------------

    def run_batch(
        self, kind: str, items: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> Tuple[List[object], SearchStats]:
        """Route a batch: one :class:`BatchExecutor` pass per shard.

        Every shard sees the whole batch (a hit can live in any shard);
        per-item results are merged by ownership exactly as in the
        single-query path, and results stay input-ordered.  Worker
        telemetry (``engine.worker.*``) from each per-shard pass carries
        that shard's ``{shard}`` label.
        """
        from ..engine.executor import BatchExecutor

        engine = REGISTRY.canonical_name(method)
        try:
            return self._run_batch_inner(BatchExecutor, kind, items, k, method)
        except Exception as exc:
            record_query_error(engine, k, exc)
            raise

    def _run_batch_inner(self, BatchExecutor, kind, items, k, method):
        sharded = self._sharded
        window = max((len(item) for item in items), default=0)
        if kind == "map":
            sharded.require_dna("map_reads")
        sharded.check_seam_budget(window)
        merged: List[list] = [[] for _ in items]
        stats = SearchStats()
        specs = sharded.manifest.shards
        with OBS.span(
            "router.batch", kind=kind, shards=len(specs), items=len(items),
            workers=self.workers, mode=self.mode,
        ):
            for shard_id, (spec, index) in enumerate(zip(specs, sharded.shards)):
                executor = BatchExecutor(
                    workers=self.workers, mode=self.mode,
                    chunk_size=self.chunk_size, shard=shard_id,
                )
                if kind == "search":
                    batch = executor.run_search(index, items, k, method=method)
                else:
                    batch = executor.run_map(index, items, k, method=method)
                stats.merge(batch.stats)
                for j, shard_out in enumerate(batch.results):
                    merged[j].extend(
                        self._rebase_result(entry, spec)
                        for entry in shard_out
                        if spec.owns(self._result_start(entry) + spec.start)
                    )
        for bucket in merged:
            bucket.sort()
        return merged, stats

    @staticmethod
    def _result_start(entry) -> int:
        return entry.occurrence.start if isinstance(entry, ReadHit) else entry.start

    @staticmethod
    def _rebase_result(entry, spec: ShardSpec):
        if isinstance(entry, ReadHit):
            occ = entry.occurrence
            return ReadHit(Occurrence(occ.start + spec.start, occ.mismatches), entry.strand)
        return Occurrence(entry.start + spec.start, entry.mismatches)


class ShardedIndex:
    """A k-mismatch index over a target split into routed shards.

    Construct with :meth:`build` (split a text in memory), or
    :meth:`open` a saved ``REPROSHD`` manifest whose per-shard
    ``REPROIDX`` files are then memory-mapped zero-copy.
    ``KMismatchIndex.open()`` dispatches here automatically for
    manifest files.
    """

    def __init__(
        self,
        manifest: ShardManifest,
        shards: Sequence[KMismatchIndex],
        router: Optional[QueryRouter] = None,
    ):
        if len(shards) != manifest.n_shards:
            raise IndexCorruptionError(
                f"manifest names {manifest.n_shards} shard(s), "
                f"{len(shards)} index(es) supplied"
            )
        self._manifest = manifest
        self._shards = list(shards)
        self._alphabet = Alphabet(manifest.alphabet)
        self._text: Optional[str] = None
        self.router = router or QueryRouter(self)
        #: Facade parity with :class:`KMismatchIndex` (per-query M-tree
        #: recording is not routed across shards).
        self.last_mtree = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        text: str,
        n_shards: int,
        max_pattern: int = DEFAULT_MAX_PATTERN,
        max_k: int = DEFAULT_MAX_K,
        alphabet: Optional[Alphabet] = None,
        occ_sample_rate: int = DEFAULT_SAMPLE_RATE,
        sa_sample_rate: int = DEFAULT_SA_SAMPLE,
        build_workers: int = 0,
    ) -> "ShardedIndex":
        """Split ``text`` into ``n_shards`` seam-overlapped shard indexes.

        ``max_pattern``/``max_k`` fix the seam budget: queries with
        ``m - 1 + k`` beyond ``max_pattern - 1 + max_k`` are rejected at
        query time (the overlap cannot prove them complete).  Every
        shard is built over the *whole-text* alphabet so queries probe
        identical code spaces regardless of which characters a shard's
        slice happens to contain.

        ``build_workers >= 1`` builds the shards over a process pool
        (:mod:`repro.shard.builder`): the text ships down through one
        shared-memory segment, each built shard's ``REPROIDX`` blob
        ships back through another, and the result — the deterministic
        writer guarantees it — is byte-identical to a serial build.
        ``0`` (the default) builds serially in-process.
        """
        if not text:
            raise PatternError("target text must be non-empty")
        if max_pattern < 1:
            raise PatternError(f"max_pattern must be positive, got {max_pattern}")
        if max_k < 0:
            raise PatternError(f"max_k must be non-negative, got {max_k}")
        if build_workers < 0:
            raise PatternError(
                f"build_workers must be non-negative, got {build_workers}"
            )
        if alphabet is None:
            alphabet = DNA if DNA.contains(text) else infer_alphabet(text)
        overlap = max_pattern - 1 + max_k
        plan = plan_shards(len(text), n_shards, overlap)
        specs = [
            ShardSpec(
                file=f"shard{i:04d}.fmbin",
                start=start,
                length=length,
                core_start=core_start,
                core_end=core_end,
            )
            for i, (start, length, core_start, core_end) in enumerate(plan)
        ]
        with OBS.span("shard.build", length=len(text), shards=n_shards,
                      overlap=overlap, build_workers=build_workers):
            shards = None
            if build_workers >= 1 and len(plan) > 1:
                shards = build_shards_parallel(
                    text, plan, alphabet, occ_sample_rate, sa_sample_rate,
                    build_workers,
                )
            if shards is None:
                shards = []
                for i, (start, length, core_start, core_end) in enumerate(plan):
                    begin = perf_counter_ns()
                    shards.append(KMismatchIndex(
                        text[start:start + length],
                        alphabet=alphabet,
                        occ_sample_rate=occ_sample_rate,
                        sa_sample_rate=sa_sample_rate,
                    ))
                    record_build_ms(i, (perf_counter_ns() - begin) / 1e6)
        manifest = ShardManifest(
            total_length=len(text),
            overlap=overlap,
            max_pattern=max_pattern,
            max_k=max_k,
            alphabet="".join(alphabet.symbols),
            shards=tuple(specs),
        )
        instance = cls(manifest, shards)
        instance._text = text
        return instance

    def save(self, path) -> int:
        """Write the manifest to ``path`` and one ``REPROIDX`` file per
        shard next to it (``<stem>.shard0000.fmbin``, ...); returns
        total bytes written."""
        path = Path(path)
        stem = path.name.rsplit(".", 1)[0] or path.name
        specs = []
        written = 0
        for i, (spec, index) in enumerate(zip(self._manifest.shards, self._shards)):
            name = f"{stem}.shard{i:04d}.fmbin"
            written += index.save(path.parent / name)
            specs.append(ShardSpec(
                file=name, start=spec.start, length=spec.length,
                core_start=spec.core_start, core_end=spec.core_end,
            ))
        manifest = ShardManifest(
            total_length=self._manifest.total_length,
            overlap=self._manifest.overlap,
            max_pattern=self._manifest.max_pattern,
            max_k=self._manifest.max_k,
            alphabet=self._manifest.alphabet,
            shards=tuple(specs),
        )
        written += manifest.save(path)
        self._manifest = manifest
        return written

    @classmethod
    def open(cls, path, mmap: bool = True) -> "ShardedIndex":
        """Open a saved manifest, memory-mapping every shard index.

        Load cost is O(shards) headers.  Each shard file must exist
        (relative to the manifest) and match the geometry the manifest
        records for it — a shard/manifest length mismatch is corruption,
        named as such, never a silently misrouted coordinate space.
        """
        path = Path(path)
        manifest = ShardManifest.load(path)
        shards = []
        with OBS.span("shard.open", shards=manifest.n_shards, mmap=mmap):
            for i, spec in enumerate(manifest.shards):
                shard_path = path.parent / spec.file
                if not shard_path.is_file():
                    raise IndexCorruptionError(
                        f"{path}: shard {i} file: {spec.file!r} does not exist "
                        f"next to the manifest"
                    )
                index = KMismatchIndex.load(shard_path, mmap=mmap)
                if index.text_length != spec.length:
                    raise IndexCorruptionError(
                        f"{path}: shard {i} length: manifest records {spec.length} "
                        f"bp at offset {spec.start}, {spec.file!r} holds "
                        f"{index.text_length} bp (shard/manifest offset mismatch)"
                    )
                if "".join(index.alphabet.symbols) != manifest.alphabet:
                    raise IndexCorruptionError(
                        f"{path}: shard {i} alphabet: manifest records "
                        f"{manifest.alphabet!r}, {spec.file!r} holds "
                        f"{''.join(index.alphabet.symbols)!r}"
                    )
                shards.append(index)
        if OBS.enabled:
            OBS.metrics.counter("shard.opens").inc()
            OBS.metrics.gauge("shard.count").set(manifest.n_shards)
        return cls(manifest, shards)

    # -- introspection ----------------------------------------------------------

    @property
    def manifest(self) -> ShardManifest:
        """The shard geometry this index routes over."""
        return self._manifest

    @property
    def shards(self) -> List[KMismatchIndex]:
        """The per-shard indexes, in core order."""
        return self._shards

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def alphabet(self) -> Alphabet:
        """The (whole-target) alphabet every shard was built over."""
        return self._alphabet

    @property
    def text_length(self) -> int:
        """Length of the full target, seam overlaps not double-counted."""
        return self._manifest.total_length

    @property
    def text(self) -> str:
        """The full target, reassembled from the shard cores and cached."""
        if self._text is None:
            self._text = "".join(
                index.text[: spec.core_end - spec.core_start]
                for spec, index in zip(self._manifest.shards, self._shards)
            )
        return self._text

    def nbytes(self) -> int:
        """Total payload across shards (seam overlaps counted — they are
        genuinely stored twice; that is the price of seam-local routing)."""
        return sum(index.nbytes() for index in self._shards)

    # -- guards -----------------------------------------------------------------

    def check_seam_budget(self, window: int) -> None:
        """Reject queries whose windows could straddle past the overlap.

        ``window`` is the longest target window a hit may cover (``m``
        for k-mismatch, ``m + k`` for k-errors).  For multi-shard
        indexes it must satisfy ``window - 1 <= overlap``; beyond that a
        hit could start in one core and end past the owner's text, and
        the routed answer could silently miss it — so this raises
        instead.
        """
        if len(self._shards) > 1 and window - 1 > self._manifest.overlap:
            raise PatternError(
                f"query window of {window} exceeds this sharded index's seam "
                f"overlap ({self._manifest.overlap}: max_pattern="
                f"{self._manifest.max_pattern}, max_k={self._manifest.max_k}); "
                f"rebuild the shards with a larger --max-pattern/--max-k budget"
            )

    def require_dna(self, what: str) -> None:
        if self._alphabet != DNA:
            raise PatternError(f"{what} requires a DNA target")

    # -- queries ----------------------------------------------------------------

    def search(
        self, pattern: str, k: int, method: str = "algorithm_a"
    ) -> List[Occurrence]:
        """All occurrences within Hamming distance ``k``, in global
        coordinates — exactly the unsharded answer."""
        occurrences, _ = self.search_with_stats(pattern, k, method)
        return occurrences

    def search_with_stats(
        self, pattern: str, k: int, method: str = "algorithm_a"
    ) -> Tuple[List[Occurrence], SearchStats]:
        """Like :meth:`search`, plus shard-merged search statistics."""
        try:
            self._alphabet.validate(pattern)
        except Exception as exc:
            # The router never runs for an invalid pattern; count the
            # rejection here so sharded serving has the same error
            # accounting as the unsharded facade.
            record_query_error(REGISTRY.canonical_name(method), k, exc)
            raise
        return self.router.search_with_stats(pattern, k, method)

    def count(self, pattern: str, k: int = 0, method: str = "algorithm_a") -> int:
        """Number of occurrences of ``pattern`` within distance ``k``."""
        self._alphabet.validate(pattern)
        if k == 0:
            self.check_seam_budget(len(pattern))
            return sum(
                1
                for spec, index in zip(self._manifest.shards, self._shards)
                if len(pattern) <= index.text_length
                for start in index.locate_exact(pattern)
                if spec.owns(start + spec.start)
            )
        return len(self.search(pattern, k, method))

    def contains(self, pattern: str, k: int = 0) -> bool:
        """True when the pattern occurs within distance ``k``."""
        if k == 0:
            return self.count(pattern, 0) > 0
        return bool(self.search(pattern, k))

    def locate_exact(self, pattern: str) -> List[int]:
        """Exact occurrence starts (k = 0 fast path), global coordinates."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._alphabet.validate(pattern)
        self.check_seam_budget(len(pattern))
        return sorted(
            start + spec.start
            for spec, index in zip(self._manifest.shards, self._shards)
            if len(pattern) <= index.text_length
            for start in index.locate_exact(pattern)
            if spec.owns(start + spec.start)
        )

    def search_edit(self, pattern: str, k: int) -> List[EditOccurrence]:
        """k-errors (Levenshtein) windows over the sharded target."""
        self._alphabet.validate(pattern)
        return self.router.search_edit(pattern, k)

    def search_wildcard(
        self, pattern: str, k: int = 0, wildcard: str = DEFAULT_WILDCARD
    ) -> List[Occurrence]:
        """k-mismatch search with don't-care positions, routed."""
        return self.router.search_wildcard(pattern, k, wildcard=wildcard)

    # -- read mapping ------------------------------------------------------------

    def map_read(self, read: str, k: int, method: str = "algorithm_a") -> List[ReadHit]:
        """Strand-aware mapping of one read (global coordinates)."""
        hits, _ = self.map_read_with_stats(read, k, method=method)
        return hits

    def map_read_with_stats(
        self, read: str, k: int, method: str = "algorithm_a"
    ) -> Tuple[List[ReadHit], SearchStats]:
        """Like :meth:`map_read`, also returning merged two-strand stats."""
        self.require_dna("map_read")
        with OBS.span("shard.map_read", m=len(read), k=k) as span:
            forward, stats = self.search_with_stats(read, k, method)
            reverse, reverse_stats = self.search_with_stats(
                reverse_complement(read), k, method
            )
            stats.merge(reverse_stats)
            hits = [ReadHit(occ, "+") for occ in forward]
            hits += [ReadHit(occ, "-") for occ in reverse]
            span.set(hits=len(hits))
        return sorted(hits), stats

    def map_reads(
        self,
        reads: Sequence[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ) -> List[List[ReadHit]]:
        """Map a read batch; ``result[i]`` is read ``i``'s global hit list."""
        router = QueryRouter(self, workers=workers, mode=mode, chunk_size=chunk_size)
        results, _ = router.run_batch("map", list(reads), k, method=method)
        return results

    def search_batch(
        self,
        patterns: Sequence[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ) -> Dict[str, List[Occurrence]]:
        """Search many patterns; results keyed by pattern."""
        results, _ = self.search_batch_with_stats(
            patterns, k, method=method, workers=workers, mode=mode,
            chunk_size=chunk_size,
        )
        return results

    def search_batch_with_stats(
        self,
        patterns: Sequence[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ) -> Tuple[Dict[str, List[Occurrence]], SearchStats]:
        """Like :meth:`search_batch`, also returning batch-merged stats.

        Each shard serves the batch through one
        :class:`~repro.engine.BatchExecutor` (``workers``/``mode``/
        ``chunk_size`` behave exactly as on the unsharded facade,
        shared-memory hydration included).
        """
        patterns = list(patterns)
        router = QueryRouter(self, workers=workers, mode=mode, chunk_size=chunk_size)
        results, stats = router.run_batch("search", patterns, k, method=method)
        return {pattern: occs for pattern, occs in zip(patterns, results)}, stats

    # -- self-checks -------------------------------------------------------------

    def verify(self) -> None:
        """Run every shard's internal checks plus seam consistency.

        Each shard verifies its own BWT/rank/SA invariants; on top, the
        seam text every pair of adjacent shards stores twice must agree
        byte-for-byte, or routing would answer differently depending on
        which side of a seam served a window.
        """
        for index in self._shards:
            index.verify()
        specs = self._manifest.shards
        for i in range(len(specs) - 1):
            left, right = specs[i], specs[i + 1]
            overlap_len = left.end - right.start
            if overlap_len <= 0:
                continue
            left_seam = self._shards[i].text[-overlap_len:]
            right_seam = self._shards[i + 1].text[:overlap_len]
            if left_seam != right_seam:
                raise IndexCorruptionError(
                    f"seam between shard {i} and {i + 1} disagrees over "
                    f"[{right.start}, {left.end}) — shard files do not come "
                    f"from one target"
                )


__all__ = ["ShardedIndex", "QueryRouter"]
