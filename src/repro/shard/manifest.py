"""Shard manifests: geometry and persistence of a sharded target.

A sharded index splits the target ``s`` into ``N`` contiguous **core**
regions that partition ``[0, |s|)`` exactly; each shard indexes its core
plus a **seam overlap** extending ``overlap`` characters past the core's
right edge (clamped at the target's end).  With
``overlap = max_pattern - 1 + max_k``, every length-``m`` window that
starts inside a core is fully contained in that core's shard text for
any query with ``m - 1 + k <= overlap`` — so routing a query to every
shard and keeping only hits whose *global start* falls inside the
owning shard's core reproduces the unsharded answer exactly, with no
cross-shard comparison needed (see ``docs/SHARDING.md`` for the math).

The on-disk form is the ``REPROSHD`` container of
:mod:`repro.io.binfmt`: framing and structural validation live there;
this module owns the semantic validation (cores partition the target,
shard windows are consistent) and the typed :class:`ShardManifest` /
:class:`ShardSpec` views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import IndexCorruptionError, PatternError
from ..io import binfmt

#: Default seam budget: the longest pattern a sharded index answers ...
DEFAULT_MAX_PATTERN = 512
#: ... together with the largest mismatch bound (overlap = m - 1 + k).
DEFAULT_MAX_K = 8


@dataclass(frozen=True)
class ShardSpec:
    """One shard's geometry (all coordinates global, half-open)."""

    #: File name of the shard's ``REPROIDX`` index, relative to the manifest.
    file: str
    #: Global offset of the shard's first indexed character.
    start: int
    #: Length of the shard's indexed text (core + seam overlap).
    length: int
    #: The core region this shard *owns*: hits starting in
    #: ``[core_start, core_end)`` are reported by this shard alone.
    core_start: int
    core_end: int

    @property
    def end(self) -> int:
        """Exclusive global end of the shard's indexed text."""
        return self.start + self.length

    def owns(self, position: int) -> bool:
        """True when a hit starting at global ``position`` belongs here."""
        return self.core_start <= position < self.core_end


@dataclass(frozen=True)
class ShardManifest:
    """The validated contents of a ``REPROSHD`` manifest."""

    total_length: int
    overlap: int
    max_pattern: int
    max_k: int
    alphabet: str
    shards: Tuple[ShardSpec, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def to_payload(self) -> dict:
        """The JSON payload :func:`repro.io.binfmt.dump_manifest` frames."""
        return {
            "total_length": self.total_length,
            "overlap": self.overlap,
            "max_pattern": self.max_pattern,
            "max_k": self.max_k,
            "alphabet": self.alphabet,
            "shards": [
                {
                    "file": spec.file,
                    "start": spec.start,
                    "length": spec.length,
                    "core_start": spec.core_start,
                    "core_end": spec.core_end,
                }
                for spec in self.shards
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict, source: str = "<buffer>") -> "ShardManifest":
        """Typed view over a structurally-validated payload, with the
        semantic checks: cores must partition ``[0, total_length)`` in
        order and every shard window must cover its core plus the seam
        overlap (clamped at the target end)."""
        shards = tuple(
            ShardSpec(
                file=entry["file"],
                start=entry["start"],
                length=entry["length"],
                core_start=entry["core_start"],
                core_end=entry["core_end"],
            )
            for entry in payload["shards"]
        )
        total = payload["total_length"]
        overlap = payload["overlap"]
        expected_start = 0
        for i, spec in enumerate(shards):
            if spec.core_start != expected_start:
                raise IndexCorruptionError(
                    f"{source}: manifest.shards[{i}].core_start: found "
                    f"{spec.core_start}, cores must partition the target "
                    f"(expected {expected_start})"
                )
            if spec.core_end <= spec.core_start:
                raise IndexCorruptionError(
                    f"{source}: manifest.shards[{i}].core_end: {spec.core_end} "
                    f"does not extend past core_start {spec.core_start}"
                )
            if spec.start != spec.core_start:
                raise IndexCorruptionError(
                    f"{source}: manifest.shards[{i}].start: found {spec.start}, "
                    f"expected the shard to begin at its core ({spec.core_start})"
                )
            expected_end = min(total, spec.core_end + overlap)
            if spec.start + spec.length != expected_end:
                raise IndexCorruptionError(
                    f"{source}: manifest.shards[{i}].length: shard covers "
                    f"[{spec.start}, {spec.start + spec.length}), expected it to "
                    f"end at core_end + overlap = {expected_end}"
                )
            expected_start = spec.core_end
        if expected_start != total:
            raise IndexCorruptionError(
                f"{source}: manifest.shards: cores end at {expected_start}, "
                f"total_length is {total}"
            )
        return cls(
            total_length=total,
            overlap=overlap,
            max_pattern=payload.get("max_pattern", overlap + 1),
            max_k=payload.get("max_k", 0),
            alphabet=payload["alphabet"],
            shards=shards,
        )

    def save(self, path) -> int:
        """Write the ``REPROSHD`` container to ``path``; returns bytes written."""
        return binfmt.save_manifest(self.to_payload(), path)

    @classmethod
    def load(cls, path) -> "ShardManifest":
        """Read, frame-validate and semantically validate a manifest file."""
        return cls.from_payload(binfmt.load_manifest(path), source=str(path))


def plan_shards(
    total_length: int, n_shards: int, overlap: int
) -> List[Tuple[int, int, int, int]]:
    """Shard geometry for a target: ``(start, length, core_start, core_end)``.

    Cores split ``[0, total_length)`` as evenly as possible (the first
    ``total_length % n_shards`` cores are one character longer); each
    shard's text extends ``overlap`` characters past its core, clamped
    at the target end.
    """
    if n_shards < 1:
        raise PatternError(f"n_shards must be positive, got {n_shards}")
    if total_length < n_shards:
        raise PatternError(
            f"cannot split a {total_length} bp target into {n_shards} shards "
            "(every core must be non-empty)"
        )
    base, extra = divmod(total_length, n_shards)
    plan: List[Tuple[int, int, int, int]] = []
    core_start = 0
    for i in range(n_shards):
        core_end = core_start + base + (1 if i < extra else 0)
        end = min(total_length, core_end + overlap)
        plan.append((core_start, end - core_start, core_start, core_end))
        core_start = core_end
    return plan


__all__ = [
    "DEFAULT_MAX_PATTERN",
    "DEFAULT_MAX_K",
    "ShardSpec",
    "ShardManifest",
    "plan_shards",
]
