"""Comparison methods from the paper's evaluation (Sec. V).

Four matchers with one shared signature
``match(text, pattern, k) -> list[Occurrence]``:

* :mod:`repro.baselines.naive` — the O(mn) scan; ground truth for every
  property test.
* :mod:`repro.baselines.landau_vishkin` — O(kn) kangaroo verification at
  every position; the on-line O(kn + m log m) family ([20]/[9]) the
  paper's complexity bound is measured against.
* :mod:`repro.baselines.amir` — "Amir's method" [1]: pattern blocks are
  located with Aho–Corasick, positions marked, positions marked fewer
  than the pigeonhole threshold discarded, survivors verified.
* :mod:`repro.baselines.cole` — "Cole's method" [14]: brute-force
  k-mismatch DFS over a suffix tree of the target.
"""

from .naive import naive_search
from .landau_vishkin import landau_vishkin_search, LandauVishkinMatcher
from .amir import amir_search, AmirMatcher
from .cole import cole_search, ColeMatcher
from .qgram import qgram_search, QGramIndex
from .bwt_seed import bwt_seed_search, BwtSeedMatcher
from .bitparallel import (
    shift_or_search,
    wu_manber_search,
    myers_match_ends,
    WuManberMatcher,
    MyersMatcher,
)

__all__ = [
    "naive_search",
    "landau_vishkin_search",
    "LandauVishkinMatcher",
    "amir_search",
    "AmirMatcher",
    "cole_search",
    "ColeMatcher",
    "qgram_search",
    "QGramIndex",
    "bwt_seed_search",
    "BwtSeedMatcher",
    "shift_or_search",
    "wu_manber_search",
    "myers_match_ends",
    "WuManberMatcher",
    "MyersMatcher",
]
