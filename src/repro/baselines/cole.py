"""The "Cole" baseline: brute-force k-mismatch DFS over a suffix tree.

The paper (Sec. V) evaluates "Cole's method" [14] using a suffix tree
built over the target (via the gsuffix package) and a brute-force
k-mismatch tree search.  This module reproduces that configuration: an
Ukkonen suffix tree of the target, explored depth-first while comparing
edge labels against the pattern and pruning paths whose mismatch count
exceeds ``k``; every surviving subtree's leaves are occurrence positions.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.types import Occurrence
from ..errors import PatternError
from ..suffix.suffix_tree import SuffixTree


class ColeMatcher:
    """Suffix-tree k-mismatch matcher over a fixed target.

    The tree is built once (O(n)); each query walks it with a mismatch
    budget.

    >>> matcher = ColeMatcher("ccacacagaagcc")
    >>> [o.start for o in matcher.search("aaaaacaaac", 4)]
    [2]
    """

    def __init__(self, text: str):
        self._text = text
        self._tree = SuffixTree(text)

    @property
    def tree(self) -> SuffixTree:
        """The underlying suffix tree."""
        return self._tree

    def search(self, pattern: str, k: int) -> List[Occurrence]:
        """All k-mismatch occurrences of ``pattern`` in the target."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        m = len(pattern)
        n = len(self._text)
        if m > n:
            return []
        tree = self._tree
        sentinel_len = len(tree.text)  # text + '$'
        out: List[Occurrence] = []

        # DFS frames: (node, chars matched so far, mismatch offsets tuple).
        stack: List[Tuple[object, int, Tuple[int, ...]]] = [
            (child, 0, ()) for child in tree.root.children.values()
        ]
        while stack:
            node, depth, mismatches = stack.pop()
            label = tree.edge_text(node)
            used = list(mismatches)
            offset = depth
            dead = False
            for ch in label:
                if offset == m:
                    break
                if ch != pattern[offset]:
                    # The sentinel can never match a pattern character.
                    used.append(offset)
                    if len(used) > k:
                        dead = True
                        break
                offset += 1
            if dead:
                continue
            if offset == m:
                mm = tuple(used)
                for pos in tree.leaf_positions(node):
                    if pos + m <= sentinel_len - 1:
                        out.append(Occurrence(pos, mm))
                continue
            # Edge consumed without finishing the pattern: descend.
            for child in node.children.values():
                stack.append((child, offset, tuple(used)))
        return sorted(out)


def cole_search(text: str, pattern: str, k: int) -> List[Occurrence]:
    """One-shot wrapper over :class:`ColeMatcher` (builds the tree)."""
    return ColeMatcher(text).search(pattern, k)
