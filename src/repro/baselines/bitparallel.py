"""Bit-parallel on-line matchers (Shift-Or, Wu–Manber, Myers).

The paper's related work (Sec. II) spans the on-line families these
classics define; they complete the baseline roster with the machinery
that ``agrep`` made standard:

* :func:`shift_or_search` — exact matching with the Shift-Or automaton
  (Baeza-Yates & Gonnet): one machine word tracks all pattern prefixes.
* :class:`WuManberMatcher` — k *mismatches*: k+1 Shift-Or registers,
  register ``d`` tracking alignments with at most ``d`` mismatches.
* :class:`MyersMatcher` — k *errors* (Levenshtein): Myers' O(n·⌈m/w⌉)
  bit-vector dynamic programming, reporting per-end-position distances.

All operate on arbitrary Python strings; words are unbounded Python ints
so patterns longer than 64 characters need no blocking.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.types import Occurrence
from ..errors import PatternError
from ..strings.hamming import mismatch_positions


def _char_masks(pattern: str) -> Dict[str, int]:
    """Per-character bitmasks: bit i set when pattern[i] == char."""
    masks: Dict[str, int] = {}
    for i, ch in enumerate(pattern):
        masks[ch] = masks.get(ch, 0) | (1 << i)
    return masks


def shift_or_search(text: str, pattern: str) -> List[int]:
    """All exact occurrence starts of ``pattern`` via Shift-Or.

    State register ``state`` keeps bit i *clear* when the last i+1 text
    characters match ``pattern[:i+1]``; a clear top bit signals a match.

    >>> shift_or_search("acagaca", "aca")
    [0, 4]
    """
    m = len(pattern)
    if m == 0:
        return []
    masks = _char_masks(pattern)
    all_ones = (1 << m) - 1
    accept = 1 << (m - 1)
    state = all_ones
    out: List[int] = []
    for i, ch in enumerate(text):
        # The left shift brings in an *active* (0) bit — a fresh alignment
        # can start at every position; OR-ing the miss mask kills the
        # prefixes the current character contradicts.
        state = ((state << 1) & all_ones) | (all_ones & ~masks.get(ch, 0))
        if not state & accept:
            out.append(i - m + 1)
    return out


class WuManberMatcher:
    """k-mismatch matching with Wu–Manber's k+1 Shift-Or registers.

    Register ``R[d]`` has bit i clear when some alignment of
    ``pattern[:i+1]`` against the text ending here has at most ``d``
    substitution errors.  Transition per character: a register either
    extends on a match, or inherits from the register one budget level
    down (a substitution).  O(n·k) word operations.

    >>> matcher = WuManberMatcher("tcaca")
    >>> [o.start for o in matcher.search("acagaca", 2)]
    [0, 2]
    """

    def __init__(self, pattern: str):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._pattern = pattern
        self._masks = _char_masks(pattern)
        self._m = len(pattern)

    def search(self, text: str, k: int) -> List[Occurrence]:
        """All k-mismatch occurrences of the pattern in ``text``."""
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        m = self._m
        if m > len(text):
            return []
        k = min(k, m)
        all_ones = (1 << m) - 1
        accept = 1 << (m - 1)
        masks = self._masks
        registers = [all_ones] * (k + 1)
        out: List[Occurrence] = []
        pattern = self._pattern
        for i, ch in enumerate(text):
            miss = all_ones & ~masks.get(ch, 0)
            previous_old = registers[0]
            registers[0] = ((registers[0] << 1) & all_ones) | miss
            for d in range(1, k + 1):
                old = registers[d]
                # Either extend with a match (shift + miss), or consume
                # the character as a substitution from the (d-1)-budget
                # register's previous state (shift only).
                registers[d] = (((old << 1) & all_ones) | miss) & (
                    (previous_old << 1) & all_ones
                )
                previous_old = old
            if not registers[k] & accept:
                start = i - m + 1
                out.append(
                    Occurrence(start, tuple(mismatch_positions(text[start:i + 1], pattern)))
                )
        return out


class MyersMatcher:
    """k-errors (Levenshtein) matching with Myers' bit-vector DP.

    Maintains the semi-global edit-distance DP column in two bit vectors
    (positive/negative deltas); ``distances(text)`` yields, per text
    position, the minimum edit distance of the pattern against any window
    ending there.  O(n) word operations for m ≤ word size (Python ints
    extend it to any m).

    >>> matcher = MyersMatcher("acgt")
    >>> ends = matcher.match_ends("aacgta", 1)
    >>> 4 in ends   # 'acgt' ends at index 4 (0 errors)
    True
    """

    def __init__(self, pattern: str):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._pattern = pattern
        self._masks = _char_masks(pattern)
        self._m = len(pattern)

    def iter_distances(self, text: str):
        """Yield ``(position, distance)``: min edit distance of any window
        ending at ``position`` (inclusive) against the whole pattern."""
        m = self._m
        masks = self._masks
        all_ones = (1 << m) - 1
        vp = all_ones  # vertical positive deltas
        vn = 0         # vertical negative deltas
        score = m
        high = 1 << (m - 1)
        for i, ch in enumerate(text):
            eq = masks.get(ch, 0)
            # Hyyrö's formulation: D0 marks DP cells whose diagonal delta
            # is zero; HP/HN the horizontal +1/-1 deltas.
            d0 = (((eq & vp) + vp) ^ vp | eq | vn) & all_ones
            hp = vn | (all_ones & ~(d0 | vp))
            hn = vp & d0
            if hp & high:
                score += 1
            elif hn & high:
                score -= 1
            # Semi-global search: shift a 0 into the horizontal deltas —
            # D[0, j] stays 0, a window may start anywhere for free.  (The
            # global-distance variant would carry a 1 here.)
            x = (hp << 1) & all_ones
            vp = ((hn << 1) | (all_ones & ~(d0 | x))) & all_ones
            vn = d0 & x & all_ones
            yield i, score

    def match_ends(self, text: str, k: int) -> Dict[int, int]:
        """End positions with distance ≤ k, mapped to their distance."""
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        return {i: d for i, d in self.iter_distances(text) if d <= k}


def wu_manber_search(text: str, pattern: str, k: int) -> List[Occurrence]:
    """One-shot wrapper over :class:`WuManberMatcher`."""
    return WuManberMatcher(pattern).search(text, k)


def myers_match_ends(text: str, pattern: str, k: int) -> Dict[int, int]:
    """One-shot wrapper over :class:`MyersMatcher.match_ends`."""
    return MyersMatcher(pattern).match_ends(text, k)
