"""BWT-seeded pigeonhole matching (the BWA/Bowtie recipe).

The paper's introduction situates its method against BWA/Bowtie, which
"already do BWT-based mismatch search": in practice those tools combine
the two worlds this package implements separately — an FM-index for
**exact** seed location plus pigeonhole filtration and verification.
This module builds that hybrid from the package's own parts:

* cut the pattern into ``k + 1`` disjoint blocks (at least one must match
  exactly in any k-mismatch occurrence);
* locate each block **exactly** with one FM backward search (no hash
  table, no text scan — unlike the q-gram and Amir baselines);
* verify the candidate starts with a budget-capped comparison.

Per query: O(m) backward-search steps + O(hits·k) verification — the
fastest method in the suite in the low-occurrence regime, degrading
gracefully (to verify-everything) when k approaches m.
"""

from __future__ import annotations

from typing import List, Set

from ..bwt.fmindex import FMIndex
from ..core.types import Occurrence
from ..errors import AlphabetError, PatternError
from .amir import split_into_blocks


class BwtSeedMatcher:
    """Seed-and-extend k-mismatch matcher over a reusable FM-index.

    Parameters
    ----------
    text:
        The target string.  (The index is built once; unlike the tree
        searches this matcher uses the *forward* text index, since seeds
        are located as plain exact queries.)

    >>> matcher = BwtSeedMatcher("ccacacagaagcc")
    >>> [o.start for o in matcher.search("aaaaacaaac", 4)]
    [2]
    """

    def __init__(self, text: str):
        self._text = text
        self._fm = FMIndex(text)

    @property
    def fm_index(self) -> FMIndex:
        """The underlying (forward-text) FM-index."""
        return self._fm

    def search(self, pattern: str, k: int) -> List[Occurrence]:
        """All k-mismatch occurrences of ``pattern`` in the target."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        text = self._text
        m = len(pattern)
        if m > len(text):
            return []
        if k >= m:
            # Degenerate: every window matches.
            return [
                Occurrence(start, tuple(
                    i for i in range(m) if text[start + i] != pattern[i]
                ))
                for start in range(len(text) - m + 1)
            ]
        candidates = self._seed_candidates(pattern, k)
        return self._verify(sorted(candidates), pattern, k)

    # -- stages --------------------------------------------------------------

    def _seed_candidates(self, pattern: str, k: int) -> Set[int]:
        n, m = len(self._text), len(pattern)
        candidates: Set[int] = set()
        for block_offset, block in split_into_blocks(pattern, k + 1):
            try:
                hits = self._fm.locate(block)
            except AlphabetError:
                # The block contains a character the text never uses, so
                # it cannot occur exactly — the pigeonhole vote from this
                # block is legitimately empty.
                continue
            for hit in hits:
                start = hit - block_offset
                if 0 <= start <= n - m:
                    candidates.add(start)
        return candidates

    def _verify(self, candidates: List[int], pattern: str, k: int) -> List[Occurrence]:
        text = self._text
        m = len(pattern)
        out: List[Occurrence] = []
        for start in candidates:
            mismatches: List[int] = []
            ok = True
            for offset in range(m):
                if text[start + offset] != pattern[offset]:
                    mismatches.append(offset)
                    if len(mismatches) > k:
                        ok = False
                        break
            if ok:
                out.append(Occurrence(start, tuple(mismatches)))
        return out


def bwt_seed_search(text: str, pattern: str, k: int) -> List[Occurrence]:
    """One-shot wrapper over :class:`BwtSeedMatcher` (builds the index)."""
    return BwtSeedMatcher(text).search(pattern, k)
