"""O(kn) on-line k-mismatch matching via kangaroo jumps.

Representative of the O(kn + m log m) on-line family the paper compares
against ([20] Landau–Vishkin, [9] Galil–Giancarlo): preprocess once so any
text-suffix/pattern-suffix comparison jumps mismatch-to-mismatch in O(1),
then spend O(k) per candidate position.
"""

from __future__ import annotations

from typing import List

from ..core.types import Occurrence
from ..errors import PatternError
from ..mismatch.kangaroo import TextPatternOracle


class LandauVishkinMatcher:
    """Reusable matcher: preprocessing amortised over many ``k`` values.

    >>> matcher = LandauVishkinMatcher("ccacacagaagcc", "aaaaacaaac")
    >>> [o.start for o in matcher.search(4)]
    [2]
    """

    def __init__(self, text: str, pattern: str):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._text = text
        self._pattern = pattern
        self._oracle = TextPatternOracle(text, pattern) if len(pattern) <= len(text) else None

    def search(self, k: int) -> List[Occurrence]:
        """All k-mismatch occurrences, O(k) work per text position."""
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        if self._oracle is None:
            return []
        n, m = len(self._text), len(self._pattern)
        out: List[Occurrence] = []
        for start in range(n - m + 1):
            mismatches: List[int] = []
            for offset in self._oracle.iter_mismatch_offsets(start):
                mismatches.append(offset)
                if len(mismatches) > k:
                    break
            else:
                out.append(Occurrence(start, tuple(mismatches)))
        return out


def landau_vishkin_search(text: str, pattern: str, k: int) -> List[Occurrence]:
    """One-shot wrapper over :class:`LandauVishkinMatcher`."""
    return LandauVishkinMatcher(text, pattern).search(k)
