"""The "Amir" baseline: blocking, marking, and verification.

The paper (Sec. V, Fig. 10) describes Amir et al.'s method [1] as: split
the pattern into pieces ("breaks"), locate each piece exactly in the
target, *mark* every implied candidate position, **discard any position
marked fewer than k times**, and verify the survivors.

This reproduction implements that filter-and-verify pipeline with the
classical pigeonhole instantiation:

* the pattern is cut into ``2k`` disjoint blocks (``k`` mismatches can
  ruin at most ``k`` of them, so a true occurrence matches at least ``k``
  blocks exactly);
* one Aho–Corasick pass over the target finds every exact block
  occurrence and votes for its implied window start;
* positions with at least ``k`` votes are verified with a budget-capped
  direct comparison (O(k) expected each).

When the pattern is too short to carve ``2k`` non-empty blocks the
pigeonhole argument gives no filtering and the matcher degrades to plain
O(k)-per-position verification, which is the correct behaviour for the
regime where k approaches m.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from ..core.types import Occurrence
from ..errors import PatternError
from ..strings.aho_corasick import AhoCorasick


def split_into_blocks(pattern: str, n_blocks: int) -> List[Tuple[int, str]]:
    """Cut ``pattern`` into ``n_blocks`` disjoint, covering blocks.

    Returns ``(offset, block)`` pairs; block lengths differ by at most one.

    >>> split_into_blocks("abcdefg", 3)
    [(0, 'abc'), (3, 'de'), (5, 'fg')]
    """
    m = len(pattern)
    if not 1 <= n_blocks <= m:
        raise PatternError(f"cannot cut a length-{m} pattern into {n_blocks} blocks")
    base, extra = divmod(m, n_blocks)
    blocks: List[Tuple[int, str]] = []
    offset = 0
    for b in range(n_blocks):
        size = base + (1 if b < extra else 0)
        blocks.append((offset, pattern[offset:offset + size]))
        offset += size
    return blocks


class AmirMatcher:
    """Filter-and-verify k-mismatch matcher in the style of Amir et al. [1].

    >>> matcher = AmirMatcher("ccacacagaagcc", "aaaaacaaac")
    >>> [o.start for o in matcher.search(4)]
    [2]
    """

    def __init__(self, text: str, pattern: str):
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._text = text
        self._pattern = pattern
        self._fits = len(pattern) <= len(text)

    def search(self, k: int) -> List[Occurrence]:
        """All k-mismatch occurrences via blocking + marking + verification."""
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        if not self._fits:
            return []
        m = len(self._pattern)
        if k == 0:
            return self._verify(self._exact_candidates(), k)
        if 2 * k > m:
            # No useful pigeonhole filter: verify every position (O(kn)).
            return self._verify(range(len(self._text) - m + 1), k)
        candidates = self._marked_candidates(k)
        return self._verify(sorted(candidates), k)

    # -- stages ------------------------------------------------------------------

    def _exact_candidates(self) -> List[int]:
        automaton = AhoCorasick([self._pattern])
        return [pos for pos, _pid in automaton.iter_matches(self._text)]

    def _marked_candidates(self, k: int) -> List[int]:
        """Positions marked at least ``k`` times by exact block hits."""
        blocks = split_into_blocks(self._pattern, 2 * k)
        automaton = AhoCorasick([block for _, block in blocks])
        offsets = [offset for offset, _ in blocks]
        n, m = len(self._text), len(self._pattern)
        votes: Counter = Counter()
        for hit_pos, block_id in automaton.iter_matches(self._text):
            start = hit_pos - offsets[block_id]
            if 0 <= start <= n - m:
                votes[start] += 1
        # The paper: "discard any position that is marked less than k times".
        return [start for start, count in votes.items() if count >= k]

    def _verify(self, candidates: Sequence[int], k: int) -> List[Occurrence]:
        # Budget-capped direct comparison: after the marking filter the
        # candidate set is tiny, and even in the unfiltered regime the
        # early exit keeps this O(k) expected per position.
        text = self._text
        pattern = self._pattern
        m = len(pattern)
        out: List[Occurrence] = []
        for start in candidates:
            mismatches: List[int] = []
            ok = True
            for offset in range(m):
                if text[start + offset] != pattern[offset]:
                    mismatches.append(offset)
                    if len(mismatches) > k:
                        ok = False
                        break
            if ok:
                out.append(Occurrence(start, tuple(mismatches)))
        return out

    def search_with_filter_stats(self, k: int) -> Tuple[List[Occurrence], dict]:
        """Search and report filter effectiveness (candidates vs. matches)."""
        if not self._fits or k <= 0 or 2 * k > len(self._pattern):
            occs = self.search(k)
            window_count = max(0, len(self._text) - len(self._pattern) + 1)
            return occs, {"candidates": window_count, "matches": len(occs), "filtered": False}
        candidates = self._marked_candidates(k)
        occs = self._verify(sorted(candidates), k)
        return occs, {"candidates": len(candidates), "matches": len(occs), "filtered": True}


def amir_search(text: str, pattern: str, k: int) -> List[Occurrence]:
    """One-shot wrapper over :class:`AmirMatcher`."""
    return AmirMatcher(text, pattern).search(k)
