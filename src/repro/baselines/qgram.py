"""q-gram hash-index baseline ("seeds", paper Sec. II).

The paper's related work covers hash-table methods ([22], [4]): extract
short *seeds*, look them up in a hash table, then verify candidate
alignments.  This module implements the classical q-gram-lemma
instantiation as a reusable **index** (unlike the Amir baseline, whose
marking stage re-scans the target per pattern):

* a dictionary from every q-gram of the target to its positions, built
  once per target;
* per query, the pattern is cut into ``k + 1`` disjoint blocks — at
  least one must occur exactly in any k-mismatch window (pigeonhole) —
  each block's hits vote for candidate starts;
* candidates are verified with a budget-capped direct comparison
  (candidate sets are tiny after filtration, so O(m) per candidate beats
  any per-query preprocessing).

Expected time O(m + n/|Σ|^q) per query after O(n) preprocessing; worst
case O(mn) "which is extremely unlikely" (paper Sec. II, on [22]).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from ..core.types import Occurrence
from ..errors import PatternError
from .amir import split_into_blocks


class QGramIndex:
    """A position index over all q-grams of a fixed target.

    Parameters
    ----------
    text:
        The target string.
    q:
        Gram length.  Queries whose pigeonhole blocks are shorter than
        ``q`` fall back to exhaustive verification (still exact).

    >>> index = QGramIndex("acagaca", q=3)
    >>> sorted(index.positions("aca"))
    [0, 4]
    >>> [o.start for o in index.search("tcaca", 2)]
    [0, 2]
    """

    def __init__(self, text: str, q: int = 8):
        if q < 1:
            raise PatternError(f"q must be positive, got {q}")
        self._text = text
        self._q = q
        table: Dict[str, List[int]] = defaultdict(list)
        for i in range(len(text) - q + 1):
            table[text[i:i + q]].append(i)
        self._table = dict(table)

    @property
    def q(self) -> int:
        """The gram length."""
        return self._q

    def positions(self, gram: str) -> List[int]:
        """Exact occurrence starts of a single q-gram (must have length q)."""
        if len(gram) != self._q:
            raise PatternError(f"gram must have length {self._q}")
        return self._table.get(gram, [])

    # -- k-mismatch querying -----------------------------------------------------

    def search(self, pattern: str, k: int) -> List[Occurrence]:
        """All k-mismatch occurrences of ``pattern`` in the target."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        text = self._text
        m = len(pattern)
        if m > len(text):
            return []
        candidates = self._candidates(pattern, k)
        out: List[Occurrence] = []
        for start in sorted(candidates):
            mismatches: List[int] = []
            ok = True
            for offset in range(m):
                if text[start + offset] != pattern[offset]:
                    mismatches.append(offset)
                    if len(mismatches) > k:
                        ok = False
                        break
            if ok:
                out.append(Occurrence(start, tuple(mismatches)))
        return out

    def _candidates(self, pattern: str, k: int) -> Set[int]:
        text = self._text
        m = len(pattern)
        n_blocks = k + 1
        if m // n_blocks < self._q:
            # Blocks too short to contain a full q-gram: no filtration.
            return set(range(len(text) - m + 1))
        candidates: Set[int] = set()
        for block_offset, block in split_into_blocks(pattern, n_blocks):
            # Any exact block occurrence implies an exact hit of each of
            # its q-grams; probing the block's first q-gram suffices for
            # a superset of the block's occurrences.
            gram = block[: self._q]
            for hit in self._table.get(gram, ()):
                start = hit - block_offset
                if 0 <= start <= len(text) - m:
                    # Confirm the whole block before voting (keeps the
                    # candidate set close to true block hits).
                    if text[start + block_offset:start + block_offset + len(block)] == block:
                        candidates.add(start)
        return candidates

    def stats(self) -> dict:
        """Index shape: distinct grams and average bucket size."""
        buckets = self._table.values()
        total = sum(len(b) for b in buckets)
        return {
            "q": self._q,
            "distinct_grams": len(self._table),
            "indexed_positions": total,
            "avg_bucket": total / len(self._table) if self._table else 0.0,
        }


def qgram_search(text: str, pattern: str, k: int, q: int = 8) -> List[Occurrence]:
    """One-shot wrapper over :class:`QGramIndex` (builds the index)."""
    return QGramIndex(text, q=q).search(pattern, k)
