"""The naive O(mn) k-mismatch scan — ground truth for every other matcher."""

from __future__ import annotations

from typing import List

from ..core.types import Occurrence
from ..errors import PatternError


def naive_search(text: str, pattern: str, k: int) -> List[Occurrence]:
    """Every window of ``text`` within Hamming distance ``k`` of ``pattern``.

    Direct position-by-position comparison with early exit once a window
    exceeds the budget.  O(mn) worst case, O(kn) expected on random text.

    >>> [o.start for o in naive_search("ccacacagaagcc", "aaaaacaaac", 4)]
    [2]
    """
    if not pattern:
        raise PatternError("pattern must be non-empty")
    if k < 0:
        raise PatternError(f"k must be non-negative, got {k}")
    n, m = len(text), len(pattern)
    out: List[Occurrence] = []
    for start in range(n - m + 1):
        mismatches: List[int] = []
        for offset in range(m):
            if text[start + offset] != pattern[offset]:
                mismatches.append(offset)
                if len(mismatches) > k:
                    break
        else:
            out.append(Occurrence(start, tuple(mismatches)))
    return out


def naive_count(text: str, pattern: str, k: int) -> int:
    """Number of k-mismatch occurrences (convenience wrapper)."""
    return len(naive_search(text, pattern, k))
