"""Shared result types for every k-mismatch matcher in the package."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Tuple


@dataclass(frozen=True, order=True)
class Occurrence:
    """One approximate occurrence of the pattern in the target.

    Attributes
    ----------
    start:
        0-based start position of the occurrence window in the target.
    mismatches:
        Sorted 0-based *pattern offsets* where the window disagrees with
        the pattern (the paper's mismatch array ``B_l`` of a path, minus
        the ``∞`` padding).
    """

    start: int
    mismatches: Tuple[int, ...] = ()

    @property
    def n_mismatches(self) -> int:
        """Hamming distance between the pattern and the matched window."""
        return len(self.mismatches)

    def end(self, pattern_length: int) -> int:
        """Exclusive end position of the window in the target."""
        return self.start + pattern_length


@dataclass
class SearchStats:
    """Instrumentation counters shared by the tree searches.

    The M-tree leaf count ``n'`` (paper Table 2) and the S-tree node
    totals come from here; benchmarks report them alongside wall time.
    """

    #: Characters consumed by live index search (S-tree nodes created).
    nodes_expanded: int = 0
    #: ``children()`` calls — each costs O(|Σ|) rankall probes.
    rank_queries: int = 0
    #: Path terminations of any kind — the paper's n' (leaves of D).
    leaves: int = 0
    #: Paths that reached the full pattern length (reported occurrences).
    completed_paths: int = 0
    #: Paths cut because the mismatch budget was exhausted.
    budget_pruned: int = 0
    #: Paths cut because the index had no continuation.
    dead_ends: int = 0
    #: Paths cut by the φ(i) heuristic (S-tree baseline only).
    phi_pruned: int = 0
    #: Hash-table hits: subtrees derived instead of re-searched (Alg. A).
    reuse_hits: int = 0
    #: Subset of ``reuse_hits`` on entries recorded by an *earlier* query
    #: (Alg. A with a persistent cross-query memo).
    shared_reuse_hits: int = 0
    #: Stored characters replayed through derivation (Alg. A).
    chars_replayed: int = 0
    #: Kangaroo-jump probes used during derivation (Alg. A).
    derivation_jumps: int = 0
    #: Occurrence rows located (suffix-array walks).
    rows_located: int = 0
    #: Entries in the pair hash table at the end of the search (Alg. A).
    memo_size: int = 0

    extra: dict = field(default_factory=dict)

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Aggregate counters from another search (for batch runs).

        Every dataclass counter field is summed — the field list is
        derived from :func:`dataclasses.fields`, so counters added later
        can never be silently dropped from batch aggregation.  ``extra``
        is merged key-wise: numeric values add (missing keys count as 0),
        anything else takes the other side's value.
        """
        for spec in fields(self):
            if spec.name == "extra":
                continue
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))
        for key, value in other.extra.items():
            mine = self.extra.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool) and (
                mine is None or (isinstance(mine, (int, float)) and not isinstance(mine, bool))
            ):
                self.extra[key] = (mine or 0) + value
            else:
                self.extra[key] = value
        return self

    def to_dict(self) -> dict:
        """JSON-compatible dictionary of every counter (``extra`` included)."""
        payload = {
            spec.name: getattr(self, spec.name) for spec in fields(self) if spec.name != "extra"
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload
