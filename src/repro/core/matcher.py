"""Public facade: :class:`KMismatchIndex`.

Builds the BWT array over the *reversed* target once (the paper's
``L = BWT(s̄)``, Sec. IV) and serves any number of k-mismatch queries
through either Algorithm A (default) or the S-tree baseline of [34].
Exact search (k = 0) and plain substring queries are served by the same
index.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabet import DNA, Alphabet, infer_alphabet
from ..obs import OBS, PROFILER, new_trace_id, profile_memory, record_query_error
from ..bwt.fmindex import DEFAULT_SA_SAMPLE, FMIndex
from ..bwt.rankall import DEFAULT_SAMPLE_RATE
from ..dna import reverse_complement
from ..engine.registry import CAP_MISMATCH, REGISTRY, SearchEngine
from ..errors import PatternError, SerializationError
from .kerrors import EditOccurrence
from .types import Occurrence, SearchStats
from .wildcard import DEFAULT_WILDCARD


@dataclass(frozen=True, order=True)
class ReadHit:
    """One strand-aware mapping of a read (see :meth:`KMismatchIndex.map_read`).

    ``strand`` is ``'+'`` when the read matched the target as given and
    ``'-'`` when its reverse complement matched; ``occurrence`` is always
    in forward-target coordinates.
    """

    occurrence: Occurrence
    strand: str

#: The index-backed mismatch engines, in registry order — the method
#: names the paper's evaluation exercises.  :meth:`KMismatchIndex.search`
#: additionally accepts every other registered mismatch engine (the
#: baselines of :mod:`repro.baselines`); see ``docs/ENGINES.md``.
METHODS = REGISTRY.names(capability=CAP_MISMATCH, kind="index")


class KMismatchIndex:
    """An index over a target string answering k-mismatch queries.

    Parameters
    ----------
    text:
        The target string ``s`` (e.g. a genome).
    alphabet:
        Defaults to DNA when the text fits it, else the inferred minimal
        alphabet.
    occ_sample_rate / sa_sample_rate:
        Space/time knobs forwarded to the FM-index (paper Fig. 2 stores a
        rankall checkpoint every 4 BWT elements).

    >>> index = KMismatchIndex("acagaca")
    >>> [(o.start, o.mismatches) for o in index.search("tcaca", k=2)]
    [(0, (0, 3)), (2, (0, 1))]
    >>> index.count("aca", k=0)
    2
    """

    def __init__(
        self,
        text: str,
        alphabet: Optional[Alphabet] = None,
        occ_sample_rate: int = DEFAULT_SAMPLE_RATE,
        sa_sample_rate: int = DEFAULT_SA_SAMPLE,
    ):
        if not text:
            raise PatternError("target text must be non-empty")
        if alphabet is None:
            alphabet = DNA if DNA.contains(text) else infer_alphabet(text)
        self._text = text
        self._alphabet = alphabet
        self._engines: Dict[tuple, SearchEngine] = {}
        #: M-tree of the most recent ``algorithm_a`` search with
        #: ``record_mtree=True`` (``None`` until then).
        self.last_mtree = None
        # profile_memory is a no-op unless memory profiling is switched
        # on (REPRO_PROFILE_MEMORY / repro-cli profile --memory); when on
        # it publishes index.build.peak_bytes plus a top-allocator table.
        with OBS.span("kmismatch.build", length=len(text)), profile_memory("index.build"):
            self._fm = FMIndex(
                text[::-1],
                alphabet,
                occ_sample_rate=occ_sample_rate,
                sa_sample_rate=sa_sample_rate,
            )

    # -- introspection ------------------------------------------------------------

    @property
    def text(self) -> str:
        """The indexed target string.

        Indexes loaded from the binary format do not store the text —
        it is recovered from the BWT on first access and cached (the
        index-backed engines never need it; only the scan baselines do).
        """
        if self._text is None:
            self._text = self._fm.reconstruct_text()[::-1]
        return self._text

    @property
    def alphabet(self) -> Alphabet:
        """The index's alphabet."""
        return self._alphabet

    @property
    def fm_index(self) -> FMIndex:
        """The underlying FM-index (over the reversed target)."""
        return self._fm

    @property
    def text_length(self) -> int:
        """Length of the indexed target (sentinel excluded).

        Part of the query facade shared with
        :class:`~repro.shard.ShardedIndex` — prefer this over
        ``fm_index.text_length`` in code that accepts either.
        """
        return self._fm.text_length

    def nbytes(self) -> int:
        """Approximate index payload in bytes."""
        return self._fm.nbytes()

    # -- queries -------------------------------------------------------------------

    def search(
        self,
        pattern: str,
        k: int,
        method: str = "algorithm_a",
    ) -> List[Occurrence]:
        """All occurrences of ``pattern`` within Hamming distance ``k``.

        ``method`` names any registered mismatch engine:
        ``"algorithm_a"`` (the paper's contribution), ``"stree"`` /
        ``"stree_nophi"`` (the baseline of [34]), the ablation variants,
        or a comparison method from :mod:`repro.baselines` (``"naive"``,
        ``"amir"``, ``"cole"``, ...).  See ``docs/ENGINES.md``.
        """
        occurrences, _ = self.search_with_stats(pattern, k, method)
        return occurrences

    def search_with_stats(
        self,
        pattern: str,
        k: int,
        method: str = "algorithm_a",
        record_mtree: bool = False,
    ) -> Tuple[List[Occurrence], SearchStats]:
        """Like :meth:`search`, also returning the search statistics.

        When observability is on, each query reports both the flat
        totals (``query.latency_ms``, ``query.count``, ...) and the
        dimensional series the paper's evaluation plots —
        ``query.search_ms{engine,k}`` and labelled ``query.count`` /
        ``query.occurrences`` children — plus a flight-recorder record
        sharing the latency observation's exemplar ``trace_id``.  Engine
        labels use the registry's canonical name, so ``"A()"`` and
        ``"algorithm_a"`` land in one series.
        """
        if not OBS.enabled:
            self._alphabet.validate(pattern)
            return self._dispatch(pattern, k, method, record_mtree)
        engine_name = REGISTRY.canonical_name(method)
        trace_id = new_trace_id()
        profile_marker = PROFILER.marker() if PROFILER.is_running() else None
        start_ns = perf_counter_ns()
        # A raised query is a served query too: classify and count it in
        # query.errors{engine,k,kind} before re-raising (idempotently —
        # the executor and shard router wrap this same path).
        try:
            with OBS.span("kmismatch.search", method=engine_name,
                          m=len(pattern), k=k) as span:
                self._alphabet.validate(pattern)
                occurrences, stats = self._dispatch(pattern, k, method, record_mtree)
                span.set(occurrences=len(occurrences))
        except Exception as exc:
            record_query_error(engine_name, k, exc)
            OBS.emit_wide(
                "error", engine=engine_name, k=k, m=len(pattern),
                trace_id=trace_id, error=type(exc).__name__,
            )
            raise
        duration_ms = (perf_counter_ns() - start_ns) / 1e6
        OBS.metrics.histogram("query.latency_ms").observe(duration_ms)
        OBS.metrics.histogram(
            "query.search_ms", engine=engine_name, k=k
        ).observe(duration_ms, trace_id)
        OBS.metrics.counter("query.count").inc()
        OBS.metrics.counter("query.count", engine=engine_name, k=k).inc()
        OBS.metrics.counter("query.occurrences").inc(len(occurrences))
        OBS.metrics.counter(
            "query.occurrences", engine=engine_name, k=k
        ).inc(len(occurrences))
        # A slow query pins its own sample slice next to the record: the
        # folded stacks the profiler collected while this query ran, so
        # the flight recorder answers "where did that outlier spend its
        # time" without a separate repro run.
        profile = None
        slow_ms = OBS.recorder.slow_ms
        if profile_marker is not None and slow_ms is not None and duration_ms >= slow_ms:
            profile = PROFILER.folded_since(profile_marker)
        OBS.record_query(
            engine=engine_name,
            k=k,
            m=len(pattern),
            duration_ms=duration_ms,
            occurrences=len(occurrences),
            stats=stats,
            spans=span.to_dict() if OBS.tracer.enabled else None,
            trace_id=trace_id,
            profile=profile,
        )
        # The wide-event sibling of the record above: one flat JSONL
        # line per query (sampled/rotated sink — see repro.obs.events),
        # sharing the trace_id so exemplar, record and event join.
        OBS.emit_wide(
            "query",
            engine=engine_name,
            k=k,
            m=len(pattern),
            duration_ms=duration_ms,
            occurrences=len(occurrences),
            trace_id=trace_id,
        )
        return occurrences, stats

    def engine(self, method: str, fresh: bool = False, **knobs) -> SearchEngine:
        """The engine instance serving ``method`` on this index.

        Engines are resolved through the process-wide registry
        (:data:`repro.engine.REGISTRY`) and **cached per (method, knobs)**
        — repeated queries reuse one instance, which is what lets
        Algorithm A's persistent pair memo derive range continuations
        recorded while serving earlier queries, and lets per-target
        baselines (Cole's suffix tree, the q-gram index) amortise their
        preprocessing.

        Engine instances are stateful and not thread-safe; pass
        ``fresh=True`` (or use :meth:`clone_for_worker`) to obtain a
        private, uncached instance for a worker.
        """
        spec = REGISTRY.resolve(method)
        if fresh or not spec.cacheable:
            return spec.factory(self, **knobs)
        key = (spec.name, tuple(sorted(knobs.items())))
        engine = self._engines.get(key)
        if engine is None:
            engine = self._engines[key] = spec.factory(self, **knobs)
        return engine

    def clone_for_worker(self) -> "KMismatchIndex":
        """A shallow clone sharing the FM-index but owning its engine cache.

        Batch workers search through clones so each worker gets private
        (non-thread-safe) engine instances while the expensive index
        payload stays shared.
        """
        clone = object.__new__(type(self))
        clone._text = self._text
        clone._alphabet = self._alphabet
        clone._fm = self._fm
        clone._engines = {}
        clone.last_mtree = None
        return clone

    def _dispatch(
        self, pattern: str, k: int, method: str, record_mtree: bool
    ) -> Tuple[List[Occurrence], SearchStats]:
        spec = REGISTRY.resolve(method)
        if CAP_MISMATCH not in spec.capabilities:
            raise PatternError(
                f"method {spec.name!r} does not answer k-mismatch queries; "
                f"expected one of {REGISTRY.names(capability=CAP_MISMATCH)}"
            )
        knobs = {"record_mtree": True} if record_mtree and spec.supports_mtree else {}
        engine = self.engine(spec.name, **knobs)
        result = engine.search(pattern, k)
        if spec.supports_mtree:
            self.last_mtree = getattr(engine, "last_mtree", None)
        return result

    def count(self, pattern: str, k: int = 0, method: str = "algorithm_a") -> int:
        """Number of occurrences of ``pattern`` within distance ``k``."""
        # Validate on the k = 0 fast path too: every query entry point
        # rejects out-of-alphabet patterns the same way `search` does.
        self._alphabet.validate(pattern)
        if k == 0:
            # Exact counting never needs the tree search: one backward pass.
            return self._fm.count(pattern[::-1])
        return len(self.search(pattern, k, method))

    def contains(self, pattern: str, k: int = 0) -> bool:
        """True when the pattern occurs within distance ``k``."""
        self._alphabet.validate(pattern)
        if k == 0:
            return self._fm.contains(pattern[::-1])
        return bool(self.search(pattern, k))

    def locate_exact(self, pattern: str) -> List[int]:
        """Exact occurrence starts (k = 0 fast path)."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        self._alphabet.validate(pattern)
        n, m = self._fm.text_length, len(pattern)
        return sorted(n - p - m for p in self._fm.locate(pattern[::-1]))

    def best_match(self, pattern: str, k_max: int, method: str = "algorithm_a") -> List[Occurrence]:
        """Occurrences at the *smallest* k ≤ ``k_max`` with any hit.

        The aligner-style query: try k = 0, 1, ... until something
        matches; return that k's full occurrence set (empty when nothing
        matches within ``k_max``).  Every returned occurrence has the
        same, minimal mismatch count.
        """
        if k_max < 0:
            raise PatternError(f"k_max must be non-negative, got {k_max}")
        for k in range(k_max + 1):
            occurrences = self.search(pattern, k, method=method)
            if occurrences:
                best = min(o.n_mismatches for o in occurrences)
                return [o for o in occurrences if o.n_mismatches == best]
        return []

    # -- problem variants (paper Sec. II taxonomy) -----------------------------------

    def search_edit(self, pattern: str, k: int) -> List[EditOccurrence]:
        """String matching with k *errors* (Levenshtein) over the same index.

        Returns every target window within edit distance ``k`` of the
        pattern; see :mod:`repro.core.kerrors` for semantics and
        :func:`repro.core.kerrors.best_per_start` to reduce per start.
        """
        self._alphabet.validate(pattern)
        occurrences, _ = self.engine("kerrors").search(pattern, k)
        return occurrences

    def search_wildcard(
        self, pattern: str, k: int = 0, wildcard: str = DEFAULT_WILDCARD
    ) -> List[Occurrence]:
        """k-mismatch search where ``wildcard`` pattern positions match anything."""
        occurrences, _ = self.engine("wildcard", wildcard=wildcard).search(pattern, k)
        return occurrences

    # -- read mapping -------------------------------------------------------------------

    def map_read(self, read: str, k: int, method: str = "algorithm_a") -> List[ReadHit]:
        """Map a read against both strands of the target.

        Searches the read as given (``'+'`` hits) and its reverse
        complement (``'-'`` hits), the way the paper's evaluation handles
        wgsim's strand-flipped reads.  DNA targets only.
        """
        hits, _ = self.map_read_with_stats(read, k, method=method)
        return hits

    def map_read_with_stats(
        self, read: str, k: int, method: str = "algorithm_a"
    ) -> Tuple[List[ReadHit], SearchStats]:
        """Like :meth:`map_read`, also returning merged two-strand stats."""
        if self._alphabet != DNA:
            raise PatternError("map_read requires a DNA target")
        with OBS.span("kmismatch.map_read", m=len(read), k=k) as span:
            forward, stats = self.search_with_stats(read, k, method)
            reverse, reverse_stats = self.search_with_stats(
                reverse_complement(read), k, method
            )
            stats.merge(reverse_stats)
            hits = [ReadHit(occ, "+") for occ in forward]
            hits += [ReadHit(occ, "-") for occ in reverse]
            span.set(hits=len(hits))
        if OBS.enabled:
            OBS.metrics.counter("map_read.count").inc()
            OBS.metrics.counter("map_read.hits").inc(len(hits))
        return sorted(hits), stats

    def map_reads(
        self,
        reads: Sequence[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ) -> List[List[ReadHit]]:
        """Map a read batch; ``result[i]`` is read ``i``'s hit list.

        ``workers > 1`` fans chunks out over a thread or process pool
        (see :class:`repro.engine.BatchExecutor`); the serial path runs
        every read through the one cached engine so Algorithm A's
        persistent memo carries derivations across the whole batch.
        Result order matches input order in every mode.
        """
        from ..engine.executor import BatchExecutor

        executor = BatchExecutor(workers=workers, mode=mode, chunk_size=chunk_size)
        return executor.run_map(self, reads, k, method=method).results

    def search_batch(
        self,
        patterns: Sequence[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ) -> Dict[str, List[Occurrence]]:
        """Search many patterns over the one index; results keyed by pattern."""
        results, _ = self.search_batch_with_stats(
            patterns, k, method=method, workers=workers, mode=mode, chunk_size=chunk_size
        )
        return results

    def search_batch_with_stats(
        self,
        patterns: Sequence[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ) -> Tuple[Dict[str, List[Occurrence]], SearchStats]:
        """Like :meth:`search_batch`, also returning batch-merged stats.

        The batch is executed through :class:`repro.engine.BatchExecutor`:
        serially over the cached engine when ``workers <= 1``, else
        chunked over a ``"thread"`` or ``"process"`` pool with
        deterministic, input-ordered results.
        """
        from ..engine.executor import BatchExecutor

        executor = BatchExecutor(workers=workers, mode=mode, chunk_size=chunk_size)
        return executor.search_batch(self, patterns, k, method=method)

    # -- self-checks ------------------------------------------------------------------------

    def verify(self) -> None:
        """Run the index's internal consistency checks.

        Verifies every rank checkpoint, inverts the BWT back to the
        target, and recomputes the suffix array to audit every sampled
        entry.  Raises :class:`~repro.errors.IndexCorruptionError` on any
        drift; intended for use after loading a persisted index from
        untrusted storage.  Cost: O(n) for the checks plus one suffix
        array construction.
        """
        from ..errors import IndexCorruptionError
        from ..suffix import suffix_array

        self._fm._rank.verify()
        reversed_text = self.text[::-1]
        if self._fm.reconstruct_text() != reversed_text:
            raise IndexCorruptionError("BWT does not invert to the indexed text")
        sa = suffix_array(reversed_text, self._alphabet)
        for row, pos in self._fm._sampled_sa.items():
            if not 0 <= row < len(sa) or sa[row] != pos:
                raise IndexCorruptionError(f"sampled suffix-array entry drifted at row {row}")

    # -- persistence ----------------------------------------------------------------------

    _MAGIC = "repro-kmismatch-index"
    _VERSION = 1

    def dumps(self) -> str:
        """Serialize the index (JSON).  The target text is *not* stored —
        it is recovered from the BWT on load."""
        return json.dumps(
            {"magic": self._MAGIC, "version": self._VERSION, "fm": self._fm.to_dict()}
        )

    @classmethod
    def loads(cls, data: str) -> "KMismatchIndex":
        """Rebuild an index from :meth:`dumps` output."""
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid index payload: {exc}") from None
        if payload.get("magic") != cls._MAGIC:
            raise SerializationError("not a serialized KMismatchIndex")
        if payload.get("version") != cls._VERSION:
            raise SerializationError(f"unsupported version {payload.get('version')}")
        fm = FMIndex.from_dict(payload["fm"])
        instance = cls.__new__(cls)
        instance._fm = fm
        instance._alphabet = fm.alphabet
        instance._text = fm.reconstruct_text()[::-1]
        instance._engines = {}
        instance.last_mtree = None
        try:
            instance._alphabet.validate(instance._text)
        except Exception:
            raise SerializationError("payload BWT does not invert to a valid text") from None
        return instance

    # -- binary persistence (repro.io.binfmt; see docs/INDEX_FORMAT.md) ---------

    @classmethod
    def _wrap_fm(cls, fm: FMIndex) -> "KMismatchIndex":
        """A facade around an already-loaded FM-index (text stays lazy)."""
        instance = cls.__new__(cls)
        instance._fm = fm
        instance._alphabet = fm.alphabet
        instance._text = None
        instance._engines = {}
        instance.last_mtree = None
        return instance

    def to_binary(self) -> bytes:
        """The index as one zero-copy-loadable binary blob."""
        return self._fm.to_binary()

    @classmethod
    def from_binary(cls, buffer, verify_checksums: bool = False) -> "KMismatchIndex":
        """Wrap a :meth:`to_binary` blob (or a shared-memory view of one).

        O(header): no section is copied or scanned, so process-pool
        workers attaching a shared-memory segment re-hydrate in constant
        time regardless of genome size.
        """
        return cls._wrap_fm(FMIndex.from_binary(buffer, verify_checksums=verify_checksums))

    def save(self, path) -> int:
        """Write the binary index format to ``path``; returns bytes written."""
        return self._fm.save(path)

    @classmethod
    def load(cls, path, mmap: bool = True, verify_checksums: bool = False) -> "KMismatchIndex":
        """Load a binary index file (memory-mapped by default)."""
        return cls._wrap_fm(
            FMIndex.load(path, mmap=mmap, verify_checksums=verify_checksums)
        )

    @classmethod
    def open(cls, path, mmap: bool = True):
        """Load a saved index of any format, sniffing the file's magic.

        Binary files (``repro-cli index --format bin``) load zero-copy
        via :meth:`load`; ``REPROSHD`` shard manifests (``repro-cli
        index --shards N``) return a :class:`~repro.shard.ShardedIndex`
        serving the same query facade over routed shards; anything else
        is treated as the JSON compatibility format and parsed through
        :meth:`loads`.
        """
        from ..io import binfmt

        if binfmt.sniff_manifest(path):
            from ..shard import ShardedIndex

            return ShardedIndex.open(path, mmap=mmap)
        if binfmt.sniff(path):
            return cls.load(path, mmap=mmap)
        with open(path) as handle:
            return cls.loads(handle.read())
