"""Public facade: :class:`KMismatchIndex`.

Builds the BWT array over the *reversed* target once (the paper's
``L = BWT(s̄)``, Sec. IV) and serves any number of k-mismatch queries
through either Algorithm A (default) or the S-tree baseline of [34].
Exact search (k = 0) and plain substring queries are served by the same
index.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabet import DNA, Alphabet, infer_alphabet
from ..obs import OBS
from ..bwt.fmindex import DEFAULT_SA_SAMPLE, FMIndex
from ..bwt.rankall import DEFAULT_SAMPLE_RATE
from ..dna import reverse_complement
from ..errors import PatternError, SerializationError
from .algorithm_a import AlgorithmASearcher
from .kerrors import EditOccurrence, KErrorsSearcher
from .stree import STreeSearcher
from .types import Occurrence, SearchStats
from .wildcard import DEFAULT_WILDCARD, WildcardSearcher


@dataclass(frozen=True, order=True)
class ReadHit:
    """One strand-aware mapping of a read (see :meth:`KMismatchIndex.map_read`).

    ``strand`` is ``'+'`` when the read matched the target as given and
    ``'-'`` when its reverse complement matched; ``occurrence`` is always
    in forward-target coordinates.
    """

    occurrence: Occurrence
    strand: str

#: Method names accepted by :meth:`KMismatchIndex.search`.
METHODS = (
    "algorithm_a",
    "algorithm_a_nophi",
    "algorithm_a_noreuse",
    "stree",
    "stree_nophi",
)


class KMismatchIndex:
    """An index over a target string answering k-mismatch queries.

    Parameters
    ----------
    text:
        The target string ``s`` (e.g. a genome).
    alphabet:
        Defaults to DNA when the text fits it, else the inferred minimal
        alphabet.
    occ_sample_rate / sa_sample_rate:
        Space/time knobs forwarded to the FM-index (paper Fig. 2 stores a
        rankall checkpoint every 4 BWT elements).

    >>> index = KMismatchIndex("acagaca")
    >>> [(o.start, o.mismatches) for o in index.search("tcaca", k=2)]
    [(0, (0, 3)), (2, (0, 1))]
    >>> index.count("aca", k=0)
    2
    """

    def __init__(
        self,
        text: str,
        alphabet: Optional[Alphabet] = None,
        occ_sample_rate: int = DEFAULT_SAMPLE_RATE,
        sa_sample_rate: int = DEFAULT_SA_SAMPLE,
    ):
        if not text:
            raise PatternError("target text must be non-empty")
        if alphabet is None:
            alphabet = DNA if DNA.contains(text) else infer_alphabet(text)
        self._text = text
        self._alphabet = alphabet
        with OBS.span("kmismatch.build", length=len(text)):
            self._fm = FMIndex(
                text[::-1],
                alphabet,
                occ_sample_rate=occ_sample_rate,
                sa_sample_rate=sa_sample_rate,
            )

    # -- introspection ------------------------------------------------------------

    @property
    def text(self) -> str:
        """The indexed target string."""
        return self._text

    @property
    def alphabet(self) -> Alphabet:
        """The index's alphabet."""
        return self._alphabet

    @property
    def fm_index(self) -> FMIndex:
        """The underlying FM-index (over the reversed target)."""
        return self._fm

    def nbytes(self) -> int:
        """Approximate index payload in bytes."""
        return self._fm.nbytes()

    # -- queries -------------------------------------------------------------------

    def search(
        self,
        pattern: str,
        k: int,
        method: str = "algorithm_a",
    ) -> List[Occurrence]:
        """All occurrences of ``pattern`` within Hamming distance ``k``.

        ``method`` selects the engine: ``"algorithm_a"`` (the paper's
        contribution), ``"stree"`` (the baseline of [34] with the φ
        heuristic) or ``"stree_nophi"`` (same, heuristic off).
        """
        occurrences, _ = self.search_with_stats(pattern, k, method)
        return occurrences

    def search_with_stats(
        self,
        pattern: str,
        k: int,
        method: str = "algorithm_a",
        record_mtree: bool = False,
    ) -> Tuple[List[Occurrence], SearchStats]:
        """Like :meth:`search`, also returning the search statistics."""
        self._alphabet.validate(pattern)
        if not OBS.enabled:
            return self._dispatch(pattern, k, method, record_mtree)
        start_ns = perf_counter_ns()
        with OBS.span("kmismatch.search", method=method, m=len(pattern), k=k) as span:
            occurrences, stats = self._dispatch(pattern, k, method, record_mtree)
            span.set(occurrences=len(occurrences))
        OBS.metrics.histogram("query.latency_ms").observe(
            (perf_counter_ns() - start_ns) / 1e6
        )
        OBS.metrics.counter("query.count").inc()
        OBS.metrics.counter("query.occurrences").inc(len(occurrences))
        return occurrences, stats

    def _dispatch(
        self, pattern: str, k: int, method: str, record_mtree: bool
    ) -> Tuple[List[Occurrence], SearchStats]:
        if method.startswith("algorithm_a"):
            if method == "algorithm_a":
                searcher = AlgorithmASearcher(self._fm, record_mtree=record_mtree)
            elif method == "algorithm_a_nophi":
                searcher = AlgorithmASearcher(self._fm, record_mtree=record_mtree, use_phi=False)
            elif method == "algorithm_a_noreuse":
                searcher = AlgorithmASearcher(self._fm, record_mtree=record_mtree, enable_reuse=False)
            else:
                raise PatternError(f"unknown method {method!r}; expected one of {METHODS}")
            result = searcher.search(pattern, k)
            self.last_mtree = searcher.last_mtree
            return result
        if method == "stree":
            return STreeSearcher(self._fm, use_phi=True).search(pattern, k)
        if method == "stree_nophi":
            return STreeSearcher(self._fm, use_phi=False).search(pattern, k)
        raise PatternError(f"unknown method {method!r}; expected one of {METHODS}")

    def count(self, pattern: str, k: int = 0, method: str = "algorithm_a") -> int:
        """Number of occurrences of ``pattern`` within distance ``k``."""
        if k == 0:
            # Exact counting never needs the tree search: one backward pass.
            return self._fm.count(pattern[::-1])
        return len(self.search(pattern, k, method))

    def contains(self, pattern: str, k: int = 0) -> bool:
        """True when the pattern occurs within distance ``k``."""
        if k == 0:
            return self._fm.contains(pattern[::-1])
        return bool(self.search(pattern, k))

    def locate_exact(self, pattern: str) -> List[int]:
        """Exact occurrence starts (k = 0 fast path)."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        n, m = len(self._text), len(pattern)
        return sorted(n - p - m for p in self._fm.locate(pattern[::-1]))

    def best_match(self, pattern: str, k_max: int, method: str = "algorithm_a") -> List[Occurrence]:
        """Occurrences at the *smallest* k ≤ ``k_max`` with any hit.

        The aligner-style query: try k = 0, 1, ... until something
        matches; return that k's full occurrence set (empty when nothing
        matches within ``k_max``).  Every returned occurrence has the
        same, minimal mismatch count.
        """
        if k_max < 0:
            raise PatternError(f"k_max must be non-negative, got {k_max}")
        for k in range(k_max + 1):
            occurrences = self.search(pattern, k, method=method)
            if occurrences:
                best = min(o.n_mismatches for o in occurrences)
                return [o for o in occurrences if o.n_mismatches == best]
        return []

    # -- problem variants (paper Sec. II taxonomy) -----------------------------------

    def search_edit(self, pattern: str, k: int) -> List[EditOccurrence]:
        """String matching with k *errors* (Levenshtein) over the same index.

        Returns every target window within edit distance ``k`` of the
        pattern; see :mod:`repro.core.kerrors` for semantics and
        :func:`repro.core.kerrors.best_per_start` to reduce per start.
        """
        self._alphabet.validate(pattern)
        return KErrorsSearcher(self._fm).search(pattern, k)

    def search_wildcard(
        self, pattern: str, k: int = 0, wildcard: str = DEFAULT_WILDCARD
    ) -> List[Occurrence]:
        """k-mismatch search where ``wildcard`` pattern positions match anything."""
        return WildcardSearcher(self._fm, wildcard=wildcard).search(pattern, k)

    # -- read mapping -------------------------------------------------------------------

    def map_read(self, read: str, k: int) -> List[ReadHit]:
        """Map a read against both strands of the target.

        Searches the read as given (``'+'`` hits) and its reverse
        complement (``'-'`` hits), the way the paper's evaluation handles
        wgsim's strand-flipped reads.  DNA targets only.
        """
        if self._alphabet != DNA:
            raise PatternError("map_read requires a DNA target")
        with OBS.span("kmismatch.map_read", m=len(read), k=k) as span:
            hits = [ReadHit(occ, "+") for occ in self.search(read, k)]
            hits += [ReadHit(occ, "-") for occ in self.search(reverse_complement(read), k)]
            span.set(hits=len(hits))
        if OBS.enabled:
            OBS.metrics.counter("map_read.count").inc()
            OBS.metrics.counter("map_read.hits").inc(len(hits))
        return sorted(hits)

    def search_batch(
        self, patterns: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> Dict[str, List[Occurrence]]:
        """Search many patterns over the one index; results keyed by pattern."""
        return {pattern: self.search(pattern, k, method=method) for pattern in patterns}

    # -- self-checks ------------------------------------------------------------------------

    def verify(self) -> None:
        """Run the index's internal consistency checks.

        Verifies every rank checkpoint, inverts the BWT back to the
        target, and recomputes the suffix array to audit every sampled
        entry.  Raises :class:`~repro.errors.IndexCorruptionError` on any
        drift; intended for use after loading a persisted index from
        untrusted storage.  Cost: O(n) for the checks plus one suffix
        array construction.
        """
        from ..errors import IndexCorruptionError
        from ..suffix import suffix_array

        self._fm._rank.verify()
        reversed_text = self._text[::-1]
        if self._fm.reconstruct_text() != reversed_text:
            raise IndexCorruptionError("BWT does not invert to the indexed text")
        sa = suffix_array(reversed_text, self._alphabet)
        for row, pos in self._fm._sampled_sa.items():
            if not 0 <= row < len(sa) or sa[row] != pos:
                raise IndexCorruptionError(f"sampled suffix-array entry drifted at row {row}")

    # -- persistence ----------------------------------------------------------------------

    _MAGIC = "repro-kmismatch-index"
    _VERSION = 1

    def dumps(self) -> str:
        """Serialize the index (JSON).  The target text is *not* stored —
        it is recovered from the BWT on load."""
        return json.dumps(
            {"magic": self._MAGIC, "version": self._VERSION, "fm": self._fm.to_dict()}
        )

    @classmethod
    def loads(cls, data: str) -> "KMismatchIndex":
        """Rebuild an index from :meth:`dumps` output."""
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid index payload: {exc}") from None
        if payload.get("magic") != cls._MAGIC:
            raise SerializationError("not a serialized KMismatchIndex")
        if payload.get("version") != cls._VERSION:
            raise SerializationError(f"unsupported version {payload.get('version')}")
        fm = FMIndex.from_dict(payload["fm"])
        instance = cls.__new__(cls)
        instance._fm = fm
        instance._alphabet = fm.alphabet
        instance._text = fm.reconstruct_text()[::-1]
        try:
            instance._alphabet.validate(instance._text)
        except Exception:
            raise SerializationError("payload BWT does not invert to a valid text") from None
        return instance
