"""String matching with don't-care symbols over the BWT array.

The third inexact-matching variant of paper Sec. II: the pattern may
contain wild cards that match any target character.  The paper notes the
match relation stops being transitive under wild cards, which breaks
KMP/Boyer–Moore shifting — but the BWT tree search absorbs them
naturally: a wild-card position simply branches to *every* child without
spending mismatch budget.  Combined with the mismatch budget ``k`` this
gives "k mismatches + don't-cares" in one walk.

In DNA practice the wild card is the IUPAC ``n`` base (unknown
nucleotide), the default here.
"""

from __future__ import annotations

from typing import List, Optional

from ..bwt.fmindex import FMIndex, Range
from ..errors import PatternError
from ..obs import COUNT_BUCKETS, OBS
from .stree import _ensure_recursion_headroom
from .types import Occurrence

#: Default wild-card character (IUPAC "any nucleotide").
DEFAULT_WILDCARD = "n"


class WildcardSearcher:
    """k-mismatch search with don't-care pattern positions.

    >>> from repro.alphabet import DNA
    >>> fm = FMIndex("acagaca"[::-1], DNA)
    >>> [o.start for o in WildcardSearcher(fm).search("ana", 0)]
    [0, 2, 4]
    """

    def __init__(self, fm_reverse: FMIndex, wildcard: str = DEFAULT_WILDCARD):
        if len(wildcard) != 1:
            raise PatternError("wildcard must be a single character")
        self._fm = fm_reverse
        self._wildcard = wildcard

    def search(self, pattern: str, k: int = 0) -> List[Occurrence]:
        """Occurrences of ``pattern`` with ≤ ``k`` mismatches at non-wild
        positions; wild-card positions match anything for free.

        The reported mismatch offsets never include wild-card positions.
        """
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        fm = self._fm
        m = len(pattern)
        if m > fm.text_length:
            return []
        _ensure_recursion_headroom(m)

        with OBS.span("wildcard.search", m=m, k=k, wildcard=self._wildcard) as span:
            self._m = m
            self._k = k
            self._n = fm.text_length
            # None marks a wild-card slot.
            self._pcodes: List[Optional[int]] = [
                None if ch == self._wildcard else fm.alphabet.code(ch) for ch in pattern
            ]
            self._out: List[Occurrence] = []
            self._path_mm: List[int] = []
            self._expand(fm.full_range(), 0, 0)
            span.set(occurrences=len(self._out))
        if OBS.enabled:
            OBS.metrics.counter("search.queries", engine="wildcard", k=k).inc()
            OBS.metrics.histogram(
                "search.occurrences", COUNT_BUCKETS, engine="wildcard", k=k
            ).observe(len(self._out))
        return sorted(self._out)

    # -- internals -----------------------------------------------------------

    def _expand(self, rng: Range, offset: int, used: int) -> None:
        if offset == self._m:
            fm = self._fm
            mm = tuple(self._path_mm)
            for row in range(rng.lo, rng.hi):
                start = self._n - fm.suffix_position(row) - self._m
                self._out.append(Occurrence(start, mm))
            return
        wanted = self._pcodes[offset]
        for code, child_rng in self._fm.children(rng):
            if wanted is None or code == wanted:
                self._expand(child_rng, offset + 1, used)
            elif used < self._k:
                self._path_mm.append(offset)
                self._expand(child_rng, offset + 1, used + 1)
                self._path_mm.pop()


def naive_wildcard_search(
    text: str, pattern: str, k: int, wildcard: str = DEFAULT_WILDCARD
) -> List[Occurrence]:
    """Direct wild-card-aware scan (testing oracle)."""
    if not pattern:
        raise PatternError("pattern must be non-empty")
    m = len(pattern)
    out: List[Occurrence] = []
    for start in range(len(text) - m + 1):
        mismatches: List[int] = []
        for offset in range(m):
            if pattern[offset] == wildcard:
                continue
            if text[start + offset] != pattern[offset]:
                mismatches.append(offset)
                if len(mismatches) > k:
                    break
        else:
            out.append(Occurrence(start, tuple(mismatches)))
    return out
