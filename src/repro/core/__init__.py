"""The paper's contribution: k-mismatch search over a BWT array.

* :mod:`repro.core.types` — occurrence records and search statistics
  shared by every matcher.
* :mod:`repro.core.stree` — the S-tree search of [34]: brute-force
  BWT-range branching with the φ(i) cut-off heuristic (paper Sec. IV-A).
* :mod:`repro.core.mtree` — the mismatching-tree structure (paper
  Sec. IV-D): matching runs collapsed to ``<-, 0>`` nodes, mismatches as
  ``<char, position>`` nodes.
* :mod:`repro.core.algorithm_a` — Algorithm A: the S-tree search with the
  pair hash table and mismatch-information derivation, achieving
  O(k·n' + n + m log m).
* :mod:`repro.core.matcher` — :class:`KMismatchIndex`, the public facade.
"""

from .types import Occurrence, SearchStats
from .stree import STreeSearcher, compute_phi
from .mtree import MTree, MTreeNode
from .algorithm_a import AlgorithmASearcher
from .kerrors import EditOccurrence, KErrorsSearcher, best_per_start, edit_distance
from .wildcard import WildcardSearcher
from .matcher import KMismatchIndex, ReadHit

__all__ = [
    "Occurrence",
    "SearchStats",
    "STreeSearcher",
    "compute_phi",
    "MTree",
    "MTreeNode",
    "AlgorithmASearcher",
    "KErrorsSearcher",
    "EditOccurrence",
    "best_per_start",
    "edit_distance",
    "WildcardSearcher",
    "KMismatchIndex",
    "ReadHit",
]
