"""Algorithm A: k-mismatch search with mismatch-information derivation.

This is the paper's contribution (Sec. IV-C/D).  The search explores the
same conceptual S-tree as the baseline of [34], but maintains a **hash
table of visited pairs**: the key is the BWT row range of a node.  The
continuation of a range in the index is *identical* wherever the range
recurs — only the pattern offset it is aligned against differs — so on a
repeat visit the subtree is **derived** instead of re-searched:

* matching runs recorded at the first visit (offset ``i``) are re-scored
  against the new offset ``j`` with kangaroo jumps over the pattern's
  self-mismatch structure — the information carried by the tables
  ``R_1..R_{m-1}`` — at O(1) per mismatch rather than O(1) per character;
* characters that mismatched at the first visit are stored explicitly
  (the M-tree's ``<char, position>`` nodes) and re-compared directly;
* interleaving the two streams is exactly the paper's ``merge()`` /
  ``node-creation()`` step pattern (Sec. IV-B, Fig. 5).

Where the stored subtree ends before the new context does — the paper's
case ``i > j`` ("D[u] needs to be extended"), a budget-pruned stub, or a
dead branch that the new budget could pass — the search resumes live from
the stored BWT range, so the answer set is always exactly the k-mismatch
occurrence set (the property tests pin this against the naive scan).

Complexity: O(k·n' + n + m log m) with ``n'`` the number of M-tree leaves
(paper Sec. IV-D); preprocessing builds the ``R`` tables once per pattern.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Optional, Tuple

from ..bwt.fmindex import FMIndex, Range
from ..errors import PatternError
from ..mismatch.tables import MismatchTables
from ..obs import COUNT_BUCKETS, OBS
from .mtree import MTree
from .stree import _ensure_recursion_headroom, compute_phi, record_search_metrics
from .types import Occurrence, SearchStats

#: Stored segments at most this long are re-scored by direct comparison;
#: longer ones use the O(k) kangaroo-jump merge.  Pure constant-factor
#: tuning: in CPython, generator setup costs more than ~a dozen integer
#: comparisons.
_DIRECT_SCAN_LIMIT = 24


class _Run:
    """A stored S-tree path segment (unary chain of consumed characters).

    ``codes[d]`` / ``ranges[d]`` give the character consumed at relative
    depth ``d`` and the BWT range reached after consuming it; at first
    exploration ``codes[d]`` was compared against
    ``pattern[start_offset + d]``, and ``mm_rel`` lists the relative depths
    where that comparison failed.  ``status`` records how the segment
    ends:

    ========  =======================================================
    'open'    still being explored (transient)
    'inner'   ends at a branch point; ``children`` holds the branches
    'dead'    the index has no continuation
    'end'     the pattern was exhausted at first exploration
    'stub'    never explored — the first visit's budget was spent
    'ref'     continuation is another memoised entry (``ref``)
    ========  =======================================================

    ``gen`` is the searcher query generation that recorded the segment;
    replays from a *later* generation (persistent cross-query memo) skip
    the kangaroo merge — ``mm_rel``/``start_offset`` describe comparisons
    against an earlier pattern — and re-score the stored characters
    directly instead.
    """

    __slots__ = ("start_offset", "codes", "ranges", "mm_rel", "status", "children", "ref", "gen")

    def __init__(
        self,
        start_offset: int,
        codes: List[int],
        ranges: List[Range],
        mm_rel: List[int],
        gen: int = 0,
    ):
        self.start_offset = start_offset
        self.codes = codes
        self.ranges = ranges
        self.mm_rel = mm_rel
        self.status = "open"
        self.children: List["_Run"] = []
        self.ref: Optional[Tuple["_Run", int]] = None
        self.gen = gen


class AlgorithmASearcher:
    """The paper's Algorithm A over an FM-index of the reversed target.

    Parameters
    ----------
    fm_reverse:
        FM-index built over the *reversed* target string.
    record_mtree:
        When True, :attr:`last_mtree` holds the explicit mismatching tree
        of the most recent search (Sec. IV-D structure; used by the worked
        examples and tests — adds overhead).
    enable_reuse:
        When False, the pair hash table is disabled and every subtree is
        searched live — the ablation baseline isolating the paper's
        derivation idea.
    use_phi:
        Additionally apply the φ(i) cut-off of [34] (sound,
        context-independent pruning; the paper's Algorithm A does not use
        it, but at reduced target scales φ is far more selective than at
        genome scale, so it is on by default here — the ablation
        benchmarks isolate its effect).
    min_memo_width:
        Ranges narrower than this are explored with a lean, non-recording
        DFS instead of being entered into the hash table.  A width-1
        range is a single text position; its subtree is a thin path whose
        re-derivation saves almost nothing, while recording it costs a
        hash insert plus node storage per character.  The paper's literal
        behaviour (every pair recorded) is ``min_memo_width=1``; the
        ablation benchmark sweeps this knob.
    persistent_memo:
        When True (default) the pair hash table survives across calls to
        :meth:`search` on this instance: a range pair recorded while
        serving one read is derived — never re-searched — when a later
        read reaches the same BWT range.  The continuation of a range in
        the index depends only on the *target*, so stored segments stay
        valid for every future pattern; replays of segments recorded by
        an earlier query re-score the stored characters directly (the
        kangaroo merge needs same-pattern self-mismatch structure).
        Cross-query hits are counted in ``stats.shared_reuse_hits``.
    memo_limit:
        Soft bound on persistent hash-table entries.  After each search,
        entries recorded by the oldest generations are evicted until the
        table fits (the current query's entries are never evicted, so one
        very large query may transiently exceed the bound).  Eviction and
        occupancy are exported via ``OBS`` under ``algorithm_a.memo.*``.

    >>> from repro.alphabet import DNA
    >>> fm = FMIndex("acagaca"[::-1], DNA)
    >>> occs, stats = AlgorithmASearcher(fm).search("tcaca", k=2)
    >>> [(o.start, o.mismatches) for o in occs]
    [(0, (0, 3)), (2, (0, 1))]
    """

    #: Canonical engine-registry name; spans are ``<engine_name>.search``
    #: and metrics ``search.<engine_name>.*`` (the obs naming contract).
    engine_name = "algorithm_a"

    def __init__(
        self,
        fm_reverse: FMIndex,
        record_mtree: bool = False,
        enable_reuse: bool = True,
        use_phi: bool = True,
        min_memo_width: int = 4,
        persistent_memo: bool = True,
        memo_limit: int = 200_000,
    ):
        if min_memo_width < 1:
            raise PatternError("min_memo_width must be >= 1")
        if memo_limit < 1:
            raise PatternError("memo_limit must be >= 1")
        self._fm = fm_reverse
        self._record_mtree = record_mtree
        self._enable_reuse = enable_reuse
        self._use_phi = use_phi
        self._min_memo_width = min_memo_width
        self._persistent_memo = persistent_memo
        self._memo_limit = memo_limit
        self._memo: dict = {}
        self._generation = 0
        #: M-tree of the most recent search (when ``record_mtree``).
        self.last_mtree: Optional[MTree] = None

    @property
    def memo_entries(self) -> int:
        """Live entries in the (persistent) pair hash table."""
        return len(self._memo)

    def clear_memo(self) -> None:
        """Drop every retained range pair (the next search starts cold)."""
        self._memo.clear()

    # -- public API ------------------------------------------------------------

    def search(self, pattern: str, k: int) -> Tuple[List[Occurrence], SearchStats]:
        """All occurrences of ``pattern`` with at most ``k`` mismatches.

        Returns occurrences sorted by start position plus search
        statistics; ``stats.leaves`` is the paper's n'.
        """
        fm = self._fm
        m = len(pattern)
        if m == 0:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        stats = SearchStats()
        if m > fm.text_length:
            return [], stats
        _ensure_recursion_headroom(m)

        with OBS.span(
            self.engine_name + ".search", m=m, k=k, reuse=self._enable_reuse, phi=self._use_phi
        ) as span:
            self._n = fm.text_length
            self._m = m
            self._k = k
            self._pcodes = fm.alphabet.encode(pattern)
            # Preprocessing (paper's O(m log m) term): the R tables and the
            # kangaroo oracle that backs their unbounded extension.  Built
            # lazily — only derivations over segments longer than the direct-
            # scan threshold consult them, and many searches never do.
            self._pattern = pattern
            self._tables_cache: Optional[MismatchTables] = None
            self._phi = compute_phi(fm, self._pcodes) if self._use_phi else None
            if not self._persistent_memo:
                self._memo = {}
            self._generation += 1
            self._stats = stats
            self._occurrences: List[Occurrence] = []
            self._path: List[Tuple[int, int]] = []  # (pattern offset, code) per mismatch
            self._mtree = MTree(m) if self._record_mtree else None

            self._continue_live(fm.full_range(), 0, 0)

            stats.memo_size = len(self._memo)
            evicted = self._evict_memo() if self._persistent_memo else 0
            span.set(
                leaves=stats.leaves,
                reuse_hits=stats.reuse_hits,
                shared_reuse_hits=stats.shared_reuse_hits,
                memo_size=stats.memo_size,
                occurrences=len(self._occurrences),
            )
        if OBS.enabled:
            record_search_metrics(self.engine_name, stats, len(self._occurrences), k)
            # Derivation-machinery families, labelled {engine,k} like every
            # other search series (the flat search.algorithm_a.* names they
            # replace are retired — see docs/OBSERVABILITY.md).
            metrics = OBS.metrics
            engine = self.engine_name
            metrics.counter("search.reuse_hits", engine=engine, k=k).inc(stats.reuse_hits)
            metrics.counter("search.shared_reuse_hits", engine=engine, k=k).inc(
                stats.shared_reuse_hits
            )
            metrics.counter("search.chars_replayed", engine=engine, k=k).inc(
                stats.chars_replayed
            )
            metrics.counter("search.derivation_jumps", engine=engine, k=k).inc(
                stats.derivation_jumps
            )
            metrics.histogram("search.memo_size", COUNT_BUCKETS, engine=engine, k=k).observe(
                stats.memo_size
            )
            metrics.counter(self.engine_name + ".memo.evicted").inc(evicted)
            metrics.gauge(self.engine_name + ".memo.entries").set(len(self._memo))
        self.last_mtree = self._mtree
        return sorted(self._occurrences), stats

    def _evict_memo(self) -> int:
        """Enforce ``memo_limit`` by dropping oldest-generation entries.

        Generation granularity keeps this out of the per-node hot path: a
        single O(table) sweep between queries, no per-hit LRU bookkeeping.
        Entries recorded by the just-finished query are never dropped, so
        the bound is soft for a single oversized search.
        """
        excess = len(self._memo) - self._memo_limit
        if excess <= 0:
            return 0
        per_gen: dict = {}
        for entry in self._memo.values():
            gen = entry[0].gen
            per_gen[gen] = per_gen.get(gen, 0) + 1
        cutoff = -1
        drop = 0
        for gen in sorted(per_gen):
            if gen == self._generation or drop >= excess:
                break
            drop += per_gen[gen]
            cutoff = gen
        if cutoff < 0:
            return 0
        self._memo = {
            key: value for key, value in self._memo.items() if value[0].gen > cutoff
        }
        return drop

    @property
    def tables(self) -> Optional[MismatchTables]:
        """The R tables of the most recent search (built on first use)."""
        if getattr(self, "_pattern", None) is None:
            return None
        if self._tables_cache is None:
            self._tables_cache = MismatchTables(self._pattern, self._k)
        return self._tables_cache

    @property
    def _oracle(self):
        return self.tables.oracle

    # -- path recording -----------------------------------------------------------

    def _record_complete(self, rng: Range) -> None:
        stats = self._stats
        stats.leaves += 1
        stats.completed_paths += 1
        mm = tuple(pos for pos, _ in self._path)
        fm = self._fm
        for row in range(rng.lo, rng.hi):
            start = self._n - fm.suffix_position(row) - self._m
            stats.rows_located += 1
            self._occurrences.append(Occurrence(start, mm))
        if self._mtree is not None:
            self._mtree.add_path(self._decorated_path())

    def _record_dead(self, length: int) -> None:
        self._stats.leaves += 1
        self._stats.dead_ends += 1
        if self._mtree is not None:
            self._mtree.add_path(self._decorated_path(), length=length)

    def _record_budget_cut(self, pos: int, code: int) -> None:
        self._stats.leaves += 1
        self._stats.budget_pruned += 1
        if self._mtree is not None:
            extra = self._decorated_path() + [(pos, self._fm.alphabet.symbol(code))]
            self._mtree.add_path(extra, length=pos + 1)

    def _record_phi_cut(self, length: int) -> None:
        self._stats.leaves += 1
        self._stats.phi_pruned += 1
        if self._mtree is not None:
            self._mtree.add_path(self._decorated_path(), length=length)

    def _decorated_path(self) -> List[Tuple[int, str]]:
        symbol = self._fm.alphabet.symbol
        return [(pos, symbol(code)) for pos, code in self._path]

    # -- live exploration -----------------------------------------------------------

    def _continue_live(self, rng: Range, offset: int, used: int) -> None:
        """Match ``pattern[offset:]`` from ``rng`` (offset < m), memo-aware."""
        if rng.hi - rng.lo < self._min_memo_width:
            self._light(rng, offset, used)
            return
        if self._phi is not None and self._k - used < self._phi[offset]:
            self._record_phi_cut(offset)
            return
        key = (rng.lo, rng.hi)
        hit = self._memo.get(key) if self._enable_reuse else None
        if hit is not None:
            self._stats.reuse_hits += 1
            if hit[0].gen != self._generation:
                self._stats.shared_reuse_hits += 1
            self._replay(hit[0], hit[1], offset, used)
            return
        self._stats.rank_queries += 1
        branches = self._fm.children(rng)
        pseudo = _Run(offset, [], [rng], [], self._generation)
        if self._enable_reuse:
            self._memo[key] = (pseudo, -1)
        if not branches:
            pseudo.status = "dead"
            self._record_dead(offset)
            return
        self._expand_branches(pseudo, branches, offset, used)

    def _light(self, rng: Range, offset: int, used: int) -> None:
        """Lean non-recording DFS for ranges below the memo threshold.

        Identical pruning and leaf accounting to the recording path, but
        no hash-table inserts and no stored structure — these subtrees are
        thin and their re-derivation would save (almost) nothing.
        """
        if offset == self._m:
            self._record_complete(rng)
            return
        if self._phi is not None and self._k - used < self._phi[offset]:
            self._record_phi_cut(offset)
            return
        self._stats.rank_queries += 1
        children = self._fm.children(rng)
        if not children:
            self._record_dead(offset)
            return
        stats = self._stats
        pcode = self._pcodes[offset]
        k = self._k
        path = self._path
        for code, crng in children:
            if code == pcode:
                stats.nodes_expanded += 1
                self._light(crng, offset + 1, used)
            elif used < k:
                stats.nodes_expanded += 1
                path.append((offset, code))
                self._light(crng, offset + 1, used + 1)
                path.pop()
            else:
                self._record_budget_cut(offset, code)

    def _expand_branches(self, parent: _Run, branches: List[Tuple[int, Range]], offset: int, used: int) -> None:
        """Attach and explore one child per branch.

        Children recorded for derivation become :class:`_Run` nodes;
        budget stubs and below-threshold ("light") children stay as raw
        ``(code, range)`` tuples — the replay machinery re-scores the one
        character directly and resumes live from the stored range.
        """
        # Attach the (mutable) list before exploring so concurrent replays
        # (range recurrence along this very path) see a valid, if partial,
        # tree.
        kids: List[object] = []
        parent.children = kids
        parent.status = "inner"
        pcode = self._pcodes[offset]
        k = self._k
        threshold = self._min_memo_width
        path = self._path
        for code, crng in branches:
            is_mm = code != pcode
            if used + is_mm > k:
                kids.append((code, crng))
                self._record_budget_cut(offset, code)
                continue
            self._stats.nodes_expanded += 1
            if is_mm:
                path.append((offset, code))
            if crng.hi - crng.lo < threshold:
                kids.append((code, crng))
                self._light(crng, offset + 1, used + is_mm)
            else:
                child = _Run(offset, [code], [crng], [0] if is_mm else [], self._generation)
                kids.append(child)
                self._fill_run(child, used + is_mm)
            if is_mm:
                path.pop()

    def _fill_run(self, run: _Run, used: int) -> None:
        """Extend ``run`` along unary continuations; recurse at branch points.

        On entry the run holds exactly one consumed character whose
        mismatch (if any) is already reflected in ``used`` and
        ``self._path``.
        """
        fm = self._fm
        memo = self._memo
        pcodes = self._pcodes
        m, k = self._m, self._k
        stats = self._stats
        pushed = 0
        t = 0
        while True:
            rng = run.ranges[t]
            nxt = run.start_offset + t + 1
            if nxt == m:
                run.status = "end"
                self._record_complete(rng)
                break
            if self._phi is not None and k - used < self._phi[nxt]:
                run.status = "phi"
                self._record_phi_cut(nxt)
                break
            key = (rng.lo, rng.hi)
            if self._enable_reuse:
                hit = memo.get(key)
                if hit is not None:
                    run.status = "ref"
                    run.ref = hit
                    stats.reuse_hits += 1
                    if hit[0].gen != self._generation:
                        stats.shared_reuse_hits += 1
                    self._replay(hit[0], hit[1], nxt, used)
                    break
            stats.rank_queries += 1
            branches = fm.children(rng)
            if not branches:
                run.status = "dead"
                if self._enable_reuse:
                    memo[key] = (run, t)
                self._record_dead(nxt)
                break
            if len(branches) == 1:
                code, crng = branches[0]
                is_mm = code != pcodes[nxt]
                if used + is_mm <= k and crng.hi - crng.lo >= self._min_memo_width:
                    if self._enable_reuse:
                        memo[key] = (run, t)
                    run.codes.append(code)
                    run.ranges.append(crng)
                    stats.nodes_expanded += 1
                    if is_mm:
                        run.mm_rel.append(t + 1)
                        self._path.append((nxt, code))
                        pushed += 1
                        used += 1
                    t += 1
                    continue
            if self._enable_reuse:
                memo[key] = (run, t)
            self._expand_branches(run, branches, nxt, used)
            break
        for _ in range(pushed):
            self._path.pop()

    # -- derivation (replay of memoised subtrees) ------------------------------------

    def _replay(self, run: _Run, t: int, offset: int, used: int) -> None:
        """Re-score the stored continuation of ``run`` after index ``t``
        against pattern offset ``offset`` — the paper's node-creation().
        """
        m, k = self._m, self._k
        if self._phi is not None and k - used < self._phi[offset]:
            self._record_phi_cut(offset)
            return
        stored = len(run.codes) - (t + 1)
        need = m - offset
        window = min(stored, need)
        a = run.start_offset + t + 1  # original comparison offset
        pushed = 0
        cut = False
        if window > 0:
            if window <= _DIRECT_SCAN_LIMIT or run.gen != self._generation:
                # Direct compare loop: for short stored segments it beats
                # the kangaroo-jump setup cost; for segments recorded by an
                # *earlier query* (persistent memo) it is the only sound
                # option — the kangaroo merge interprets ``mm_rel`` against
                # the pattern the segment was first scored on.  Stored
                # codes themselves are pattern-independent, so comparing
                # them against the current pattern is exact either way.
                codes = run.codes
                pcodes = self._pcodes
                base = t + 1
                path = self._path
                for o in range(window):
                    code = codes[base + o]
                    if code != pcodes[offset + o]:
                        if used == k:
                            self._record_budget_cut(offset + o, code)
                            cut = True
                            break
                        used += 1
                        path.append((offset + o, code))
                        pushed += 1
            else:
                for o, code in self._iter_replay_mismatches(run, t, a, offset, window):
                    if used == k:
                        self._record_budget_cut(offset + o, code)
                        cut = True
                        break
                    used += 1
                    self._path.append((offset + o, code))
                    pushed += 1
            self._stats.chars_replayed += window
        if not cut:
            if need <= stored:
                # Paper case i < j: the stored subtree out-covers the new
                # context; the occurrence range is mid-run.
                self._record_complete(run.ranges[t + need])
            else:
                after = offset + stored
                status = run.status
                if status == "inner":
                    for child in run.children:
                        if type(child) is _Run:
                            self._replay(child, -1, after, used)
                        else:
                            self._replay_slot(child[0], child[1], after, used)
                elif status == "dead":
                    self._record_dead(after)
                elif status == "ref":
                    self._stats.reuse_hits += 1
                    if run.ref[0].gen != self._generation:
                        self._stats.shared_reuse_hits += 1
                    self._replay(run.ref[0], run.ref[1], after, used)
                else:
                    # 'end' (paper case i > j: extend), 'stub' (first visit
                    # had no budget), 'phi' (first visit cut by φ), 'light'
                    # (below-threshold subtree, re-walked leanly), or
                    # 'open' (range recurrence along the path under
                    # construction): resume a live search.
                    self._continue_live(run.ranges[-1], after, used)
        for _ in range(pushed):
            self._path.pop()

    def _replay_slot(self, code: int, crng: Range, offset: int, used: int) -> None:
        """Re-score an unrecorded child slot (stub or light) at ``offset``."""
        is_mm = code != self._pcodes[offset]
        if used + is_mm > self._k:
            self._record_budget_cut(offset, code)
            return
        if is_mm:
            self._path.append((offset, code))
        if offset + 1 == self._m:
            self._record_complete(crng)
        else:
            self._continue_live(crng, offset + 1, used + is_mm)
        if is_mm:
            self._path.pop()

    def _iter_replay_mismatches(
        self, run: _Run, t: int, a: int, offset: int, window: int
    ) -> Iterator[Tuple[int, int]]:
        """Yield ``(o, code)`` for every relative depth ``o < window`` where
        the stored character disagrees with ``pattern[offset + o]``.

        Two sorted streams are merged, mirroring the paper's merge():

        * kangaroo self-mismatch offsets between pattern suffixes ``a``
          and ``offset`` — positions that *matched* at the first visit and
          now fall on a pattern self-disagreement;
        * the run's original mismatch depths — stored characters compared
          directly against the new pattern position (paper step 4).
        """
        pcodes = self._pcodes
        codes = run.codes
        orig = run.mm_rel
        stats = self._stats
        qi = bisect_right(orig, t)
        kang = (
            self._oracle.iter_mismatch_offsets(a, offset, window)
            if a != offset
            else iter(())
        )
        ko = next(kang, None)
        while True:
            oo = orig[qi] - (t + 1) if qi < len(orig) else None
            if oo is not None and oo >= window:
                oo = None
            if ko is None and oo is None:
                return
            stats.derivation_jumps += 1
            if oo is None or (ko is not None and ko < oo):
                # Matched originally (stored char == pattern[a+o]); the
                # pattern disagrees with itself here, so it is a mismatch
                # against the new offset.
                yield ko, codes[t + 1 + ko]
                ko = next(kang, None)
            else:
                if ko is not None and ko == oo:
                    ko = next(kang, None)  # same depth; resolved directly
                code = codes[t + 1 + oo]
                if code != pcodes[offset + oo]:
                    yield oo, code
                qi += 1
