"""The mismatching tree (M-tree) of paper Sec. IV-D.

An M-tree ``D`` compresses an S-tree: every *maximal match sub-path*
(MM-path, Def. 3) collapses into a single node ``<-, 0>``, and every
mismatching S-node ``<x, [α, β]>`` compared against ``r[i]`` becomes a
node ``<x, i>``.  Each root-to-leaf path of ``D`` is one mismatch array
``B_l`` — one candidate alignment of the pattern.

The searchers build the M-tree from the per-path mismatch records
``(position, character)``: consecutive mismatch positions ``p < q`` with
``q > p + 1`` have a (shared, maximal) match node between them, leading
matches merge into the virtual root (itself a ``<-, 0>`` node, paper
Fig. 7), and trailing matches append one final match node.  The leaf count
``n'`` of this tree is the quantity the paper's complexity bound
O(k·n' + n) and Table 2 are stated in.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

MATCH_KIND = "match"
MISMATCH_KIND = "mismatch"


class MTreeNode:
    """One node of an M-tree.

    Match nodes render as ``<-, 0>``; mismatch nodes as ``<char, pos>``
    with ``pos`` the 0-based pattern offset of the disagreement.
    """

    __slots__ = ("kind", "char", "pos", "children", "leaf_paths")

    def __init__(self, kind: str, char: Optional[str] = None, pos: Optional[int] = None):
        self.kind = kind
        self.char = char
        self.pos = pos
        #: Children keyed by ``(char, pos)`` for mismatch nodes and by the
        #: singleton ``MATCH_KIND`` for the (unique) match child.
        self.children: Dict[object, "MTreeNode"] = {}
        #: Number of search paths terminating at this node.
        self.leaf_paths = 0

    @property
    def is_match(self) -> bool:
        """True for ``<-, 0>`` nodes."""
        return self.kind == MATCH_KIND

    def label(self) -> str:
        """Paper-style node label."""
        if self.is_match:
            return "<-, 0>"
        return f"<{self.char}, {self.pos}>"

    def match_child(self) -> "MTreeNode":
        """Get or create this node's match child (never on a match node)."""
        child = self.children.get(MATCH_KIND)
        if child is None:
            child = MTreeNode(MATCH_KIND)
            self.children[MATCH_KIND] = child
        return child

    def mismatch_child(self, char: str, pos: int) -> "MTreeNode":
        """Get or create the mismatch child ``<char, pos>``."""
        key = (char, pos)
        child = self.children.get(key)
        if child is None:
            child = MTreeNode(MISMATCH_KIND, char, pos)
            self.children[key] = child
        return child


class MTree:
    """A mismatching tree, built incrementally from search-path records.

    >>> tree = MTree(pattern_length=5)
    >>> _ = tree.add_path([(0, 'a'), (3, 'g')])   # the paper's B_1 = [1, 4]
    >>> _ = tree.add_path([(0, 'a'), (1, 'g')])   # B_2 = [1, 2]
    >>> tree.n_leaves
    2
    """

    def __init__(self, pattern_length: int):
        if pattern_length <= 0:
            raise ValueError("pattern_length must be positive")
        self._m = pattern_length
        #: The virtual root — handled as a match node (paper Fig. 7, u0).
        self.root = MTreeNode(MATCH_KIND)
        self._n_paths = 0

    @property
    def pattern_length(self) -> int:
        """Length of the pattern the tree describes alignments of."""
        return self._m

    def add_path(self, mismatches: Sequence[Tuple[int, str]], length: Optional[int] = None) -> MTreeNode:
        """Record one search path.

        ``mismatches`` is the path's sorted ``(pattern offset, character)``
        record; ``length`` is how many pattern positions the path covered
        before terminating (defaults to the full pattern — i.e. a
        completed alignment).  Returns the leaf node.
        """
        end = self._m if length is None else length
        node = self.root
        prev = -1
        for pos, char in mismatches:
            if not prev < pos < end:
                raise ValueError(f"mismatch offsets must be increasing and below {end}")
            if pos > prev + 1 and not node.is_match:
                node = node.match_child()
            node = node.mismatch_child(char, pos)
            prev = pos
        if end - 1 > prev and not node.is_match:
            node = node.match_child()
        node.leaf_paths += 1
        self._n_paths += 1
        return node

    # -- measurements ------------------------------------------------------

    @property
    def n_paths(self) -> int:
        """Number of paths recorded so far."""
        return self._n_paths

    def iter_nodes(self) -> Iterator[MTreeNode]:
        """Every node, root included, in DFS order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    @property
    def n_nodes(self) -> int:
        """Total node count (root included)."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes — the paper's n'."""
        return sum(1 for node in self.iter_nodes() if not node.children)

    def render(self) -> str:
        """ASCII rendering (for debugging and the worked examples)."""
        lines: List[str] = []

        def walk(node: MTreeNode, depth: int) -> None:
            marker = f"  × {node.leaf_paths}" if node.leaf_paths and not node.children else ""
            lines.append("  " * depth + node.label() + marker)
            for key in sorted(node.children, key=str):
                walk(node.children[key], depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
