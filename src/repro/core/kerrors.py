"""String matching with k errors (Levenshtein) over the BWT array.

Paper Sec. II distinguishes three inexact-matching problems: k mismatches
(Hamming — the paper's subject), **k errors** (Levenshtein, "d_{i,j} =
min{...}" dynamic programming), and don't-cares.  This module extends the
same BWT-array machinery to the k-errors problem, the natural companion
feature a production release of the paper's system would ship: the index
search tree is walked exactly as in the S-tree, but each node carries a
banded row of the edit-distance DP between the consumed target substring
and the pattern.

Semantics: :func:`KErrorsSearcher.search` reports every target substring
``s[start : start+length]`` whose edit distance to the pattern is at most
``k``, as :class:`EditOccurrence` records.  Because insertions/deletions
change the window length, several lengths can match at one start;
:func:`best_per_start` reduces to the closest window per start position.

Complexity: O(k) work per node of the pruned search tree (the DP band has
2k+1 cells), matching the banded-DP tradition the paper cites ([47]-style
O(kn) expected behaviour on the text side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..bwt.fmindex import FMIndex, Range
from ..errors import PatternError
from ..obs import COUNT_BUCKETS, OBS
from .stree import _ensure_recursion_headroom

_INF = float("inf")


@dataclass(frozen=True, order=True)
class EditOccurrence:
    """One approximate occurrence under edit distance.

    ``length`` is the matched window's length in the target (it may
    differ from the pattern length by up to ``k``); ``distance`` is the
    Levenshtein distance between the window and the pattern.
    """

    start: int
    length: int
    distance: int

    def end(self) -> int:
        """Exclusive end position of the window."""
        return self.start + self.length


def edit_distance(a: str, b: str) -> int:
    """Plain O(|a||b|) Levenshtein distance (testing/verification oracle).

    >>> edit_distance("acagaca", "acgaca")
    1
    """
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,          # delete from a
                    current[j - 1] + 1,       # insert into a
                    previous[j - 1] + (ch_a != ch_b),
                )
            )
        previous = current
    return previous[-1]


class KErrorsSearcher:
    """k-errors search over an FM-index of the *reversed* target.

    Mirrors :class:`~repro.core.stree.STreeSearcher`'s tree walk, with a
    banded edit-distance row per node instead of a mismatch counter.

    >>> from repro.alphabet import DNA
    >>> fm = FMIndex("acagaca"[::-1], DNA)
    >>> occs = KErrorsSearcher(fm).search("acgaca", 1)
    >>> (0, 7, 1) in {(o.start, o.length, o.distance) for o in occs}
    True
    """

    def __init__(self, fm_reverse: FMIndex):
        self._fm = fm_reverse

    def search(self, pattern: str, k: int) -> List[EditOccurrence]:
        """All windows of the target within edit distance ``k`` of ``pattern``."""
        if not pattern:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        fm = self._fm
        m = len(pattern)
        _ensure_recursion_headroom(m + k)

        with OBS.span("kerrors.search", m=m, k=k) as span:
            self._m = m
            self._k = k
            self._n = fm.text_length
            self._pcodes = fm.alphabet.encode(pattern)
            self._out: List[EditOccurrence] = []
            self._seen: set = set()

            # DP row over pattern prefixes: row[j] = min edits aligning the
            # consumed target substring against pattern[:j].  Depth 0: row[j]
            # = j (delete j pattern characters), banded at k.
            row = [j if j <= k else _INF for j in range(m + 1)]
            self._walk(fm.full_range(), 0, row)
            span.set(occurrences=len(self._out))
        if OBS.enabled:
            OBS.metrics.counter("search.queries", engine="kerrors", k=k).inc()
            OBS.metrics.histogram(
                "search.occurrences", COUNT_BUCKETS, engine="kerrors", k=k
            ).observe(len(self._out))
        return sorted(self._out)

    # -- internals ------------------------------------------------------------

    def _emit(self, rng: Range, depth: int, distance: int) -> None:
        fm = self._fm
        for bwt_row in range(rng.lo, rng.hi):
            position = fm.suffix_position(bwt_row)
            start = self._n - position - depth
            key = (start, depth)
            if key not in self._seen:
                self._seen.add(key)
                self._out.append(EditOccurrence(start, depth, distance))

    def _walk(self, rng: Range, depth: int, row: List[float]) -> None:
        m, k = self._m, self._k
        if row[m] <= k and depth > 0:
            self._emit(rng, depth, int(row[m]))
        # The matched window never needs to exceed m + k characters.
        if depth >= m + k:
            return
        if min(row) > k:
            return
        pcodes = self._pcodes
        for code, child_rng in self._fm.children(rng):
            new_row: List[float] = [0.0] * (m + 1)
            # First column: depth+1 target characters vs empty pattern
            # prefix = depth+1 deletions from the target window.
            new_row[0] = depth + 1 if depth + 1 <= k else _INF
            for j in range(1, m + 1):
                best = min(
                    row[j] + 1,                               # extra target char
                    new_row[j - 1] + 1,                       # extra pattern char
                    row[j - 1] + (code != pcodes[j - 1]),     # (mis)match
                )
                new_row[j] = best if best <= k else _INF
            if min(new_row) <= k:
                self._walk(child_rng, depth + 1, new_row)


def best_per_start(occurrences: List[EditOccurrence]) -> List[EditOccurrence]:
    """Reduce to the lowest-distance (then shortest) window per start.

    >>> occs = [EditOccurrence(3, 9, 1), EditOccurrence(3, 10, 0)]
    >>> best_per_start(occs)
    [EditOccurrence(start=3, length=10, distance=0)]
    """
    best: Dict[int, EditOccurrence] = {}
    for occ in occurrences:
        kept = best.get(occ.start)
        if kept is None or (occ.distance, occ.length) < (kept.distance, kept.length):
            best[occ.start] = occ
    return sorted(best.values())


def naive_kerrors_search(text: str, pattern: str, k: int) -> List[EditOccurrence]:
    """Direct per-window k-errors scan (testing oracle).

    Checks every ``(start, length)`` window with ``length`` within ``k``
    of the pattern length.  O(n · k · m²) — fine for the property tests,
    not for production use.
    """
    if not pattern:
        raise PatternError("pattern must be non-empty")
    if k < 0:
        raise PatternError(f"k must be non-negative, got {k}")
    m = len(pattern)
    out = []
    for start in range(len(text)):
        for length in range(max(0, m - k), min(m + k, len(text) - start) + 1):
            if length == 0:
                continue
            window = text[start:start + length]
            distance = edit_distance(window, pattern)
            if distance <= k:
                out.append(EditOccurrence(start, length, distance))
    return sorted(out)
