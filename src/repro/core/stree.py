"""The S-tree search: the BWT-based baseline of [34] (paper Sec. IV-A).

A *search tree* (S-tree) node is a pair ``<x, [α, β]>`` — a character and
a BWT row range.  The root is the whole BWT; a node's children are every
character with a non-empty sub-range.  Branches accumulating more than
``k`` mismatches against the pattern are cut; paths surviving to depth
``m`` are occurrences.

The baseline's only refinement is the φ(i) heuristic: ``φ(i)`` is the
number of consecutive, disjoint substrings of ``r[i..m-1]`` that do not
occur in the target at all; each such substring forces at least one
mismatch, so a subtree whose remaining budget is below φ can be cut
immediately.  The paper argues this heuristic is weak (it reasons about
the whole target, not the branch being explored) — the ablation benchmark
quantifies that claim.

The searcher operates over an FM-index of the *reversed* target so the
pattern is consumed left-to-right (paper Sec. IV: ``L = BWT(s̄)``).
"""

from __future__ import annotations

import sys
from typing import List, Sequence, Tuple

from ..bwt.fmindex import FMIndex, Range
from ..errors import PatternError
from ..obs import COUNT_BUCKETS, OBS
from .types import Occurrence, SearchStats


def record_search_metrics(
    engine: str, stats: SearchStats, n_occurrences: int, k: int = 0
) -> None:
    """Fold one search's :class:`SearchStats` into the metrics registry.

    Shared by every tree searcher so the per-query distributions (the
    paper's n' leaf counts, node totals) accumulate under uniform
    dimensional families — ``search.leaves{engine,k}``,
    ``search.nodes_expanded{engine,k}``, ``search.occurrences{engine,k}``,
    ``search.queries{engine,k}``, ``search.rank_queries{engine,k}`` —
    that let a dashboard reproduce the paper's per-k cuts (Fig. 11(a))
    from one scrape.  (The name-mangled ``search.<engine>.*`` flat twins
    these families replaced are retired; see the deprecation note in
    docs/OBSERVABILITY.md.)  No-op while tracing is disabled.
    """
    metrics = OBS.metrics
    metrics.histogram("search.leaves", COUNT_BUCKETS, engine=engine, k=k).observe(
        stats.leaves
    )
    metrics.histogram(
        "search.nodes_expanded", COUNT_BUCKETS, engine=engine, k=k
    ).observe(stats.nodes_expanded)
    metrics.histogram(
        "search.occurrences", COUNT_BUCKETS, engine=engine, k=k
    ).observe(n_occurrences)
    metrics.counter("search.queries", engine=engine, k=k).inc()
    metrics.counter("search.rank_queries", engine=engine, k=k).inc(stats.rank_queries)


def compute_phi(fm_reverse: FMIndex, pattern_codes: Sequence[int]) -> List[int]:
    """The paper's φ table for one pattern.

    ``phi[i]`` = number of consecutive disjoint substrings of
    ``pattern[i:]`` that do not occur in the target.  Computed greedily:
    from position ``i`` extend until the current substring vanishes from
    the index, count one, restart after it.  Since the extension test is
    the same "consume a character forward" primitive as the search itself,
    the reversed-text index answers it directly.

    The returned list has length ``m + 1`` with ``phi[m] = 0``.
    """
    m = len(pattern_codes)
    # first_vanish[i] = smallest e such that pattern[i..e] does not occur,
    # or m when pattern[i:] occurs entirely.
    first_vanish = [m] * (m + 1)
    for i in range(m):
        rng = fm_reverse.full_range()
        for e in range(i, m):
            rng = fm_reverse.extend(rng, pattern_codes[e])
            if rng.is_empty:
                first_vanish[i] = e
                break
    phi = [0] * (m + 1)
    for i in range(m - 1, -1, -1):
        e = first_vanish[i]
        phi[i] = 0 if e >= m else 1 + phi[e + 1]
    return phi


def _ensure_recursion_headroom(depth: int) -> None:
    """Raise the interpreter recursion limit for a DFS of ``depth`` levels."""
    needed = depth * 4 + 2000
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)


class STreeSearcher:
    """Brute-force k-mismatch search over a BWT array (method of [34]).

    Parameters
    ----------
    fm_reverse:
        FM-index built over the *reversed* target.
    use_phi:
        Apply the φ(i) cut-off heuristic (the distinguishing feature of
        [34]; disable for the ablation).

    >>> from repro.alphabet import DNA
    >>> fm = FMIndex("acagaca"[::-1], DNA)
    >>> occs, stats = STreeSearcher(fm).search("tcaca", k=2)
    >>> [(o.start, o.mismatches) for o in occs]
    [(0, (0, 3)), (2, (0, 1))]
    """

    #: Canonical engine-registry name; spans are ``<engine_name>.search``
    #: and metrics ``search.<engine_name>.*`` (the obs naming contract).
    engine_name = "stree"

    def __init__(self, fm_reverse: FMIndex, use_phi: bool = True):
        self._fm = fm_reverse
        self._use_phi = use_phi

    @property
    def use_phi(self) -> bool:
        """Whether the φ(i) cut-off heuristic is active."""
        return self._use_phi

    def search(self, pattern: str, k: int) -> Tuple[List[Occurrence], SearchStats]:
        """All occurrences of ``pattern`` with at most ``k`` mismatches.

        Returns the occurrences sorted by start position, plus the search
        statistics (node/leaf counts feeding the paper's Table 2 axis).
        """
        fm = self._fm
        m = len(pattern)
        if m == 0:
            raise PatternError("pattern must be non-empty")
        if k < 0:
            raise PatternError(f"k must be non-negative, got {k}")
        stats = SearchStats()
        if m > fm.text_length:
            return [], stats
        _ensure_recursion_headroom(m)

        with OBS.span(self.engine_name + ".search", m=m, k=k, phi=self._use_phi) as span:
            self._n = fm.text_length
            self._m = m
            self._k = k
            self._pcodes = fm.alphabet.encode(pattern)
            self._phi = compute_phi(fm, self._pcodes) if self._use_phi else None
            self._stats = stats
            self._occurrences: List[Occurrence] = []
            self._path_mm: List[int] = []
            # Prebound so the per-leaf hot path pays one None check when
            # tracing is off (the paper's S-tree depth distribution).
            self._leaf_depth = (
                OBS.metrics.histogram(
                    "search.leaf_depth", COUNT_BUCKETS, engine=self.engine_name, k=k
                )
                if OBS.enabled
                else None
            )

            self._expand(fm.full_range(), 0, 0)
            span.set(leaves=stats.leaves, occurrences=len(self._occurrences))
        if OBS.enabled:
            record_search_metrics(self.engine_name, stats, len(self._occurrences), k)
        return sorted(self._occurrences), stats

    # -- internals -----------------------------------------------------------

    def _emit(self, rng: Range) -> None:
        fm = self._fm
        mm = tuple(self._path_mm)
        for row in range(rng.lo, rng.hi):
            start = self._n - fm.suffix_position(row) - self._m
            self._stats.rows_located += 1
            self._occurrences.append(Occurrence(start, mm))

    def _expand(self, rng: Range, i: int, used: int) -> None:
        """Explore all continuations of ``rng`` at pattern offset ``i``."""
        stats = self._stats
        if i == self._m:
            stats.leaves += 1
            stats.completed_paths += 1
            if self._leaf_depth is not None:
                self._leaf_depth.observe(i)
            self._emit(rng)
            return
        if self._phi is not None and self._k - used < self._phi[i]:
            stats.leaves += 1
            stats.phi_pruned += 1
            if self._leaf_depth is not None:
                self._leaf_depth.observe(i)
            return
        stats.rank_queries += 1
        children = self._fm.children(rng)
        if not children:
            stats.leaves += 1
            stats.dead_ends += 1
            if self._leaf_depth is not None:
                self._leaf_depth.observe(i)
            return
        pcode = self._pcodes[i]
        for code, child_rng in children:
            if code == pcode:
                stats.nodes_expanded += 1
                self._expand(child_rng, i + 1, used)
            elif used < self._k:
                stats.nodes_expanded += 1
                self._path_mm.append(i)
                self._expand(child_rng, i + 1, used + 1)
                self._path_mm.pop()
            else:
                stats.leaves += 1
                stats.budget_pruned += 1
                if self._leaf_depth is not None:
                    self._leaf_depth.observe(i)
