"""Command-line interface: ``repro-cli``.

Subcommands
-----------
``index``          Build a BWT index for a FASTA/plain-text target and save it
                   (``--format bin`` writes the zero-copy binary format;
                   ``--shards N`` writes a ``REPROSHD`` manifest plus N
                   seam-overlapped shard indexes — see docs/SHARDING.md).
``search``         Query a target (or saved index) for a pattern with k mismatches.
``simulate``       Generate a synthetic genome and/or simulated reads.
``map``            Map reads to a target, SAM-like output (``--workers N`` fans
                   the batch out over a thread or process pool;
                   ``--index-file`` maps against a prebuilt index).
``compare``        Run the paper's methods over a read batch and print a table.
``engines``        List every registered search engine and its capabilities.
``stats``          Render a saved ``--stats-json`` trace file as text;
                   ``--by engine,k`` (or ``--by shard`` for routed
                   queries) regroups labelled series into dimensional
                   tables, ``--url`` replays a live ``/debug/metrics``
                   endpoint instead of a file.
``serve-metrics``  Expose /metrics, /healthz, /readyz, /slo, /alerts,
                   /debug/queries and the /debug/stream SSE push over
                   HTTP, optionally driving a read workload to populate
                   them (``--wide-events PATH`` appends one flat JSON
                   event per query); shuts down cleanly on SIGTERM/SIGINT.
``top``            Live terminal dashboard — QPS, latency percentiles,
                   error rate, worker utilization, per-engine and
                   per-shard tables — from a saved trace file or a live
                   server's /debug/stream (``--once``/``--json`` for
                   headless use).
``events``         Read a wide-event query log: ``tail`` (newest events)
                   and ``summarize`` (per-{engine,k} exact percentiles,
                   batch return paths, event rate).
``slo``            ``report`` (objectives, budgets burned, firing alerts),
                   ``check`` (exit 4 on violation — the CI gate) and
                   ``lint`` (strictly validate a rules file), over a live
                   ``--url`` or a saved trace file.
``metrics-lint``   Strictly validate an OpenMetrics exposition (file or
                   live URL) — the CI scrape-and-lint step.
``flightrecorder`` Render a dumped flight-recorder / event-log JSONL file.
``bench``          Run the fixed CI workload; with ``--check-regression``,
                   gate against a committed baseline JSON;
                   ``--update-baseline`` rewrites that baseline in one step.
``profile``        Run ``search``/``map``/``bench`` under the span-attributed
                   sampling profiler and write collapsed/folded stacks or
                   speedscope JSON (``--hz``, ``--out``, ``--format``,
                   ``--memory`` for tracemalloc index-build snapshots).

Method names on ``search`` and ``compare`` are resolved through the
engine registry (``repro.engine.REGISTRY``) — any registered mismatch
engine or alias works; ``repro-cli engines`` lists them.

The ``index``, ``search``, ``map`` and ``compare`` subcommands accept
``--trace`` (print a span/metrics summary to stderr), ``--stats-json
PATH`` (write the full machine-readable trace document), ``--events
PATH`` (stream one JSON line per query/batch), ``--flight-json PATH``
(dump the flight recorder on exit) and ``--profile PATH`` (sample the
command under the wall-clock profiler; folded stacks, or speedscope
JSON when PATH ends in ``.json``) — see ``docs/OBSERVABILITY.md``.
Setting ``REPRO_METRICS_PORT`` serves live telemetry over HTTP for the
duration of any of those commands.

The CLI works on plain one-sequence-per-file text or minimal FASTA (the
first record's sequence, headers stripped).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from .bench.reporting import (
    format_seconds,
    format_table,
    percentile_cells,
    percentile_headers,
)
from .bench.suite import MethodSuite, PAPER_METHODS
from .core.matcher import KMismatchIndex
from .engine import CAP_MISMATCH, MODES, REGISTRY
from .obs import OBS, MetricError, load_events, load_trace, render_records, render_trace
from .shard import ShardedIndex
from .simulate.genome import GenomeConfig, generate_genome
from .simulate.reads import ReadConfig, simulate_reads


def read_sequence(path: Path) -> str:
    """Load a sequence from plain text or minimal FASTA (first record)."""
    lines = path.read_text().splitlines()
    sequence_parts: List[str] = []
    in_first_record = False
    saw_header = any(line.startswith(">") for line in lines[:1])
    for line in lines:
        if line.startswith(">"):
            if in_first_record:
                break
            in_first_record = True
            continue
        if not saw_header or in_first_record:
            sequence_parts.append(line.strip())
    return "".join(sequence_parts).lower()


def _cmd_index(args: argparse.Namespace) -> int:
    text = read_sequence(Path(args.target))
    if args.shards > 1 and args.format != "bin":
        print("error: --shards N needs --format bin (a REPROSHD manifest plus "
              "per-shard binary REPROIDX files; docs/SHARDING.md)", file=sys.stderr)
        return 2
    with OBS.timed("cli.index", length=len(text), shards=args.shards) as timer:
        if args.shards > 1:
            index = ShardedIndex.build(
                text, args.shards,
                max_pattern=args.max_pattern, max_k=args.max_k,
                occ_sample_rate=args.occ_sample, sa_sample_rate=args.sa_sample,
                build_workers=args.build_workers,
            )
        else:
            index = KMismatchIndex(
                text, occ_sample_rate=args.occ_sample, sa_sample_rate=args.sa_sample
            )
    if args.shards > 1:
        index.save(args.output)
        detail = f"manifest + {index.n_shards} shard file(s)"
    elif args.format == "bin":
        index.save(args.output)
        detail = f"{args.format} format"
    else:
        Path(args.output).write_text(index.dumps())
        detail = f"{args.format} format"
    print(f"indexed {len(text)} bp in {format_seconds(timer.seconds)} -> {args.output} "
          f"({index.nbytes()} payload bytes, {detail})")
    return 0


def _load_index(args: argparse.Namespace) -> KMismatchIndex:
    if getattr(args, "index", False):
        return KMismatchIndex.open(args.target)
    return KMismatchIndex(read_sequence(Path(args.target)))


def _cmd_search(args: argparse.Namespace) -> int:
    index = _load_index(args)
    pattern = args.pattern.lower()
    with OBS.timed("cli.search", m=len(pattern), k=args.k) as timer:
        if args.edit:
            for occ in index.search_edit(pattern, args.k):
                print(f"{occ.start}\t{occ.length}\t{occ.distance}")
            count = "edit-distance windows"
        else:
            if args.wildcard:
                occurrences = index.search_wildcard(pattern, args.k, wildcard=args.wildcard)
            else:
                occurrences = index.search(pattern, args.k, method=args.method)
            for occ in occurrences:
                mm = ",".join(str(p) for p in occ.mismatches) or "-"
                print(f"{occ.start}\t{occ.n_mismatches}\t{mm}")
            count = f"{len(occurrences)} occurrence(s)"
    print(f"# {count} in {format_seconds(timer.seconds)}", file=sys.stderr)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    genome = generate_genome(
        GenomeConfig(
            length=args.length,
            gc_content=args.gc,
            repeat_fraction=args.repeats,
            seed=args.seed,
        )
    )
    Path(args.output).write_text(f">synthetic seed={args.seed}\n{genome}\n")
    print(f"wrote {len(genome)} bp genome -> {args.output}")
    if args.reads > 0:
        reads = simulate_reads(
            genome, ReadConfig(n_reads=args.reads, length=args.read_length, seed=args.seed + 1)
        )
        reads_path = Path(args.output).with_suffix(".reads.txt")
        with reads_path.open("w") as handle:
            for i, read in enumerate(reads):
                strand = "-" if read.reverse_strand else "+"
                handle.write(f"@read{i} pos={read.position} strand={strand} "
                             f"muts={read.n_mutations}\n{read.sequence}\n")
        print(f"wrote {len(reads)} reads -> {reads_path}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from .io import parse_fastq, write_sam

    if args.index_file:
        # open() may hand back a ShardedIndex for REPROSHD manifests;
        # text_length is the facade-level property both kinds serve.
        index = KMismatchIndex.open(args.index_file)
        text_length = index.text_length
    elif not args.target:
        print("error: map needs a TARGET file or --index-file PATH", file=sys.stderr)
        return 2
    else:
        text = read_sequence(Path(args.target))
        index = KMismatchIndex(text)
        text_length = len(text)
    reads_text = Path(args.reads).read_text()
    if reads_text.lstrip().startswith("@") and "\n+" in reads_text:
        records = [(r.name, r.sequence) for r in parse_fastq(reads_text)]
    else:
        records = [
            (f"read{i}", line.strip().lower())
            for i, line in enumerate(reads_text.splitlines())
            if line.strip() and not line.startswith(("#", ">"))
        ]
    reference = args.reference_name

    out = sys.stdout if args.output == "-" else Path(args.output).open("w")
    try:
        with OBS.timed("cli.map", n_reads=len(records), k=args.k,
                       workers=args.workers, mode=args.mode):
            hit_lists = index.map_reads(
                [sequence for _, sequence in records],
                args.k,
                workers=args.workers,
                mode=args.mode,
                chunk_size=args.chunk_size or None,
            )
            alignments = (
                (name, sequence, reference, hits)
                for (name, sequence), hits in zip(records, hit_lists)
            )
            written = write_sam(out, [(reference, text_length)], alignments)
    finally:
        if out is not sys.stdout:
            out.close()
    print(f"# wrote {written} alignment line(s) for {len(records)} read(s)",
          file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    text = read_sequence(Path(args.target))
    reads = [
        line.strip().lower()
        for line in Path(args.reads).read_text().splitlines()
        if line.strip() and not line.startswith(("@", ">", "#"))
    ]
    if args.limit > 0:
        reads = reads[: args.limit]
    suite = MethodSuite(text, methods=args.methods)
    rows = []
    with OBS.timed("cli.compare", k=args.k, n_reads=len(reads)):
        for result in suite.run_all(reads, args.k):
            rows.append(
                [result.method, format_seconds(result.avg_seconds)]
                + percentile_cells(result.latency_hist)
                + [result.n_occurrences]
            )
    print(format_table(["method", "avg time/read", *percentile_headers(), "occurrences"],
                       rows,
                       title=f"k={args.k}, {len(reads)} reads, target {len(text)} bp"))
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from .engine.registry import CAP_EDIT, CAP_WILDCARD

    # Capabilities the ShardedIndex facade routes shard-wise (every
    # engine runs per shard; hits are ownership-filtered and rebased).
    routed = {CAP_MISMATCH, CAP_EDIT, CAP_WILDCARD}
    rows = []
    for spec in REGISTRY.specs(capability=args.capability or None):
        rows.append([
            spec.name,
            spec.kind,
            ",".join(sorted(spec.capabilities)),
            "yes" if routed & set(spec.capabilities) else "-",
            ",".join(spec.aliases) or "-",
            spec.description,
        ])
    print(format_table(["engine", "kind", "capabilities", "sharded", "aliases",
                        "description"],
                       rows, title=f"{len(rows)} registered engine(s)"))
    return 0


def _metrics_payload_problem(payload) -> str:
    """Why ``payload`` is not a ``/debug/metrics`` registry document
    ('' when it is one).  Guards ``stats --url`` against non-repro (or
    pre-schema-v2) servers answering 200 with unrelated JSON — the CLI
    reports one line and exits 2 instead of crashing mid-render."""
    if not isinstance(payload, dict):
        return f"top level is {type(payload).__name__}, expected an object"
    for name, family in payload.items():
        if not isinstance(family, dict) or "type" not in family:
            return f"family {name!r} carries no 'type' field"
    return ""


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.url:
        from .obs.export import fetch_metrics_json

        try:
            payload = fetch_metrics_json(args.url)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"error: cannot fetch {args.url}: {exc}", file=sys.stderr)
            return 2
        problem = _metrics_payload_problem(payload)
        if problem:
            print(f"error: {args.url} is not a schema-v2 metrics endpoint "
                  f"({problem}); point --url at a repro-cli serve-metrics "
                  f"server", file=sys.stderr)
            return 2
        document = {"metrics": payload}
    elif args.trace_file:
        try:
            document = load_trace(args.trace_file)
        except MetricError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        print("error: stats needs a TRACE file or --url URL", file=sys.stderr)
        return 2
    if args.by:
        from .obs.breakdown import parse_by, render_breakdown

        dimensions = parse_by(args.by)
        if not dimensions:
            print("error: --by needs at least one label name", file=sys.stderr)
            return 2
        print(render_breakdown(document.get("metrics") or {}, dimensions,
                               families=args.family or None))
        return 0
    print(render_trace(document))
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .errors import ReproError
    from .obs import LABELS_DROPPED_METRIC, READINESS, index_canary
    from .obs.server import MetricsServer
    from .obs.slo import configure_slo_engine, load_rules

    OBS.enable()
    if args.slow_ms is not None:
        OBS.recorder.slow_ms = args.slow_ms
    if args.wide_events:
        OBS.open_wide_log(args.wide_events)
        print(f"# wide events -> {args.wide_events}", file=sys.stderr)
    # Background registry sampling: gives /debug/stream and the SLO
    # engine a populated time-series substrate even when nobody scrapes.
    from .obs.stream import get_broker
    from .obs.timeseries import get_timeseries

    get_timeseries().start()
    READINESS.reset()
    if args.slo_rules:
        try:
            configure_slo_engine(rules=load_rules(args.slo_rules))
        except (OSError, MetricError) as exc:
            print(f"error: cannot load SLO rules: {exc}", file=sys.stderr)
            return 2
        print(f"# slo rules loaded from {args.slo_rules}", file=sys.stderr)

    # SIGTERM/SIGINT request a graceful stop: the event wakes the serve
    # loop, the socket is closed and final state flushed — no
    # KeyboardInterrupt traceback mid-request.  signal.signal only works
    # on the main thread; in-process callers (tests) just skip it.
    stop_event = threading.Event()
    previous_handlers = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[sig] = signal.signal(
                sig, lambda signum, frame: stop_event.set()
            )
        except ValueError:
            pass
    server = MetricsServer(host=args.host, port=args.port)
    host, port = server.address
    print(f"# serving /metrics /healthz /readyz /slo /alerts /debug/queries "
          f"/debug/stream on http://{host}:{port}", file=sys.stderr)
    server.start()
    try:
        if args.target:
            text = read_sequence(Path(args.target))
            if args.shards > 1:
                # In-memory sharded index: the served workload then
                # populates the router's query.shard_* families and the
                # {shard}-labelled worker series for scrape checks.
                index = ShardedIndex.build(text, args.shards)
            else:
                index = KMismatchIndex(text)
            # /readyz now proves the serving path: a canary query against
            # this exact index runs on every readiness check.
            READINESS.register_probe("index", index_canary(index))
            if args.reads:
                reads = [
                    line.strip().lower()
                    for line in Path(args.reads).read_text().splitlines()
                    if line.strip() and not line.startswith(("@", ">", "#"))
                ]
                raised = 0
                for cycle in range(max(1, args.loop)):
                    if stop_event.is_set():
                        break
                    for read in reads:
                        if stop_event.is_set():
                            break
                        try:
                            index.search_with_stats(read, args.k)
                        except ReproError:
                            # Counted in query.errors{engine,k,kind} by the
                            # facade — a bad read feeds the SLO evaluation
                            # instead of killing the server (this is how
                            # CI forces an objective violation).
                            raised += 1
                print(f"# ran {max(1, args.loop)} pass(es) over {len(reads)} "
                      f"read(s), {raised} raised", file=sys.stderr)
        if args.duration > 0:
            stop_event.wait(args.duration)
        else:
            print("# Ctrl-C to stop", file=sys.stderr)
            while not stop_event.wait(3600):
                pass
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        get_broker().stop()
        get_timeseries().stop()
        if OBS.wide_log is not None:
            wide_state = OBS.wide_log.to_dict()
            OBS.close_wide_log()
            print(f"# wide events: {wide_state['lines_written']} written, "
                  f"{wide_state['lines_sampled_out']} sampled out, "
                  f"{wide_state['rotations']} rotation(s)", file=sys.stderr)
        dropped = OBS.metrics.get(LABELS_DROPPED_METRIC)
        print(f"# shutdown: socket closed; {len(OBS.metrics)} metric "
              f"famil{'y' if len(OBS.metrics) == 1 else 'ies'}, "
              f"{OBS.recorder.total_recorded} query record(s), "
              f"{dropped.value if dropped is not None else 0} dropped label "
              f"set(s)", file=sys.stderr)
        OBS.disable()
        for sig, handler in previous_handlers.items():
            try:
                signal.signal(sig, handler)
            except ValueError:
                pass
    return 0


def _slo_metrics_source(args: argparse.Namespace):
    """(metrics payload, error line) for ``slo report``/``slo check`` —
    a live ``/debug/metrics`` scrape (``--url``) or a saved trace file's
    ``metrics`` section (positional TRACE)."""
    if args.url:
        from .obs.export import fetch_metrics_json

        try:
            payload = fetch_metrics_json(args.url)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            return None, f"cannot fetch {args.url}: {exc}"
        problem = _metrics_payload_problem(payload)
        if problem:
            return None, (f"{args.url} is not a schema-v2 metrics endpoint "
                          f"({problem})")
        return payload, ""
    if args.trace_file:
        try:
            return load_trace(args.trace_file).get("metrics") or {}, ""
        except MetricError as exc:
            return None, str(exc)
    return None, "slo needs a TRACE file or --url URL"


def _cmd_slo(args: argparse.Namespace) -> int:
    from .obs.slo import (
        SLO_REPORT_FORMAT,
        evaluate_payload,
        lint_rules,
        load_rules,
        parse_rules_file,
    )

    if args.slo_command == "lint":
        try:
            data = parse_rules_file(args.rules)
        except (OSError, MetricError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        problems = lint_rules(data)
        for problem in problems:
            print(problem)
        if problems:
            print(f"FAIL: {len(problems)} problem(s) in {args.rules}")
            return 1
        n_objectives = len(data.get("objectives") or [])
        print(f"OK: {n_objectives} objective(s) valid")
        return 0

    try:
        rules = load_rules(args.rules or None)
    except (OSError, MetricError) as exc:
        print(f"error: cannot load SLO rules: {exc}", file=sys.stderr)
        return 2
    metrics, problem = _slo_metrics_source(args)
    if metrics is None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    results = evaluate_payload(metrics, rules)

    # Live sources also carry alert state; a trace file has none.
    alerts = None
    if args.url:
        from urllib.request import urlopen

        try:
            with urlopen(args.url.rstrip("/") + "/alerts", timeout=10.0) as response:
                alerts = json.load(response)
        except (OSError, json.JSONDecodeError, ValueError):
            alerts = None

    document = {
        "format": SLO_REPORT_FORMAT,
        "version": 1,
        "rules": args.rules or "(defaults)",
        "source": args.url or args.trace_file,
        "objectives": results,
        "alerts": alerts,
    }
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"# slo report written to {args.json_out}", file=sys.stderr)

    rows = []
    for status in results:
        selector = ",".join(f"{k}={v}" for k, v in status["selector"].items()) or "-"
        burned = f"{min(status['burn_rate'], 1e4) * 100:.1f}%"
        rows.append([
            status["objective"],
            status["type"],
            f"{status['target']:g}%",
            selector,
            status["total"],
            status["bad"],
            burned,
            "no data" if status["no_data"] else ("OK" if status["ok"] else "VIOLATED"),
        ])
    print(format_table(
        ["objective", "type", "target", "selector", "events", "bad",
         "budget burned", "status"],
        rows, title=f"{len(results)} objective(s), rules: {document['rules']}",
    ))
    if alerts and alerts.get("alerts"):
        firing = [a["objective"] for a in alerts["alerts"] if a["state"] == "firing"]
        print(f"alerts: {alerts.get('n_firing', 0)} firing"
              + (f" ({', '.join(firing)})" if firing else ""))

    violated = [status["objective"] for status in results if not status["ok"]]
    if args.slo_command == "check":
        if violated:
            print(f"SLO CHECK FAILED: {len(violated)} objective(s) violated: "
                  f"{', '.join(violated)}", file=sys.stderr)
            return 4
        print("SLO check passed", file=sys.stderr)
    return 0


def _cmd_metrics_lint(args: argparse.Namespace) -> int:
    from .obs.promlint import fetch_exposition, lint_openmetrics

    try:
        text = fetch_exposition(args.source)
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2
    problems = lint_openmetrics(text)
    for problem in problems:
        print(problem)
    n_samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    if problems:
        print(f"FAIL: {len(problems)} problem(s) in {n_samples} sample line(s)")
        return 1
    print(f"OK: {n_samples} sample line(s) clean")
    return 0


def _cmd_flightrecorder(args: argparse.Namespace) -> int:
    try:
        records = load_events(args.records_file)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.records_file}: {exc}", file=sys.stderr)
        return 2
    print(render_records(records, slow_only=args.slow, show_spans=args.spans))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.regression import (
        RegressionError,
        compare_runs,
        format_report,
        load_bench_json,
        run_ci_workload,
        write_bench_json,
    )

    try:
        document = run_ci_workload(
            methods=args.methods,
            k=args.k,
            scale=args.scale,
            n_reads=args.reads,
            read_length=args.read_length,
            seed=args.seed,
            repeats=args.repeats,
        )
    except RegressionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        write_bench_json(document, args.json_out)
        print(f"# benchmark JSON written to {args.json_out}", file=sys.stderr)
    if args.update_baseline:
        target = args.baseline or "benchmarks/results/baseline_ci.json"
        write_bench_json(document, target)
        print(f"# baseline refreshed -> {target}", file=sys.stderr)
        return 0
    baseline = None
    findings = []
    if args.check_regression or args.baseline:
        if not args.baseline:
            print("error: --check-regression requires --baseline PATH", file=sys.stderr)
            return 2
        try:
            baseline = load_bench_json(args.baseline)
            ratio_threshold = (
                args.ratio_threshold / 100.0
                if args.ratio_threshold is not None
                else None
            )
            findings = compare_runs(
                document,
                baseline,
                latency_threshold=args.latency_threshold / 100.0,
                probe_threshold=args.probe_threshold / 100.0,
                ratio_threshold=ratio_threshold,
            )
        except RegressionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(format_report(findings, document, baseline))
    return 3 if findings else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import MEMORY_PROFILES, PROFILER, render_top, set_memory_profiling, write_profile

    # The profiler flags are accepted both before the wrapped command
    # (`profile --hz 200 search ...`) and after it (`profile search ...
    # --hz 200`): REMAINDER swallows everything past the command name, so
    # a second pass extracts trailing profiler flags and forwards the rest.
    flags = argparse.ArgumentParser(add_help=False, allow_abbrev=False)
    flags.add_argument("--hz", type=float, default=None)
    flags.add_argument("--out", default=None)
    flags.add_argument("--format", choices=("folded", "speedscope"), default=None)
    flags.add_argument("--memory", action="store_true", default=False)
    flags.add_argument("--max-samples", type=int, default=None)
    flags.add_argument("--max-seconds", type=float, default=None)
    trailing, inner_rest = flags.parse_known_args(args.rest)
    hz = trailing.hz if trailing.hz is not None else args.hz
    out = trailing.out or args.out or "profile.folded"
    fmt = trailing.format or args.format
    if fmt is None:
        fmt = "speedscope" if out.endswith(".json") else "folded"
    memory = args.memory or trailing.memory
    max_samples = (
        trailing.max_samples if trailing.max_samples is not None else args.max_samples
    )
    max_seconds = (
        trailing.max_seconds if trailing.max_seconds is not None else args.max_seconds
    )

    if memory:
        set_memory_profiling(True)
    # Span attribution needs live spans: enable the obs singleton for the
    # wrapped command even when it carries no observability flags itself.
    OBS.reset().enable()
    PROFILER.start(hz=hz, max_samples=max_samples, max_seconds=max_seconds)
    try:
        code = main([args.profiled] + inner_rest)
    finally:
        profile = PROFILER.stop()
        OBS.disable()
        if memory:
            set_memory_profiling(False)
    write_profile(profile, out, fmt)
    print(f"# profile ({fmt}) written to {out}", file=sys.stderr)
    print(render_top(profile), file=sys.stderr)
    if memory:
        for memory_profile in MEMORY_PROFILES:
            print(memory_profile.render(), file=sys.stderr)
    return code


def _stream_frames(url: str, frames: int):
    """Yield decoded SSE frames from a server's ``/debug/stream``.

    ``url`` may be the server base or the full endpoint; ``frames`` > 0
    asks the server to close the stream after that many frames (the
    bounded mode ``--once`` uses).
    """
    from urllib.request import urlopen

    from .obs.stream import iter_sse_frames

    target = url.rstrip("/")
    if not target.endswith("/debug/stream"):
        target += "/debug/stream"
    if frames:
        target += ("&" if "?" in target else "?") + f"frames={frames}"
    with urlopen(target) as response:
        yield from iter_sse_frames(response)


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import CLEAR_SCREEN, compute_dashboard, render_dashboard

    def show(dashboard, live: bool) -> None:
        if args.json_out:
            print(json.dumps(dashboard))
        else:
            prefix = CLEAR_SCREEN if live else ""
            print(prefix + render_dashboard(
                dashboard, color=sys.stdout.isatty()
            ))

    if args.url:
        # --once rides the subscription bootstrap: the hello frame plus
        # one full metrics snapshot arrive immediately, no tick wait.
        frames = 2 if args.once else max(0, args.frames)
        last = None
        shown = 0
        try:
            for frame in _stream_frames(args.url, frames):
                if frame.get("type") != "metrics":
                    continue
                dashboard = frame.get("dashboard")
                if dashboard is None:
                    continue
                last = dashboard
                if args.once:
                    continue
                show(dashboard, live=not args.json_out)
                shown += 1
        except KeyboardInterrupt:
            return 0
        except (OSError, ValueError) as exc:
            print(f"error: cannot stream from {args.url}: {exc}",
                  file=sys.stderr)
            return 2
        if args.once:
            if last is None:
                print("error: no dashboard frame received", file=sys.stderr)
                return 2
            show(last, live=False)
        return 0
    if not args.trace_file:
        print("error: top needs a TRACE file or --url", file=sys.stderr)
        return 2
    try:
        document = load_trace(args.trace_file)
    except (OSError, MetricError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    meta = document.get("meta") or {}
    window = args.window or meta.get("duration_s") or None
    dashboard = compute_dashboard(document.get("metrics") or {},
                                  window_s=window)
    show(dashboard, live=False)
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from .obs.events import (
        load_wide_events,
        render_event_lines,
        render_event_summary,
        summarize_events,
        tail_events,
    )

    try:
        if args.events_command == "tail":
            records = tail_events(args.events_file, n=args.n)
            if args.json_out:
                for record in records:
                    print(json.dumps(record))
            else:
                print(render_event_lines(records))
            return 0
        records = load_wide_events(
            args.events_file, include_backups=not args.no_backups
        )
        summary = summarize_events(records)
        if args.json_out:
            print(json.dumps(summary, indent=2))
        else:
            print(render_event_summary(summary))
        return 0
    except OSError as exc:
        print(f"error: cannot read {args.events_file}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.events_file} is not valid JSON lines: {exc}",
              file=sys.stderr)
        return 2


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to one subcommand parser."""
    parser.add_argument("--trace", action="store_true",
                        help="print a span/metrics summary to stderr when done")
    parser.add_argument("--stats-json", default="", metavar="PATH",
                        help="write the full trace document (spans + metrics) as JSON")
    parser.add_argument("--events", default="", metavar="PATH",
                        help="stream one JSON line per query/batch event to PATH")
    parser.add_argument("--flight-json", default="", metavar="PATH",
                        help="dump the flight recorder (recent + pinned slow "
                             "queries) as JSON lines on exit")
    parser.add_argument("--profile", default="", metavar="PATH",
                        help="sample this command under the wall-clock profiler "
                             "(rate: REPRO_PROFILE_HZ) and write span-attributed "
                             "folded stacks — or speedscope JSON when PATH ends "
                             "in .json — to PATH")
    parser.add_argument("--wide-events", default="", metavar="PATH",
                        help="append one flat wide event per query/batch to PATH "
                             "(JSON lines; sampled via REPRO_EVENT_SAMPLE, "
                             "rotated at REPRO_EVENT_MAX_BYTES — read with "
                             "`repro-cli events`); REPRO_EVENT_LOG sets this "
                             "for every command")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="BWT arrays and mismatching trees: k-mismatch string matching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="build and save a BWT index")
    p_index.add_argument("target", help="FASTA or plain-text target file")
    p_index.add_argument("-o", "--output", default="target.fmidx", help="output index path")
    p_index.add_argument("--format", choices=("json", "bin"), default="json",
                         help="index serialization: portable JSON (default) or the "
                              "zero-copy binary format (docs/INDEX_FORMAT.md)")
    p_index.add_argument("--occ-sample", type=int, default=4, help="rankall checkpoint spacing")
    p_index.add_argument("--sa-sample", type=int, default=8, help="suffix-array sampling distance")
    p_index.add_argument("--shards", type=int, default=1,
                         help="split the target into N seam-overlapped shards and "
                              "write a REPROSHD manifest plus per-shard binary "
                              "index files (needs --format bin; docs/SHARDING.md)")
    p_index.add_argument("--max-pattern", type=int, default=512,
                         help="with --shards: longest pattern the sharded index "
                              "will answer (fixes the seam overlap)")
    p_index.add_argument("--max-k", type=int, default=8,
                         help="with --shards: largest mismatch bound the sharded "
                              "index will answer (fixes the seam overlap)")
    p_index.add_argument("--build-workers", type=int, default=0,
                         help="with --shards: build the N shard indexes over a "
                              "process pool of this many workers (0 = serial); "
                              "output is byte-identical either way")
    _add_obs_flags(p_index)
    p_index.set_defaults(func=_cmd_index)

    p_search = sub.add_parser("search", help="k-mismatch search in a target")
    p_search.add_argument("target", help="FASTA/plain-text target, or a saved "
                          "index file when --index is set")
    p_search.add_argument("pattern", help="pattern string")
    p_search.add_argument("-k", type=int, default=0, help="mismatch / error bound")
    p_search.add_argument("--method", choices=REGISTRY.names(capability=CAP_MISMATCH),
                          default="algorithm_a",
                          help="any registered mismatch engine (see `repro-cli engines`)")
    p_search.add_argument("--index", action="store_true",
                          help="treat TARGET as a saved index (from `repro-cli index`)")
    p_search.add_argument("--edit", action="store_true",
                          help="k errors (Levenshtein) instead of k mismatches")
    p_search.add_argument("--wildcard", default="",
                          help="treat this pattern character as a don't-care")
    _add_obs_flags(p_search)
    p_search.set_defaults(func=_cmd_search)

    p_sim = sub.add_parser("simulate", help="generate a synthetic genome and reads")
    p_sim.add_argument("-o", "--output", default="genome.fa")
    p_sim.add_argument("--length", type=int, default=100_000)
    p_sim.add_argument("--gc", type=float, default=0.41)
    p_sim.add_argument("--repeats", type=float, default=0.30)
    p_sim.add_argument("--reads", type=int, default=0, help="also simulate this many reads")
    p_sim.add_argument("--read-length", type=int, default=100)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_map = sub.add_parser("map", help="map reads to a target, SAM-like output")
    p_map.add_argument("target", nargs="?", default="",
                       help="FASTA or plain-text target file (omit with --index-file)")
    p_map.add_argument("reads", help="FASTQ file or one read per line")
    p_map.add_argument("--index-file", default="", metavar="PATH",
                       help="map against a prebuilt index (from `repro-cli index`; "
                            "binary indexes load zero-copy) instead of building "
                            "one from TARGET")
    p_map.add_argument("-k", type=int, default=4, help="mismatch bound")
    p_map.add_argument("-o", "--output", default="-", help="output path ('-' = stdout)")
    p_map.add_argument("--reference-name", default="target", help="@SQ record name")
    p_map.add_argument("--workers", type=int, default=0,
                       help="fan the read batch out over N workers (0/1 = serial)")
    p_map.add_argument("--mode", choices=MODES, default="thread",
                       help="worker pool flavour for --workers > 1")
    p_map.add_argument("--chunk-size", type=int, default=0,
                       help="reads per worker chunk (0 = automatic)")
    _add_obs_flags(p_map)
    p_map.set_defaults(func=_cmd_map)

    p_cmp = sub.add_parser("compare", help="run the paper's methods over a read batch")
    p_cmp.add_argument("target")
    p_cmp.add_argument("reads", help="file with one read per line (or simulate output)")
    p_cmp.add_argument("-k", type=int, default=3)
    p_cmp.add_argument("--methods", nargs="+", default=list(PAPER_METHODS),
                       help="registered engine names/aliases (see `repro-cli engines`)")
    p_cmp.add_argument("--limit", type=int, default=0, help="use only the first N reads")
    _add_obs_flags(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_eng = sub.add_parser("engines", help="list every registered search engine")
    p_eng.add_argument("--capability", default="",
                       help="only engines with this capability (mismatch/edit/wildcard)")
    p_eng.set_defaults(func=_cmd_engines)

    p_stats = sub.add_parser("stats", help="render a saved --stats-json trace file")
    p_stats.add_argument("trace_file", metavar="TRACE", nargs="?", default="",
                         help="trace file written by --stats-json (omit with --url)")
    p_stats.add_argument("--url", default="", metavar="URL",
                         help="replay a live endpoint's /debug/metrics instead "
                              "of a trace file (e.g. http://127.0.0.1:9109)")
    p_stats.add_argument("--by", default="", metavar="LABELS",
                         help="comma-separated label dimensions (e.g. engine,k): "
                              "print labelled series regrouped per family")
    p_stats.add_argument("--family", action="append", default=[], metavar="NAME",
                         help="with --by, restrict to this metric family "
                              "(repeatable)")
    p_stats.set_defaults(func=_cmd_stats)

    p_serve = sub.add_parser(
        "serve-metrics",
        help="expose /metrics, /healthz and /debug/queries over HTTP")
    p_serve.add_argument("target", nargs="?", default="",
                         help="optional FASTA/plain-text target to index and query")
    p_serve.add_argument("--reads", default="",
                         help="file with one read per line to run against TARGET")
    p_serve.add_argument("-k", type=int, default=2, help="mismatch bound for --reads")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="serve TARGET through an in-memory N-shard index "
                              "(populates the {shard}-labelled metric families)")
    p_serve.add_argument("--loop", type=int, default=1,
                         help="passes over the read file (populates metrics)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9109,
                         help="listen port (0 picks an ephemeral port)")
    p_serve.add_argument("--duration", type=float, default=0,
                         help="serve for this many seconds then exit (0 = forever)")
    p_serve.add_argument("--slow-ms", type=float, default=None,
                         help="pin queries at or above this latency (ms) in the "
                              "flight recorder")
    p_serve.add_argument("--slo-rules", default="", metavar="PATH",
                         help="SLO rules file (TOML or JSON) for the /slo and "
                              "/alerts endpoints (default: shipped defaults; "
                              "see docs/OBSERVABILITY.md)")
    p_serve.add_argument("--wide-events", default="", metavar="PATH",
                         help="append one flat wide event per query/batch to "
                              "PATH (JSON lines; sampled via REPRO_EVENT_SAMPLE, "
                              "rotated at REPRO_EVENT_MAX_BYTES — read with "
                              "`repro-cli events`)")
    p_serve.set_defaults(func=_cmd_serve_metrics)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard: QPS, latency percentiles, error "
             "rate, worker utilization, per-engine/per-shard breakdowns")
    p_top.add_argument("trace_file", metavar="TRACE", nargs="?", default="",
                       help="trace file written by --stats-json "
                            "(omit with --url)")
    p_top.add_argument("--url", default="", metavar="URL",
                       help="follow a live server's /debug/stream instead of "
                            "a trace file (e.g. http://127.0.0.1:9109)")
    p_top.add_argument("--window", type=float, default=0, metavar="SECONDS",
                       help="with TRACE: seconds the trace's counters "
                            "accumulated over (rates divide by this; "
                            "default: the trace's own duration metadata "
                            "or its process.uptime_s gauge)")
    p_top.add_argument("--once", action="store_true",
                       help="print one dashboard and exit (headless mode)")
    p_top.add_argument("--json", dest="json_out", action="store_true",
                       help="emit the dashboard document as JSON instead of "
                            "the ANSI rendering")
    p_top.add_argument("--frames", type=int, default=0,
                       help="with --url: stop after N dashboard updates "
                            "(0 = follow until Ctrl-C)")
    p_top.set_defaults(func=_cmd_top)

    p_events = sub.add_parser(
        "events",
        help="read a wide-event query log written by --wide-events")
    ev_sub = p_events.add_subparsers(dest="events_command", required=True)
    p_ev_tail = ev_sub.add_parser(
        "tail", help="print the newest events, one line each")
    p_ev_tail.add_argument("events_file", metavar="EVENTS",
                           help="wide-event JSONL file")
    p_ev_tail.add_argument("-n", type=int, default=20,
                           help="events to show (default 20)")
    p_ev_tail.add_argument("--json", dest="json_out", action="store_true",
                           help="print raw JSON lines instead of the table")
    p_ev_tail.set_defaults(func=_cmd_events)
    p_ev_sum = ev_sub.add_parser(
        "summarize",
        help="aggregate: per-{engine,k} query counts and exact latency "
             "percentiles, batch return paths, event rate")
    p_ev_sum.add_argument("events_file", metavar="EVENTS",
                          help="wide-event JSONL file (rotated .1/.2/... "
                               "generations are included)")
    p_ev_sum.add_argument("--json", dest="json_out", action="store_true",
                          help="emit the summary document as JSON")
    p_ev_sum.add_argument("--no-backups", action="store_true",
                          help="read only the live file, not rotated "
                               "generations")
    p_ev_sum.set_defaults(func=_cmd_events)

    p_slo = sub.add_parser(
        "slo",
        help="evaluate service-level objectives over live or saved metrics")
    slo_sub = p_slo.add_subparsers(dest="slo_command", required=True)
    for slo_name, slo_help in (
        ("report", "table of objectives, budgets burned and firing alerts"),
        ("check", "exit 4 when any objective is violated (the CI gate)"),
    ):
        p_slo_sub = slo_sub.add_parser(slo_name, help=slo_help)
        p_slo_sub.add_argument("trace_file", metavar="TRACE", nargs="?", default="",
                               help="trace file written by --stats-json "
                                    "(omit with --url)")
        p_slo_sub.add_argument("--url", default="", metavar="URL",
                               help="evaluate a live server's /debug/metrics "
                                    "(e.g. http://127.0.0.1:9109)")
        p_slo_sub.add_argument("--rules", default="", metavar="PATH",
                               help="SLO rules file, TOML or JSON "
                                    "(default: shipped defaults)")
        p_slo_sub.add_argument("--json", dest="json_out", default="", metavar="PATH",
                               help="also write the full report document as JSON")
        p_slo_sub.set_defaults(func=_cmd_slo)
    p_slo_lint = slo_sub.add_parser(
        "lint", help="strictly validate an SLO rules file")
    p_slo_lint.add_argument("rules", metavar="RULES",
                            help="rules file to validate (TOML or JSON)")
    p_slo_lint.set_defaults(func=_cmd_slo)

    p_lint = sub.add_parser(
        "metrics-lint",
        help="strictly validate an OpenMetrics exposition (file or live URL)")
    p_lint.add_argument("source", metavar="FILE_OR_URL",
                        help="exposition file, or an http(s) URL "
                             "(/metrics appended when missing)")
    p_lint.set_defaults(func=_cmd_metrics_lint)

    p_flight = sub.add_parser(
        "flightrecorder",
        help="render a dumped flight-recorder / event-log JSONL file")
    p_flight.add_argument("records_file", metavar="RECORDS",
                          help="JSONL file from --flight-json / --events")
    p_flight.add_argument("--slow", action="store_true",
                          help="show only records pinned as slow")
    p_flight.add_argument("--spans", action="store_true",
                          help="render each record's span tree too")
    p_flight.set_defaults(func=_cmd_flightrecorder)

    p_bench = sub.add_parser(
        "bench",
        help="run the fixed CI workload; optionally gate against a baseline")
    p_bench.add_argument("--methods", nargs="+", default=["A()", "BWT"],
                         help="registered engine names/aliases to time")
    p_bench.add_argument("-k", type=int, default=2)
    p_bench.add_argument("--scale", type=int, default=40_000,
                         help="target genome size (bp)")
    p_bench.add_argument("--reads", type=int, default=12, help="number of reads")
    p_bench.add_argument("--read-length", type=int, default=60)
    p_bench.add_argument("--seed", type=int, default=7)
    p_bench.add_argument("--json-out", default="", metavar="PATH",
                         help="write the run's benchmark JSON here")
    p_bench.add_argument("--baseline", default="", metavar="PATH",
                         help="committed baseline JSON to compare against")
    p_bench.add_argument("--check-regression", action="store_true",
                         help="exit 3 when any metric regresses past its threshold")
    p_bench.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline JSON (--baseline PATH, default "
                              "benchmarks/results/baseline_ci.json) with this run")
    p_bench.add_argument("--latency-threshold", type=float, default=25.0,
                         help="allowed avg-latency growth over baseline (percent)")
    p_bench.add_argument("--probe-threshold", type=float, default=25.0,
                         help="allowed probe-count growth over baseline (percent)")
    p_bench.add_argument("--repeats", type=int, default=1,
                         help="run the workload N times and report per-method "
                              "median latencies (N >= 3 steadies the gate)")
    p_bench.add_argument("--ratio-threshold", type=float, default=None,
                         help="also gate the A()/BWT avg-latency ratio against "
                              "the baseline's ratio (percent growth allowed; "
                              "machine speed divides out)")
    p_bench.set_defaults(func=_cmd_bench)

    p_prof = sub.add_parser(
        "profile",
        help="run search/map/bench under the span-attributed sampling profiler")
    p_prof.add_argument("profiled", choices=("search", "map", "bench"),
                        metavar="COMMAND",
                        help="the subcommand to profile (search, map or bench); "
                             "everything after it is forwarded verbatim")
    p_prof.add_argument("--hz", type=float, default=None,
                        help="sampling rate (default REPRO_PROFILE_HZ or 97)")
    p_prof.add_argument("--out", default=None, metavar="PATH",
                        help="profile output path (default profile.folded)")
    p_prof.add_argument("--format", choices=("folded", "speedscope"), default=None,
                        help="collapsed stacks (folded) or speedscope JSON "
                             "(default: by PATH extension)")
    p_prof.add_argument("--memory", action="store_true",
                        help="also take tracemalloc snapshots around index "
                             "builds (index.build.peak_bytes + top allocators)")
    p_prof.add_argument("--max-samples", type=int, default=None,
                        help="hard sample cap (default REPRO_PROFILE_MAX_SAMPLES)")
    p_prof.add_argument("--max-seconds", type=float, default=None,
                        help="hard duration cap (default REPRO_PROFILE_MAX_SECONDS)")
    p_prof.add_argument("rest", nargs=argparse.REMAINDER,
                        help="arguments for the profiled subcommand")
    p_prof.set_defaults(func=_cmd_profile)
    return parser


def _split_profile_argv(argv: List[str]) -> Tuple[List[str], List[str]]:
    """Split ``profile ... COMMAND ...`` into (parsed head, forwarded rest).

    argparse's ``REMAINDER`` binds zero-length when the wrapped command
    name is immediately followed by an option token (``profile search
    --hz 200 ...``), which would leave the forwarded arguments
    "unrecognized".  Splitting by hand — skipping over the profile
    subcommand's own value-taking flags — sidesteps that: everything
    after the wrapped command name is forwarded verbatim.
    """
    value_flags = {"--hz", "--out", "--format", "--max-samples", "--max-seconds"}
    i = 1
    while i < len(argv):
        token = argv[i]
        if token in value_flags:
            i += 2
        elif token.startswith("-"):
            i += 1
        else:
            return argv[: i + 1], argv[i + 1:]
    return argv, []


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        head, rest = _split_profile_argv(list(argv))
        args = build_parser().parse_args(head)
        args.rest = rest
    else:
        args = build_parser().parse_args(argv)
    trace = getattr(args, "trace", False) is True
    stats_json = getattr(args, "stats_json", "")
    events_path = getattr(args, "events", "")
    flight_json = getattr(args, "flight_json", "")
    profile_path = getattr(args, "profile", "") if args.command != "profile" else ""
    # serve-metrics owns its wide log's lifecycle (it prints the sink
    # summary on shutdown); every other command honours the flag and the
    # REPRO_EVENT_LOG environment fallback here.
    wide_path = ""
    if args.command != "serve-metrics":
        wide_path = (getattr(args, "wide_events", "")
                     or os.environ.get("REPRO_EVENT_LOG", ""))
    observing = (
        trace or bool(stats_json) or bool(events_path) or bool(flight_json)
        or bool(profile_path) or bool(wide_path)
    )
    metrics_port = os.environ.get("REPRO_METRICS_PORT", "")
    server = None
    if metrics_port and args.command != "serve-metrics":
        from .obs.server import start_server

        observing = True
        server = start_server(port=int(metrics_port))
        print(f"# telemetry on http://{server.address[0]}:{server.address[1]} "
              f"for the duration of this command", file=sys.stderr)
    if observing:
        OBS.reset().enable()
        if events_path:
            OBS.open_event_log(events_path)
        if wide_path:
            OBS.open_wide_log(wide_path)
    if profile_path:
        from .obs import PROFILER

        PROFILER.start()
    try:
        return args.func(args)
    finally:
        if server is not None:
            server.stop()
        if profile_path:
            from .obs import PROFILER, write_profile

            collected = PROFILER.stop()
            fmt = "speedscope" if profile_path.endswith(".json") else "folded"
            write_profile(collected, profile_path, fmt)
            print(f"# profile ({fmt}, {collected.n_samples} sample(s)) "
                  f"written to {profile_path}", file=sys.stderr)
        if observing:
            OBS.disable()
            OBS.close_event_log()
            if wide_path and OBS.wide_log is not None:
                wide_state = OBS.wide_log.to_dict()
                OBS.close_wide_log()
                print(f"# wide events ({wide_state['lines_written']} written, "
                      f"{wide_state['lines_sampled_out']} sampled out) -> "
                      f"{wide_path}", file=sys.stderr)
            if events_path:
                print(f"# events streamed to {events_path}", file=sys.stderr)
            if flight_json:
                n = OBS.recorder.dump_jsonl(flight_json)
                print(f"# flight recorder ({n} record(s)) written to {flight_json}",
                      file=sys.stderr)
            if stats_json:
                OBS.write_trace(stats_json, command=args.command)
                print(f"# trace written to {stats_json}", file=sys.stderr)
            if trace:
                print(OBS.render_summary(), file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
