"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish bad user input (:class:`AlphabetError`,
:class:`PatternError`) from internal invariant violations
(:class:`IndexCorruptionError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class AlphabetError(ReproError, ValueError):
    """A sequence contains characters outside the configured alphabet."""


class PatternError(ReproError, ValueError):
    """A pattern is unusable: empty, longer than the target, or invalid."""


class IndexCorruptionError(ReproError, RuntimeError):
    """An index structure failed an internal consistency check."""


class IndexBuildError(ReproError, RuntimeError):
    """An index build could not complete (e.g. a parallel shard-build
    worker died or failed before delivering its shard)."""


class SerializationError(ReproError, ValueError):
    """A persisted index could not be loaded (bad magic, version, checksum)."""


class IndexFormatError(SerializationError):
    """A value cannot be represented in the requested on-disk format
    (e.g. a suffix-array entry exceeding uint32 in a v1 file)."""
