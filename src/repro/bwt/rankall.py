"""The paper's "rankall" occurrence structure (Sec. III-A, Fig. 2).

For each alphabet character ``x`` the paper keeps an array ``A_x`` with
``A_x[k]`` = number of ``x`` occurrences in ``L[0..k]``, so a sub-range
lookup inside any ``L[i..j]`` becomes two array probes instead of a scan.
To "reduce the space overhead, at cost of some more searches" the arrays
are checkpoint-sampled: one cumulative count per character every
``sample_rate`` positions (the paper stores one rankall value per 4
elements of ``L``), with the tail recovered by scanning ``L`` itself.

:class:`RankAll` exposes:

* ``occ(code, i)`` — occurrences of one character in the prefix ``L[:i]``
  (the FM backward-search primitive);
* ``counts_at(i)`` — the full per-character prefix-count row at ``i``,
  which lets the S-tree branching step (all children of a range) be
  answered with two probes total instead of two per character.

Checkpoints are stored row-major by block (one row = all characters), so
``counts_at`` is a single C-level slice.  The BWT itself is kept twice: a
2-bit-style :class:`~repro.sequence.PackedSequence` (the representation
the paper's space accounting uses — see :meth:`nbytes`) and a ``bytes``
shadow that pure Python can scan at C speed; a C implementation would
scan the packed words directly.
"""

from __future__ import annotations

from array import array
from typing import List

from ..alphabet import Alphabet
from ..errors import IndexCorruptionError
from ..obs import OBS
from ..sequence import PackedSequence, bits_needed

#: The paper's Fig. 2 stores one checkpoint per 4 BWT elements.
DEFAULT_SAMPLE_RATE = 4


def _scan_counter(buf):
    """A ``bytes.count``-compatible tail scanner for buffers without it.

    ``memoryview`` (the zero-copy load path wraps mmap sections in one)
    has no ``count``; the tail between two checkpoints is at most
    ``sample_rate - 1`` elements, so a Python loop is fine there.
    """

    def count(code: int, lo: int, hi: int) -> int:
        n = 0
        for j in range(lo, hi):
            if buf[j] == code:
                n += 1
        return n

    return count


class RankAll:
    """Checkpoint-sampled per-character cumulative counts over a BWT array.

    Parameters
    ----------
    bwt:
        The BWT string ``L`` (sentinel included).
    alphabet:
        Alphabet the BWT is over; the sentinel is handled automatically.
        At most 256 distinct codes are supported.
    sample_rate:
        Distance between checkpoints.  1 stores a full rankall array
        (fastest, largest); larger values trade probes for scans.

    >>> from repro.alphabet import DNA
    >>> ra = RankAll("acg$caaa", DNA)
    >>> ra.occ(DNA.code("a"), 8)   # number of 'a' in the whole BWT
    4
    >>> ra.occ(DNA.code("c"), 5)   # 'c' occurrences in L[:5] = 'acg$c'
    2
    """

    __slots__ = (
        "_packed",
        "_codes_bytes",
        "_alphabet",
        "_size",
        "_sample_rate",
        "_flat",
        "_length",
        "_totals",
        "_tail_count",
    )

    def __init__(self, bwt: str, alphabet: Alphabet, sample_rate: int = DEFAULT_SAMPLE_RATE):
        if sample_rate < 1:
            raise IndexCorruptionError("sample_rate must be >= 1")
        if alphabet.size > 256:
            raise IndexCorruptionError("alphabets larger than 256 symbols are not supported")
        self._alphabet = alphabet
        self._size = alphabet.size
        self._sample_rate = sample_rate
        self._length = len(bwt)
        with OBS.span("rankall.build", length=self._length, sample_rate=sample_rate):
            codes = alphabet.encode(bwt)
            self._packed = PackedSequence(bits_needed(alphabet.size), codes)
            self._codes_bytes = bytes(codes)

            n_codes = self._size
            n_blocks = self._length // sample_rate + 1
            # Row-major: flat[block * n_codes + code] = count of `code` in
            # L[: block * sample_rate].
            flat = array("i")  # 32-bit checkpoint values, as in the paper's Fig. 2
            running = [0] * n_codes
            for block in range(n_blocks):
                flat.extend(running)
                lo = block * sample_rate
                hi = min(lo + sample_rate, self._length)
                for i in range(lo, hi):
                    running[codes[i]] += 1
            self._flat = flat
            self._totals = running
            self._tail_count = self._codes_bytes.count

    @classmethod
    def from_parts(
        cls,
        alphabet: Alphabet,
        sample_rate: int,
        length: int,
        packed: PackedSequence,
        codes,
        checkpoints,
        totals: List[int],
    ) -> "RankAll":
        """Wrap pre-built buffers without re-deriving anything.

        This is the zero-copy deserialization path: ``packed`` wraps the
        2-bit BWT words, ``codes`` the byte shadow (``bytes`` or a
        ``memoryview`` over an mmap section), ``checkpoints`` the flat
        int32 row-major checkpoint table and ``totals`` the per-code
        grand totals.  No buffer is copied or scanned.
        """
        if sample_rate < 1:
            raise IndexCorruptionError("sample_rate must be >= 1")
        if alphabet.size > 256:
            raise IndexCorruptionError("alphabets larger than 256 symbols are not supported")
        instance = cls.__new__(cls)
        instance._alphabet = alphabet
        instance._size = alphabet.size
        instance._sample_rate = sample_rate
        instance._length = length
        instance._packed = packed
        instance._codes_bytes = codes
        instance._flat = checkpoints
        instance._totals = list(totals)
        instance._tail_count = (
            codes.count if isinstance(codes, (bytes, bytearray)) else _scan_counter(codes)
        )
        return instance

    # -- primitives ---------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def sample_rate(self) -> int:
        """Distance between checkpoints."""
        return self._sample_rate

    def char_code_at(self, i: int) -> int:
        """Integer code of ``L[i]``."""
        return self._codes_bytes[i]

    def occ(self, code: int, i: int) -> int:
        """Occurrences of character ``code`` in the prefix ``L[:i]``."""
        if not 0 <= i <= self._length:
            raise IndexError(f"prefix length {i} out of range 0..{self._length}")
        if OBS.enabled:
            OBS.metrics.counter("rank.rankall.occ_probes").inc()
        block_start = i - i % self._sample_rate
        count = self._flat[(i // self._sample_rate) * self._size + code]
        if i > block_start:
            count += self._tail_count(code, block_start, i)
        return count

    def counts_at(self, i: int) -> List[int]:
        """Prefix counts of *every* code at position ``i`` (one row).

        ``counts_at(i)[c] == occ(c, i)`` for every code ``c``; a single
        checkpoint-row slice plus at most ``sample_rate - 1`` tail reads.
        """
        if OBS.enabled:
            OBS.metrics.counter("rank.rankall.counts_at_probes").inc()
        size = self._size
        base = (i // self._sample_rate) * size
        row = self._flat[base:base + size].tolist()
        block_start = i - i % self._sample_rate
        if i > block_start:
            for code in self._codes_bytes[block_start:i]:
                row[code] += 1
        return row

    def occ_range(self, code: int, lo: int, hi: int) -> int:
        """Occurrences of ``code`` in ``L[lo:hi]``."""
        return self.occ(code, hi) - self.occ(code, lo)

    def total(self, code: int) -> int:
        """Occurrences of ``code`` in the whole BWT."""
        return self._totals[code]

    def present_codes(self, lo: int, hi: int) -> List[int]:
        """Codes of characters occurring in ``L[lo:hi]`` (sentinel included).

        This answers the S-tree branching question — which characters can
        extend the current search range — with one probe pair per
        character, exactly the paper's "whether ``A_x[i-1] = A_x[j]``"
        check.
        """
        row_lo = self.counts_at(lo)
        row_hi = self.counts_at(hi)
        return [code for code in range(self._size) if row_hi[code] > row_lo[code]]

    # -- raw buffers (binary serialization) -----------------------------------

    @property
    def packed(self) -> PackedSequence:
        """The bit-packed BWT (the paper's 2-bit representation)."""
        return self._packed

    @property
    def codes_buffer(self):
        """The one-byte-per-code BWT shadow (``bytes`` or memoryview)."""
        return self._codes_bytes

    @property
    def checkpoints(self):
        """The flat row-major int32 checkpoint table (``array('i')`` or
        memoryview); ``checkpoints[block * alphabet.size + code]``."""
        return self._flat

    @property
    def totals_list(self) -> List[int]:
        """Per-code totals over the whole BWT (a copy)."""
        return list(self._totals)

    def iter_codes(self):
        """Iterate the BWT's integer codes front to back."""
        return iter(self._codes_bytes)

    def nbytes(self) -> int:
        """Payload size of the paper's representation.

        Counts the bit-packed BWT plus the checkpoint rows — i.e. what a
        C implementation would store; the Python-only ``bytes`` scan
        shadow is excluded (see the module docstring).
        """
        return self._packed.nbytes() + self._flat.itemsize * len(self._flat)

    # -- validation ----------------------------------------------------------

    def verify(self) -> None:
        """Recompute every checkpoint from scratch; raise on any drift."""
        n_codes = self._size
        running = [0] * n_codes
        n_blocks = self._length // self._sample_rate + 1
        for block in range(n_blocks):
            for c in range(n_codes):
                if self._flat[block * n_codes + c] != running[c]:
                    raise IndexCorruptionError(f"checkpoint drift at block {block}, code {c}")
            lo = block * self._sample_rate
            hi = min(lo + self._sample_rate, self._length)
            for i in range(lo, hi):
                if self._packed[i] != self._codes_bytes[i]:
                    raise IndexCorruptionError(f"packed/shadow drift at position {i}")
                running[self._codes_bytes[i]] += 1
        if running != self._totals:
            raise IndexCorruptionError("total counts drifted")
