"""FM-index: backward search over a BWT array (paper Sec. III-A).

The index is the paper's pair machinery made concrete:

* the first column ``F`` is kept as per-character intervals ``F_x``
  (``<x, [α, β]>`` pairs) via the cumulative ``C`` array;
* ``search(z, L_{<x,[α,β]>})`` — find the first/last rank of ``z`` inside
  the ``L`` range of a pair — is :meth:`FMIndex.extend`, answered with two
  rankall probes;
* occurrence positions come from a sampled suffix array plus LF-mapping
  walks (``locate``).

Ranges are half-open ``[lo, hi)`` row intervals of the conceptual
Burrows–Wheeler matrix; this maps to the paper's rank pairs ``[α, β]`` as
``lo = start(F_x) + α - 1``, ``hi = start(F_x) + β``.
"""

from __future__ import annotations

import json
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..alphabet import SENTINEL, Alphabet, infer_alphabet
from ..errors import IndexCorruptionError, PatternError, SerializationError
from ..obs import OBS
from .. import suffix
from .rankall import DEFAULT_SAMPLE_RATE, RankAll
from .transform import bwt_from_suffix_array


class Range(NamedTuple):
    """A half-open row interval ``[lo, hi)`` of the BW matrix."""

    lo: int
    hi: int

    def __len__(self) -> int:
        return max(0, self.hi - self.lo)

    @property
    def is_empty(self) -> bool:
        """True when the interval contains no rows."""
        return self.hi <= self.lo


#: The canonical empty range.
EMPTY_RANGE = Range(0, 0)

#: Default distance between sampled suffix-array entries.
DEFAULT_SA_SAMPLE = 8


class FMIndex:
    """A searchable BWT array over ``text + '$'``.

    Parameters
    ----------
    text:
        The target string ``s`` (no sentinel; it is appended internally).
    alphabet:
        Defaults to the smallest alphabet covering ``text``.
    occ_sample_rate:
        Checkpoint spacing of the rankall structure (paper Fig. 2 uses 4).
    sa_sample_rate:
        Every text position divisible by this is kept in the sampled
        suffix array; ``locate`` walks LF until it hits one.
    rank_backend:
        ``"rankall"`` (the paper's Fig. 2 structure, default) or
        ``"wavelet"`` (a wavelet tree — n·log σ bits, O(log σ) probes;
        see :mod:`repro.bwt.wavelet`).

    >>> fm = FMIndex("acagaca")
    >>> fm.count("aca")
    2
    >>> sorted(fm.locate("aca"))
    [0, 4]
    """

    def __init__(
        self,
        text: str,
        alphabet: Optional[Alphabet] = None,
        occ_sample_rate: int = DEFAULT_SAMPLE_RATE,
        sa_sample_rate: int = DEFAULT_SA_SAMPLE,
        rank_backend: str = "rankall",
    ):
        if alphabet is None:
            alphabet = infer_alphabet(text) if text else Alphabet("a")
        alphabet.validate(text)
        if sa_sample_rate < 1:
            raise IndexCorruptionError("sa_sample_rate must be >= 1")
        self._alphabet = alphabet
        self._text_len = len(text)
        self._sa_sample_rate = sa_sample_rate

        with OBS.span("fmindex.build", length=len(text), backend=rank_backend) as build_span:
            with OBS.span("fmindex.suffix_array"):
                sa = suffix.suffix_array(text, alphabet)
            with OBS.span("fmindex.bwt"):
                bwt = bwt_from_suffix_array(text, sa)
            with OBS.span("fmindex.rank_tables"):
                self._init_from_bwt(bwt, occ_sample_rate, rank_backend)
            with OBS.span("fmindex.sample_sa", rate=sa_sample_rate):
                self._sampled_sa: Dict[int, int] = {
                    row: pos for row, pos in enumerate(sa) if pos % sa_sample_rate == 0
                }
            build_span.set(nbytes=self.nbytes())
        if OBS.enabled:
            OBS.metrics.counter("fmindex.builds").inc()
            OBS.metrics.gauge("fmindex.nbytes").set(self.nbytes())

    def _init_from_bwt(self, bwt: str, occ_sample_rate: int, rank_backend: str = "rankall") -> None:
        self._bwt = bwt
        self._rank_backend = rank_backend
        if rank_backend == "rankall":
            self._rank = RankAll(bwt, self._alphabet, occ_sample_rate)
        elif rank_backend == "wavelet":
            from .wavelet import WaveletRank

            self._rank = WaveletRank(bwt, self._alphabet)
        else:
            raise IndexCorruptionError(f"unknown rank backend {rank_backend!r}")
        # C[code] = number of BWT characters with a smaller code = first row
        # of that character's F interval (the paper's F_x start).
        counts = [self._rank.total(code) for code in range(self._alphabet.size)]
        c_array = [0] * (self._alphabet.size + 1)
        for code in range(self._alphabet.size):
            c_array[code + 1] = c_array[code] + counts[code]
        self._c_array = c_array

    # -- introspection --------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """The index's alphabet."""
        return self._alphabet

    @property
    def text_length(self) -> int:
        """Length of the indexed text, sentinel excluded."""
        return self._text_len

    @property
    def n_rows(self) -> int:
        """Number of BW-matrix rows (``text_length + 1``)."""
        return self._text_len + 1

    @property
    def bwt(self) -> str:
        """The BWT string ``L`` (sentinel included).

        Indexes loaded from the binary format keep only the packed codes;
        the string form is decoded lazily on first access and cached.
        """
        if self._bwt is None:
            self._bwt = self._alphabet.decode(self._rank.iter_codes())
        return self._bwt

    @property
    def sa_sample_rate(self) -> int:
        """Sampling distance of the stored suffix-array entries."""
        return self._sa_sample_rate

    def f_interval(self, code: int) -> Range:
        """The F-column interval of character ``code`` (paper's ``F_x``)."""
        return Range(self._c_array[code], self._c_array[code + 1])

    def full_range(self) -> Range:
        """The range covering every row (the paper's virtual root pair)."""
        return Range(0, self.n_rows)

    def nbytes(self) -> int:
        """Index payload in bytes, using the paper's C-style accounting.

        Rankall structure (2-bit BWT + 32-bit checkpoints) plus the
        sampled suffix array stored as 32-bit positions with a one-bit
        sampled-row marker per row.
        """
        sampled_sa_bytes = len(self._sampled_sa) * 4 + (self.n_rows + 7) // 8
        return self._rank.nbytes() + sampled_sa_bytes

    # -- core search primitives ------------------------------------------------

    def extend(self, rng: Range, code: int) -> Range:
        """One backward-search step: the paper's ``search(z, L_range)``.

        Returns the row range of suffixes obtained by prepending the
        character ``code`` to the suffixes in ``rng``; empty when the
        character does not occur in ``L[rng.lo : rng.hi]``.
        """
        if rng.is_empty:
            return EMPTY_RANGE
        base = self._c_array[code]
        lo = base + self._rank.occ(code, rng.lo)
        hi = base + self._rank.occ(code, rng.hi)
        return Range(lo, hi) if lo < hi else EMPTY_RANGE

    def extend_char(self, rng: Range, ch: str) -> Range:
        """Character-typed convenience wrapper over :meth:`extend`."""
        return self.extend(rng, self._alphabet.code(ch))

    def branch_codes(self, rng: Range) -> List[int]:
        """Non-sentinel codes occurring in ``L[rng.lo : rng.hi]``.

        These are the S-tree children of a node with range ``rng``.
        """
        if rng.is_empty:
            return []
        return [c for c in self._rank.present_codes(rng.lo, rng.hi) if c != 0]

    def children(self, rng: Range) -> List[Tuple[int, Range]]:
        """All one-character extensions of ``rng`` in a single pass.

        Returns ``(code, sub_range)`` for every non-sentinel character that
        occurs in ``L[rng.lo : rng.hi]`` — the S-tree children of a node
        (paper Sec. IV-A) — using exactly two rankall probes per alphabet
        character.
        """
        if rng.is_empty:
            return []
        row_lo = self._rank.counts_at(rng.lo)
        row_hi = self._rank.counts_at(rng.hi)
        c_array = self._c_array
        out: List[Tuple[int, Range]] = []
        for code in range(1, self._alphabet.size):
            a = row_lo[code]
            b = row_hi[code]
            if b > a:
                base = c_array[code]
                out.append((code, Range(base + a, base + b)))
        return out

    def backward_search(self, query: str) -> Range:
        """Row range of suffixes prefixed by ``query`` (empty when absent)."""
        rng = self.full_range()
        for ch in reversed(query):
            rng = self.extend_char(rng, ch)
            if rng.is_empty:
                return EMPTY_RANGE
        return rng

    # -- counting and locating ---------------------------------------------------

    def count(self, query: str) -> int:
        """Number of occurrences of ``query`` in the text."""
        if query == "":
            return self.n_rows
        return len(self.backward_search(query))

    def contains(self, query: str) -> bool:
        """True when ``query`` occurs in the text."""
        return query == "" or not self.backward_search(query).is_empty

    def lf_step(self, row: int) -> int:
        """The LF mapping: row of the rotation one position to the left."""
        code = self._rank.char_code_at(row)
        return self._c_array[code] + self._rank.occ(code, row)

    def suffix_position(self, row: int) -> int:
        """Text position of the suffix at BW row ``row`` (``SA[row]``)."""
        steps = 0
        sampled = self._sampled_sa
        while row not in sampled:
            row = self.lf_step(row)
            steps += 1
            if steps > self.n_rows:
                raise IndexCorruptionError("LF walk failed to reach a sampled row")
        if OBS.enabled:
            OBS.metrics.counter("fmindex.locates").inc()
            OBS.metrics.counter("fmindex.lf_walk_steps").inc(steps)
        return sampled[row] + steps

    def locate_range(self, rng: Range) -> List[int]:
        """Text positions (suffix starts) for every row in ``rng``."""
        return [self.suffix_position(row) for row in range(rng.lo, rng.hi)]

    def locate(self, query: str) -> List[int]:
        """All 0-based occurrence start positions of ``query``."""
        if query == "":
            raise PatternError("cannot locate the empty pattern")
        return self.locate_range(self.backward_search(query))

    # -- serialization --------------------------------------------------------------

    _MAGIC = "repro-fmindex"
    _VERSION = 1

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "magic": self._MAGIC,
            "version": self._VERSION,
            "alphabet": "".join(self._alphabet.symbols),
            "bwt": self.bwt,
            "occ_sample_rate": self._rank.sample_rate or DEFAULT_SAMPLE_RATE,
            "sa_sample_rate": self._sa_sample_rate,
            "rank_backend": self._rank_backend,
            "sampled_sa": sorted(self._sampled_sa.items()),
        }

    def dumps(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict) -> "FMIndex":
        """Rebuild an index from :meth:`to_dict` output."""
        if payload.get("magic") != cls._MAGIC:
            raise SerializationError("not a serialized FMIndex")
        if payload.get("version") != cls._VERSION:
            raise SerializationError(f"unsupported FMIndex version {payload.get('version')}")
        instance = cls.__new__(cls)
        instance._alphabet = Alphabet(payload["alphabet"])
        bwt = payload["bwt"]
        if bwt.count(SENTINEL) != 1:
            raise SerializationError("corrupt BWT payload")
        instance._text_len = len(bwt) - 1
        instance._sa_sample_rate = int(payload["sa_sample_rate"])
        instance._init_from_bwt(
            bwt,
            int(payload["occ_sample_rate"]),
            payload.get("rank_backend", "rankall"),
        )
        instance._sampled_sa = {int(row): int(pos) for row, pos in payload["sampled_sa"]}
        return instance

    @classmethod
    def loads(cls, data: str) -> "FMIndex":
        """Rebuild an index from :meth:`dumps` output."""
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid index payload: {exc}") from None
        return cls.from_dict(payload)

    def reconstruct_text(self) -> str:
        """Invert the BWT back into the indexed text (validation helper)."""
        from .transform import inverse_bwt

        return inverse_bwt(self.bwt)

    # -- binary format (repro.io.binfmt) --------------------------------------

    @classmethod
    def _from_parts(
        cls,
        alphabet: Alphabet,
        text_len: int,
        sa_sample_rate: int,
        rank,
        sampled_sa,
        rank_backend: str = "rankall",
    ) -> "FMIndex":
        """Assemble an index around pre-built components (no scans, no copies).

        The zero-copy deserialization entry point: ``rank`` is a
        :class:`~repro.bwt.rankall.RankAll` wrapping mmap-backed buffers
        and ``sampled_sa`` any mapping-like row → position view.  The
        C-array is the only thing derived here — O(alphabet) work.
        """
        instance = cls.__new__(cls)
        instance._alphabet = alphabet
        instance._text_len = text_len
        instance._sa_sample_rate = sa_sample_rate
        instance._rank_backend = rank_backend
        instance._rank = rank
        instance._bwt = None
        c_array = [0] * (alphabet.size + 1)
        for code in range(alphabet.size):
            c_array[code + 1] = c_array[code] + rank.total(code)
        instance._c_array = c_array
        instance._sampled_sa = sampled_sa
        return instance

    def to_binary(self) -> bytes:
        """The index as one binary blob (see ``docs/INDEX_FORMAT.md``)."""
        from ..io.binfmt import dump_fmindex

        return dump_fmindex(self)

    @classmethod
    def from_binary(cls, buffer, verify_checksums: bool = False) -> "FMIndex":
        """Load from a :meth:`to_binary` blob, wrapping (not copying) it."""
        from ..io.binfmt import load_fmindex

        return load_fmindex(buffer, verify_checksums=verify_checksums)

    def save(self, path) -> int:
        """Write the binary index format to ``path``; returns bytes written."""
        from ..io.binfmt import save_fmindex

        return save_fmindex(self, path)

    @classmethod
    def load(cls, path, mmap: bool = True, verify_checksums: bool = False) -> "FMIndex":
        """Load a binary index file.

        ``mmap=True`` maps the file and wraps its sections with zero
        copies — O(header) work regardless of index size; ``mmap=False``
        reads the file into one ``bytes`` object and wraps that instead
        (still no per-section copies, but the read itself is O(file)).
        """
        from ..io.binfmt import open_fmindex

        return open_fmindex(path, mmap=mmap, verify_checksums=verify_checksums)
