"""BWT-array index substrate (paper Sec. III).

* :mod:`repro.bwt.transform` — the Burrows–Wheeler transform itself,
  constructed through the suffix array per paper eq. (3), and its inverse.
* :mod:`repro.bwt.rankall` — the paper's "rankall" occurrence structure
  (Fig. 2): per-character cumulative counts, checkpoint-sampled to trade
  space for scan length.
* :mod:`repro.bwt.fmindex` — the FM-index: first-column intervals ``F_x``
  (the ``<x, [α, β]>`` pairs of Sec. III-A), backward search, and locate
  via a sampled suffix array.
"""

from .transform import bwt_from_suffix_array, bwt_transform, inverse_bwt
from .rankall import RankAll
from .fmindex import FMIndex, Range, EMPTY_RANGE

__all__ = [
    "bwt_transform",
    "bwt_from_suffix_array",
    "inverse_bwt",
    "RankAll",
    "FMIndex",
    "Range",
    "EMPTY_RANGE",
]
