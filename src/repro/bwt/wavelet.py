"""Wavelet-tree rank structure: an alternative occ backend.

The paper's rankall arrays (Fig. 2) store one cumulative count per
character per checkpoint — O(σ) words per checkpoint.  The standard
alternative in the FM-index literature is the **wavelet tree**: a binary
decomposition of the alphabet where each node holds one rank-indexed
bitvector, answering ``occ(c, i)`` in O(log σ) bitvector ranks with
n·log σ bits total, independent of σ.

This module provides:

* :class:`BitVector` — an immutable bitmap with O(1) ``rank1`` via 64-bit
  words and per-word prefix counts;
* :class:`WaveletTree` — balanced code-range decomposition with
  ``rank``/``access``;
* :class:`WaveletRank` — an adapter exposing the same interface as
  :class:`~repro.bwt.rankall.RankAll`, so
  :class:`~repro.bwt.fmindex.FMIndex` can use either backend
  (``rank_backend="wavelet"``); the ablation benchmark compares them.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence

from ..alphabet import Alphabet
from ..errors import IndexCorruptionError
from ..obs import OBS

_WORD = 64


class BitVector:
    """An immutable bitmap with constant-time rank.

    >>> bv = BitVector([1, 0, 1, 1, 0])
    >>> bv.rank1(4)
    3
    >>> bv[3]
    1
    """

    __slots__ = ("_words", "_prefix", "_length", "_total")

    def __init__(self, bits: Iterable[int]):
        words = array("Q")
        current = 0
        offset = 0
        length = 0
        for bit in bits:
            if bit:
                current |= 1 << offset
            offset += 1
            length += 1
            if offset == _WORD:
                words.append(current)
                current = 0
                offset = 0
        if offset:
            words.append(current)
        prefix = array("L", [0] * (len(words) + 1))
        running = 0
        for w, word in enumerate(words):
            prefix[w] = running
            running += bin(word).count("1")
        prefix[len(words)] = running
        self._words = words
        self._prefix = prefix
        self._length = length
        self._total = running

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._length:
            raise IndexError("BitVector index out of range")
        return (self._words[i // _WORD] >> (i % _WORD)) & 1

    def rank1(self, i: int) -> int:
        """Number of set bits in the prefix ``[:i]``."""
        if not 0 <= i <= self._length:
            raise IndexError(f"rank prefix {i} out of range 0..{self._length}")
        w, r = divmod(i, _WORD)
        count = self._prefix[w]
        if r:
            count += bin(self._words[w] & ((1 << r) - 1)).count("1")
        return count

    def rank0(self, i: int) -> int:
        """Number of clear bits in the prefix ``[:i]``."""
        return i - self.rank1(i)

    @property
    def n_set(self) -> int:
        """Total number of set bits."""
        return self._total

    def nbytes(self) -> int:
        """Payload bytes: bitmap words plus prefix counts."""
        return len(self._words) * 8 + len(self._prefix) * self._prefix.itemsize


class _Node:
    __slots__ = ("lo", "hi", "bits", "left", "right")

    def __init__(self, lo: int, hi: int, bits: BitVector):
        self.lo = lo
        self.hi = hi
        self.bits = bits
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class WaveletTree:
    """A balanced wavelet tree over integer codes ``0 .. n_codes-1``.

    >>> wt = WaveletTree([1, 2, 3, 0, 2, 1, 1, 1], 5)
    >>> wt.rank(1, 8)   # occurrences of code 1 in the whole sequence
    4
    >>> wt.access(2)
    3
    """

    def __init__(self, codes: Sequence[int], n_codes: int):
        if n_codes < 1:
            raise IndexCorruptionError("n_codes must be positive")
        self._length = len(codes)
        self._n_codes = n_codes
        self._root = self._build(list(codes), 0, max(n_codes, 2))

    def _build(self, codes: List[int], lo: int, hi: int) -> Optional[_Node]:
        if hi - lo <= 1 or not codes:
            return None
        mid = (lo + hi) // 2
        bits = BitVector(1 if c >= mid else 0 for c in codes)
        node = _Node(lo, hi, bits)
        node.left = self._build([c for c in codes if c < mid], lo, mid)
        node.right = self._build([c for c in codes if c >= mid], mid, hi)
        return node

    def __len__(self) -> int:
        return self._length

    def rank(self, code: int, i: int) -> int:
        """Occurrences of ``code`` in the prefix ``[:i]``."""
        if not 0 <= i <= self._length:
            raise IndexError(f"rank prefix {i} out of range 0..{self._length}")
        node = self._root
        while node is not None:
            mid = (node.lo + node.hi) // 2
            if code >= mid:
                i = node.bits.rank1(i)
                node = node.right
            else:
                i = node.bits.rank0(i)
                node = node.left
        return i

    def access(self, i: int) -> int:
        """The code at position ``i``."""
        if not 0 <= i < self._length:
            raise IndexError("access out of range")
        node = self._root
        lo, hi = 0, max(self._n_codes, 2)
        while node is not None:
            mid = (node.lo + node.hi) // 2
            if node.bits[i]:
                i = node.bits.rank1(i)
                lo, node = mid, node.right
            else:
                i = node.bits.rank0(i)
                hi, node = mid, node.left
        return lo

    def nbytes(self) -> int:
        """Total bitvector payload bytes."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            total += node.bits.nbytes()
            stack.extend((node.left, node.right))
        return total


class WaveletRank:
    """Drop-in occ backend over a wavelet tree (RankAll-compatible API)."""

    __slots__ = ("_tree", "_alphabet", "_size", "_length", "_totals")

    def __init__(self, bwt: str, alphabet: Alphabet, sample_rate: int = 0):
        # ``sample_rate`` accepted for interface parity; unused.
        self._alphabet = alphabet
        self._size = alphabet.size
        self._length = len(bwt)
        with OBS.span("wavelet.build", length=self._length, n_codes=alphabet.size):
            codes = alphabet.encode(bwt)
            self._tree = WaveletTree(codes, alphabet.size)
            self._totals = [0] * alphabet.size
            for c in codes:
                self._totals[c] += 1

    def __len__(self) -> int:
        return self._length

    @property
    def sample_rate(self) -> int:
        """Interface parity with RankAll; wavelet trees have no checkpoints."""
        return 0

    def char_code_at(self, i: int) -> int:
        """Integer code of ``L[i]``."""
        return self._tree.access(i)

    def occ(self, code: int, i: int) -> int:
        """Occurrences of ``code`` in ``L[:i]`` (O(log σ) bit ranks)."""
        if OBS.enabled:
            OBS.metrics.counter("rank.wavelet.occ_probes").inc()
        return self._tree.rank(code, i)

    def counts_at(self, i: int) -> List[int]:
        """Per-code prefix counts at ``i`` (σ rank walks)."""
        if OBS.enabled:
            OBS.metrics.counter("rank.wavelet.counts_at_probes").inc()
        return [self._tree.rank(code, i) for code in range(self._size)]

    def occ_range(self, code: int, lo: int, hi: int) -> int:
        """Occurrences of ``code`` in ``L[lo:hi]``."""
        return self.occ(code, hi) - self.occ(code, lo)

    def total(self, code: int) -> int:
        """Occurrences of ``code`` in the whole BWT."""
        return self._totals[code]

    def present_codes(self, lo: int, hi: int) -> List[int]:
        """Codes occurring in ``L[lo:hi]``."""
        return [c for c in range(self._size) if self.occ_range(c, lo, hi) > 0]

    def nbytes(self) -> int:
        """Payload bytes of the wavelet tree."""
        return self._tree.nbytes()

    def verify(self) -> None:
        """Spot-check ranks against totals; raise on drift."""
        for code in range(self._size):
            if self._tree.rank(code, self._length) != self._totals[code]:
                raise IndexCorruptionError(f"wavelet rank drift for code {code}")
