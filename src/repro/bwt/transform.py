"""The Burrows–Wheeler transform.

The paper constructs ``BWT(s)`` as the last column ``L`` of the sorted
rotation matrix (Fig. 1) and, in practice, derives it from the suffix array
``H`` via eq. (3)::

    L[i] = '$'         if H[i] = 0
    L[i] = s[H[i] - 1]  otherwise

Both the forward transform (through SA-IS) and the inverse (through the
rank-correspondence / LF property, paper eq. (1)) are provided; the inverse
is used only for validation, exactly as in the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

from ..alphabet import SENTINEL, Alphabet
from ..errors import IndexCorruptionError
from .. import suffix


def bwt_from_suffix_array(text: str, sa: Sequence[int]) -> str:
    """BWT of ``text + '$'`` given the suffix array of ``text + '$'``.

    Implements paper eq. (3).

    >>> bwt_from_suffix_array("acagaca", suffix.suffix_array("acagaca"))
    'acg$caaa'
    """
    n = len(text)
    if len(sa) != n + 1:
        raise IndexCorruptionError("suffix array length must be len(text) + 1")
    out = []
    for h in sa:
        out.append(SENTINEL if h == 0 else text[h - 1])
    return "".join(out)


def bwt_transform(text: str, alphabet: Optional[Alphabet] = None) -> str:
    """BWT of ``text + '$'`` (sentinel included in the output).

    >>> bwt_transform("acagaca")
    'acg$caaa'
    """
    return bwt_from_suffix_array(text, suffix.suffix_array(text, alphabet))


def inverse_bwt(bwt: str) -> str:
    """Recover the original text (without sentinel) from its BWT.

    Uses the rank correspondence between the first and last columns (paper
    eq. (1)): the i-th occurrence of character ``x`` in ``L`` is the same
    text position as the i-th occurrence of ``x`` in ``F``.

    >>> inverse_bwt("acg$caaa")
    'acagaca'
    """
    n = len(bwt)
    if bwt.count(SENTINEL) != 1:
        raise IndexCorruptionError("BWT must contain exactly one sentinel")
    # F-column start offset of each character.
    counts = Counter(bwt)
    starts = {}
    total = 0
    for ch in sorted(counts):
        starts[ch] = total
        total += counts[ch]
    # LF mapping: row i in L maps to row starts[L[i]] + rank(L[i], i) in F.
    seen: Counter = Counter()
    lf: List[int] = [0] * n
    for i, ch in enumerate(bwt):
        lf[i] = starts[ch] + seen[ch]
        seen[ch] += 1
    # Walk backwards from the sentinel row, emitting characters.
    out = []
    row = bwt.index(SENTINEL)
    for _ in range(n - 1):
        row = lf[row]
        out.append(bwt[row])
    out.reverse()
    # The walk emits text[0], text[1], ... in order after the reverse... —
    # verify by construction: row of '$' in F is 0; the character L[0]
    # precedes '$' in the text, i.e. is the last text character.
    return "".join(out)
