"""Chunked fan-out of batch queries over one index.

The many-pattern setting is the one the paper (and the related
k-mismatch literature) argues matters in practice: a fixed target, a
stream of reads.  :class:`BatchExecutor` turns a read batch into chunks
and runs them

* **serially** (``workers <= 1``) through the index's *cached* engine,
  so Algorithm A's persistent pair memo carries range derivations from
  one read to the next;
* on a **thread pool**, one shallow index clone per chunk — the clones
  share the FM-index payload but own their engine instances, because
  engines are stateful and not thread-safe;
* on a **process pool**, placing the zero-copy binary index blob
  (:mod:`repro.io.binfmt`) in :mod:`multiprocessing.shared_memory` once
  and letting every worker re-hydrate from it in O(header) — true CPU
  parallelism without per-worker deserialization cost.  Indexes the
  binary format cannot hold (non-rankall rank backends) fall back to the
  JSON payload, still shipped through the one shared segment.

Process workers pull ``(chunk_id, chunk)`` tasks from a shared queue
(dynamic scheduling: a worker that finishes early takes the next chunk
instead of idling behind a static partition).  Results are always
returned in input order regardless of scheduling, and per-chunk
:class:`~repro.core.types.SearchStats` are merged in chunk order, so
parallel runs are byte-identical to sequential ones.
"""

from __future__ import annotations

import gc as _gc
import multiprocessing as _mp
import os as _os
import queue as _queue
import threading
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import Occurrence, SearchStats
from ..errors import PatternError, SerializationError
from ..obs import (
    OBS,
    PROFILER,
    READINESS,
    WORKER_STALLED_METRIC,
    ObsDelta,
    count_query_error,
    merge_obs_delta,
    new_trace_id,
    record_query_error,
)
from .arena import DEFAULT_ARENA_BYTES, RECORD_HEADER, ArenaWriter, decode_chunk, region_bounds

#: Execution modes accepted by :class:`BatchExecutor`.
MODES = ("thread", "process")

#: Default stuck-pool deadline in seconds (env ``REPRO_WORKER_STALL_S``):
#: a process batch with no chunk completion for this long is declared
#: stalled by the watchdog.
DEFAULT_STALL_TIMEOUT_S = float(_os.environ.get("REPRO_WORKER_STALL_S", "30"))

#: Counter bumped every time the collect loop's queue poll times out
#: without a message — a cheap liveness signal for slow hosts where the
#: poll cadence matters relative to the watchdog deadline.
POLL_TIMEOUTS_METRIC = "engine.worker.poll_timeouts"


class _WorkerWatchdog(threading.Thread):
    """Declares a process pool stuck when no chunk completes in time.

    The collect loop calls :meth:`progress` on every message it drains;
    this daemon thread watches that heartbeat and, once it goes quiet
    past the deadline, fires exactly once: bumps
    ``engine.worker.stalled`` (with the batch's ``{engine,k,shard}``
    labels) and flips the ``workers`` readiness component so ``/readyz``
    answers 503.  Dead workers are caught separately (the collect loop
    sees their exit codes); the watchdog is for the *live-but-stuck*
    case — a worker wedged in a pathological query or a lost queue
    message — which previously hung the batch silently forever.
    """

    def __init__(self, deadline_s: float, labels: Dict[str, object]):
        super().__init__(name="repro-batch-watchdog", daemon=True)
        self.deadline_s = deadline_s
        self.labels = labels
        self.stalled = False
        self._stop_event = threading.Event()
        self._last_progress = monotonic()

    def progress(self) -> None:
        """Heartbeat: a queue message arrived, the pool is alive."""
        self._last_progress = monotonic()

    def stop(self) -> None:
        self._stop_event.set()

    def run(self) -> None:
        poll_s = min(1.0, max(0.05, self.deadline_s / 4))
        while not self._stop_event.wait(poll_s):
            if monotonic() - self._last_progress >= self.deadline_s:
                self.stalled = True
                OBS.count(WORKER_STALLED_METRIC)
                OBS.count(WORKER_STALLED_METRIC, **self.labels)
                READINESS.set_component(
                    "workers", False,
                    f"batch pool stalled: no chunk completed in "
                    f"{self.deadline_s:.1f}s",
                )
                if OBS.enabled:
                    OBS.record_event("worker_stalled", deadline_s=self.deadline_s,
                                     **self.labels)
                return

#: Target number of chunks per worker when no explicit chunk size is given
#: — small enough to balance uneven reads, large enough to amortise the
#: per-chunk engine construction.
_CHUNKS_PER_WORKER = 4


@dataclass
class BatchResult:
    """Outcome of one batch run: per-item results plus merged stats."""

    #: One result entry per input item, in input order.
    results: List[object]
    #: Per-chunk stats merged through :meth:`SearchStats.merge`.
    stats: SearchStats
    n_chunks: int = 1
    workers: int = 1
    mode: str = "serial"
    #: Mode-specific detail (process mode: transfer kind, shm size,
    #: per-worker hydration timings).
    extra: Dict[str, object] = field(default_factory=dict)


class BatchExecutor:
    """Run a batch of queries against one index with optional parallelism.

    Parameters
    ----------
    workers:
        ``<= 1`` runs serially (through the index's cached, memo-bearing
        engine); larger values fan chunks out over a pool.
    mode:
        ``"thread"`` (default; shares the in-memory index) or
        ``"process"`` (hydrates the index per worker from one
        shared-memory binary blob in O(header), pulls chunks from a
        dynamic task queue — needs a picklable workload, pays a process
        startup cost, and in exchange escapes the GIL).
    chunk_size:
        Items per chunk; default splits the batch into
        ``workers * 4`` chunks.
    shard:
        When set (by :class:`repro.shard.QueryRouter`), the shard id
        this executor serves — stamped as a ``{shard}`` label on the
        ``engine.worker.*`` telemetry and the ``engine.batch`` span so
        per-shard worker behaviour is separable in the metrics payload.
        Unsharded runs leave it ``None`` and emit the historical series
        unchanged.
    stall_timeout:
        Seconds without any chunk completion before the watchdog
        declares a process pool stuck (default
        :data:`DEFAULT_STALL_TIMEOUT_S`, env ``REPRO_WORKER_STALL_S``).
    arena_bytes:
        Size of the shared-memory result arena process workers pack
        occurrence records into (see :mod:`repro.engine.arena`);
        default :data:`~repro.engine.arena.DEFAULT_ARENA_BYTES`
        (env ``REPRO_ARENA_BYTES``).  ``0`` disables the arena and
        returns every chunk through the pickle queue.
    """

    def __init__(
        self,
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
        shard: Optional[int] = None,
        stall_timeout: Optional[float] = None,
        arena_bytes: Optional[int] = None,
    ):
        if mode not in MODES:
            raise PatternError(f"unknown batch mode {mode!r}; expected one of {MODES}")
        if chunk_size is not None and chunk_size < 1:
            raise PatternError("chunk_size must be positive")
        if stall_timeout is not None and stall_timeout <= 0:
            raise PatternError("stall_timeout must be positive")
        if arena_bytes is not None and arena_bytes < 0:
            raise PatternError("arena_bytes must be >= 0")
        self.workers = max(0, int(workers))
        self.mode = mode
        self.chunk_size = chunk_size
        self.shard = shard
        self.stall_timeout = (
            stall_timeout if stall_timeout is not None else DEFAULT_STALL_TIMEOUT_S
        )
        self.arena_bytes = (
            int(arena_bytes) if arena_bytes is not None else DEFAULT_ARENA_BYTES
        )

    def _shard_labels(self) -> Dict[str, int]:
        """The ``{shard}`` label dict (empty when serving an unsharded index)."""
        return {} if self.shard is None else {"shard": self.shard}

    # -- public API -----------------------------------------------------------

    def run_search(
        self, index, patterns: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> BatchResult:
        """Search every pattern; ``results[i]`` is pattern ``i``'s occurrence list."""
        return self._run(index, "search", list(patterns), k, method)

    def run_map(
        self, index, reads: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> BatchResult:
        """Strand-aware mapping of every read; ``results[i]`` is a ReadHit list."""
        return self._run(index, "map", list(reads), k, method)

    def search_batch(
        self, index, patterns: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> Tuple[Dict[str, List[Occurrence]], SearchStats]:
        """Dict-shaped search results (the facade's ``search_batch`` contract)."""
        batch = self.run_search(index, patterns, k, method)
        return (
            {pattern: occs for pattern, occs in zip(patterns, batch.results)},
            batch.stats,
        )

    # -- internals ------------------------------------------------------------

    def _run(self, index, kind: str, items: List[str], k: int, method: str) -> BatchResult:
        parallel = self.workers > 1 and len(items) > 1
        workers = min(self.workers, len(items)) if parallel else 1
        # One correlation id per batch run, threaded into the result's
        # ``extra``, the flight-recorder record and the wide event — a
        # BatchResult in hand resolves to its telemetry via
        # /debug/queries?trace_id=... like a single query does.
        batch_trace_id = new_trace_id() if OBS.enabled else None
        start = perf_counter()
        with OBS.span(
            "engine.batch",
            kind=kind,
            mode=self.mode if parallel else "serial",
            workers=workers,
            items=len(items),
            **self._shard_labels(),
        ) as span:
            if not parallel:
                results, stats = _run_chunk(index, kind, items, k, method, cached=True)
                batch = BatchResult(results, stats, n_chunks=1, workers=1, mode="serial")
            else:
                batch = self._run_parallel(
                    index, kind, items, k, method, workers, batch_trace_id
                )
            span.set(chunks=batch.n_chunks)
        if OBS.enabled:
            from .registry import REGISTRY

            batch.extra["trace_id"] = batch_trace_id
            duration_ms = (perf_counter() - start) * 1e3
            occurrences = sum(len(r) for r in batch.results)
            engine_name = REGISTRY.canonical_name(method)
            return_path = str(batch.extra.get("return_path", ""))
            OBS.metrics.counter("engine.batch.items").inc(len(items))
            OBS.metrics.counter("engine.batch.chunks").inc(batch.n_chunks)
            OBS.metrics.gauge("engine.pool.workers").set(batch.workers)
            OBS.record_event(
                "batch",
                engine=engine_name,
                k=k,
                duration_ms=duration_ms,
                occurrences=occurrences,
                stats=batch.stats.to_dict(),
                trace_id=batch_trace_id,
                kind=kind,
                items=len(items),
                chunks=batch.n_chunks,
                workers=batch.workers,
                mode=batch.mode,
            )
            OBS.emit_wide(
                "batch",
                engine=engine_name,
                k=k,
                duration_ms=duration_ms,
                occurrences=occurrences,
                return_path=return_path,
                trace_id=batch_trace_id,
                items=len(items),
                chunks=batch.n_chunks,
                workers=batch.workers,
                mode=batch.mode,
            )
        return batch

    def _run_parallel(
        self, index, kind: str, items: List[str], k: int, method: str, workers: int,
        batch_trace_id: Optional[str] = None,
    ) -> BatchResult:
        size = self.chunk_size or max(1, -(-len(items) // (workers * _CHUNKS_PER_WORKER)))
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        extra: Dict[str, object] = {}
        if self.mode == "process":
            chunk_results = self._map_process(
                index, kind, chunks, k, method, extra, batch_trace_id
            )
        else:
            chunk_results = self._map_thread(index, kind, chunks, k, method)
        results: List[object] = []
        stats = SearchStats()
        for chunk_out, chunk_stats in chunk_results:
            results.extend(chunk_out)
            stats.merge(chunk_stats)
        return BatchResult(
            results, stats, n_chunks=len(chunks), workers=workers, mode=self.mode,
            extra=extra,
        )

    def _map_thread(self, index, kind, chunks, k, method):
        workers = min(self.workers, len(chunks))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_worker_chunk, index, kind, chunk, k, method)
                for chunk in chunks
            ]
            return [future.result() for future in futures]

    def _map_process(self, index, kind, chunks, k, method, extra,
                     batch_trace_id=None):
        from .registry import REGISTRY

        try:
            blob = index.to_binary()
            transfer = "shm-bin"
        except SerializationError:
            blob = index.dumps().encode("utf-8")
            transfer = "shm-json"
        workers = min(self.workers, len(chunks))
        observe = OBS.enabled
        engine_name = REGISTRY.canonical_name(method)
        watchdog = _WorkerWatchdog(
            self.stall_timeout,
            labels={"engine": engine_name, "k": k, **self._shard_labels()},
        )
        # Mirror the parent's profiler into each worker: the worker samples
        # itself at the same rate and ships its folded stacks back through
        # the per-chunk ObsDelta payload (0.0 = parent is not profiling).
        profile_hz = PROFILER.hz if PROFILER.is_running() else 0.0
        ctx = _mp.get_context()
        from multiprocessing import shared_memory

        # The result arena only pays off when every worker's region can
        # hold at least one record; below that, skip straight to the
        # pickle-queue path rather than spill every single chunk.
        use_arena = self.arena_bytes // workers >= RECORD_HEADER.size
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
        arena = (
            shared_memory.SharedMemory(create=True, size=self.arena_bytes)
            if use_arena
            else None
        )
        procs: List[_mp.process.BaseProcess] = []
        try:
            shm.buf[: len(blob)] = blob
            task_q = ctx.Queue()
            result_q = ctx.Queue()
            # Everything is enqueued up front (queues are unbounded), so
            # workers can drain tasks and exit on a sentinel with no
            # further coordination from the parent.
            for chunk_id, chunk in enumerate(chunks):
                task_q.put((chunk_id, chunk))
            for _ in range(workers):
                task_q.put(None)
            for worker_id in range(workers):
                region = (
                    region_bounds(self.arena_bytes, workers, worker_id)
                    if use_arena
                    else (0, 0)
                )
                proc = ctx.Process(
                    target=_pool_worker,
                    args=(
                        worker_id, shm.name, len(blob), transfer, observe,
                        kind, k, method, task_q, result_q, profile_hz,
                        self.shard, arena.name if use_arena else None,
                        region[0], region[1],
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            watchdog.start()
            outcomes, hydrations = self._collect(
                result_q, procs, len(chunks), workers, engine_name, k, watchdog
            )
            # Decode arena-path chunks *before* the finally closes the
            # arena segment — records only live as long as the mapping.
            # Workers committed their bytes before publishing the
            # (start, end) span on the result queue, so reads are safe
            # even while workers idle on the sentinel.
            arena_records = 0
            arena_spills = 0
            arena_chunks = 0
            queue_chunks = 0
            decoded: Dict[int, tuple] = {}
            for chunk_id in range(len(chunks)):
                payload, chunk_stats, obs_payload = outcomes[chunk_id]
                if payload[0] == "arena":
                    _, a_start, a_end, n_items, n_records = payload
                    chunk_out = decode_chunk(
                        arena.buf, a_start, a_end, n_items, chunk_id, kind
                    )
                    arena_records += n_records
                    arena_chunks += 1
                else:  # ("queue", out)
                    chunk_out = payload[1]
                    queue_chunks += 1
                    if use_arena:
                        arena_spills += 1
                decoded[chunk_id] = (chunk_out, chunk_stats, obs_payload)
            outcomes = decoded
        finally:
            watchdog.stop()
            if watchdog.is_alive():
                watchdog.join(timeout=2.0)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                proc.join()
            shm.close()
            shm.unlink()
            if arena is not None:
                arena.close()
                arena.unlink()
        # A batch that drained normally is the recovery signal: clear any
        # stalled/dead verdict a previous batch left on readiness.
        if not watchdog.stalled:
            READINESS.set_component("workers", True, "batch pool completed normally")
        extra["transfer"] = transfer
        extra["shm_nbytes"] = len(blob)
        extra["worker_hydrate_ms"] = sorted(hydrations.values())
        if not use_arena:
            extra["return_path"] = "queue"
        elif queue_chunks == 0:
            extra["return_path"] = "arena"
        elif arena_chunks == 0:
            extra["return_path"] = "queue"
        else:
            extra["return_path"] = "mixed"
        extra["arena_nbytes"] = self.arena_bytes if use_arena else 0
        extra["arena_records"] = arena_records
        extra["arena_spills"] = arena_spills
        if observe:
            OBS.metrics.gauge("engine.shm.nbytes").set(len(blob))
            if use_arena:
                OBS.metrics.gauge("engine.arena.nbytes").set(self.arena_bytes)
                OBS.metrics.counter("engine.arena.records").inc(arena_records)
                if arena_spills:
                    OBS.metrics.counter("engine.arena.spills").inc(arena_spills)
            hist = OBS.metrics.histogram("engine.worker.hydrate_ms")
            shard_labels = self._shard_labels()
            for worker_id, hydrate_ms in sorted(hydrations.items()):
                OBS.metrics.counter("engine.worker.hydrations").inc()
                hist.observe(hydrate_ms)
                # Dimensional series: which worker hydrated how fast, and
                # over which transfer (shm-bin vs the JSON fallback) —
                # worker ids are pool slots (0..workers-1), bounded
                # cardinality by construction.  Routed batches add the
                # shard id so seam-local hydration cost stays separable.
                OBS.metrics.counter(
                    "engine.worker.hydrations", worker=worker_id, transfer=transfer,
                    **shard_labels,
                ).inc()
                OBS.metrics.histogram(
                    "engine.worker.hydrate_ms", worker=worker_id, transfer=transfer,
                    **shard_labels,
                ).observe(hydrate_ms)
        # Fold each worker chunk's telemetry back into this process, in
        # chunk order — `map --mode process` reports the same counter
        # totals a sequential run would.
        results = []
        for chunk_id in range(len(chunks)):
            chunk_out, chunk_stats, obs_payload = outcomes[chunk_id]
            if observe and obs_payload is not None:
                # Tag the worker's shipped records with the batch's
                # correlation id before re-recording them, so
                # /debug/queries?trace_id=<batch> finds every per-query
                # record the batch produced (arena- and queue-returned
                # chunks alike).
                if batch_trace_id:
                    for record in obs_payload.get("records") or []:
                        record.setdefault("batch_trace_id", batch_trace_id)
                merge_obs_delta(OBS, obs_payload)
            results.append((chunk_out, chunk_stats))
        return results

    def _collect(self, result_q, procs, n_chunks, workers, engine, k, watchdog):
        """Drain the result queue: one hydration report per worker plus one
        outcome per chunk, with a liveness check so a crashed worker turns
        into an exception instead of a hang.

        Every drained message is a heartbeat for the stall watchdog.  A
        dead worker is counted as ``query.errors{...,kind="worker"}``
        and flips the ``workers`` readiness component before raising.  A
        shipped chunk failure merges its :class:`~repro.obs.ObsDelta`
        payload first — the worker already classified and counted the
        error, so the labelled ``query.errors`` series reach the parent
        — and the raised ``RuntimeError`` is marked already-counted so
        outer layers (shard router) do not count the same failure twice.
        """
        outcomes: Dict[int, tuple] = {}
        hydrations: Dict[int, float] = {}
        # Poll faster than the watchdog's deadline so the collector
        # always drains a pending message (a heartbeat) before the
        # watchdog can declare the pool stalled — with the historical
        # fixed 1.0s poll, a sub-second REPRO_WORKER_STALL_S (slow-host
        # tuning, tests) could fire the watchdog while a result sat
        # undrained in the queue.
        poll_s = min(1.0, max(0.02, self.stall_timeout / 8.0))
        while len(outcomes) < n_chunks or len(hydrations) < workers:
            try:
                message = result_q.get(timeout=poll_s)
            except _queue.Empty:
                if OBS.enabled:
                    OBS.metrics.counter(POLL_TIMEOUTS_METRIC).inc()
                dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    count_query_error(engine, k, "worker")
                    READINESS.set_component(
                        "workers", False,
                        f"batch worker died with exit code {dead[0].exitcode}",
                    )
                    error = RuntimeError(
                        f"batch worker died with exit code {dead[0].exitcode} "
                        f"before completing its chunks"
                    )
                    error._repro_error_counted = True
                    raise error
                if all(not p.is_alive() for p in procs):
                    count_query_error(engine, k, "worker")
                    READINESS.set_component(
                        "workers", False, "all batch workers exited with chunks missing"
                    )
                    error = RuntimeError(
                        "all batch workers exited but "
                        f"{n_chunks - len(outcomes)} chunk results are missing"
                    )
                    error._repro_error_counted = True
                    raise error
                continue
            watchdog.progress()
            tag = message[0]
            if tag == "hydrated":
                _, worker_id, hydrate_ms = message
                hydrations[worker_id] = hydrate_ms
            elif tag == "ok":
                _, chunk_id, out, stats, obs_payload = message
                outcomes[chunk_id] = (out, stats, obs_payload)
            else:  # "error"
                _, chunk_id, exc_repr, tb_text, obs_payload = message
                if OBS.enabled and obs_payload is not None:
                    merge_obs_delta(OBS, obs_payload)
                error = RuntimeError(
                    f"batch chunk {chunk_id} failed in worker: {exc_repr}\n{tb_text}"
                )
                error._repro_error_counted = True
                raise error
        return outcomes, hydrations


# -- chunk workers -------------------------------------------------------------


def _run_chunk(
    index, kind: str, chunk: Sequence[str], k: int, method: str, cached: bool
) -> Tuple[List[object], SearchStats]:
    """Run one chunk sequentially; the unit of work every mode shares.

    ``cached=True`` routes through the index's own engine cache (serial
    mode — the cross-query memo persists beyond this batch);
    ``cached=False`` is for pool workers operating on a private clone.
    """
    worker_index = index if cached else index.clone_for_worker()
    stats = SearchStats()
    out: List[object] = []
    busy_start = perf_counter()
    try:
        if kind == "search":
            for pattern in chunk:
                occurrences, query_stats = worker_index.search_with_stats(pattern, k, method)
                stats.merge(query_stats)
                out.append(occurrences)
        elif kind == "map":
            for read in chunk:
                hits, query_stats = worker_index.map_read_with_stats(read, k, method=method)
                stats.merge(query_stats)
                out.append(hits)
        else:  # pragma: no cover - internal invariant
            raise PatternError(f"unknown batch kind {kind!r}")
    finally:
        # Busy time is counted in every mode (serial path, thread pool,
        # process worker — the worker's increment rides its ObsDelta
        # home), so utilization = busy_ms / (wall * workers) holds.
        if OBS.enabled:
            OBS.metrics.counter("engine.worker.busy_ms").inc(
                (perf_counter() - busy_start) * 1e3
            )
    return out, stats


def _run_worker_chunk(index, kind, chunk, k, method):
    """Thread-pool entry: private index clone, then the shared chunk loop."""
    return _run_chunk(index, kind, chunk, k, method, cached=False)


def _pool_worker(
    worker_id: int,
    shm_name: str,
    blob_size: int,
    transfer: str,
    observe: bool,
    kind: str,
    k: int,
    method: str,
    task_q,
    result_q,
    profile_hz: float = 0.0,
    shard: Optional[int] = None,
    arena_name: Optional[str] = None,
    arena_start: int = 0,
    arena_end: int = 0,
) -> None:
    """Process-pool worker: hydrate once from shared memory, then pull
    ``(chunk_id, chunk)`` tasks until the ``None`` sentinel.

    ``arena_name`` (when set) names the parent's result arena; this
    worker owns the exclusive ``[arena_start, arena_end)`` region and
    packs each chunk's results into it as fixed-width records (see
    :mod:`repro.engine.arena`), shipping only the committed
    ``("arena", start, end, n_items, n_records)`` span through the
    queue.  A chunk that does not fit spills back to the pickled
    ``("queue", results)`` payload — correctness never depends on arena
    capacity.

    ``worker_id`` is the pool slot (0..workers-1) — the stable,
    low-cardinality value worker telemetry is labelled with (pids churn
    per batch and would blow through the label cap).

    ``observe`` mirrors the parent's ``OBS.enabled`` at launch, so
    worker-side instrumentation runs exactly when the parent's does
    (under ``spawn`` the child starts with a fresh, disabled singleton;
    under ``fork`` it inherits whatever the parent had).  Hydration
    happens *before* the first chunk's telemetry snapshot, so its own
    counters and spans never leak into per-chunk deltas; the cost is
    reported separately through one ``("hydrated", ...)`` message.

    Per-chunk telemetry deltas are taken against a snapshot at chunk
    entry (see :class:`repro.obs.ObsDelta`), so counters inherited
    across ``fork`` are not double-reported and a worker serving many
    chunks ships each chunk's increments exactly once — labelled series
    and flight-recorder records included.

    ``profile_hz > 0`` means the parent's sampling profiler was running
    at launch: the worker runs its *own* profiler at that rate for its
    lifetime, tagged with the pool slot, and each chunk's samples ride
    the chunk's ObsDelta payload home (idle queue-wait samples between
    chunks are deliberately not shipped — only attributed work is).
    """
    from multiprocessing import shared_memory

    from ..core.matcher import KMismatchIndex

    if observe:
        OBS.enable()
        # Under fork the worker inherits the parent's open engine.batch
        # span; drop it so worker spans finish as roots and get shipped.
        OBS.tracer.clear_stack()
        # A fork-inherited event log would double-write every worker
        # query to the parent's JSONL file (records already reach the
        # parent through the ObsDelta payload and are re-recorded there).
        # Detach without closing: the file handle belongs to the parent.
        OBS.event_log = None
        # Same for a fork-inherited wide-event sink: the parent emits
        # the batch-level wide event; worker-side duplicates (writing
        # through a shared file handle, no less) are not wanted.
        OBS.wide_log = None
    if profile_hz > 0:
        # Under fork the child inherits the parent's Profiler *object*
        # but not its sampler thread; start() sees a dead thread and
        # spins up a fresh worker-local profile.
        PROFILER._thread = None
        PROFILER.start(hz=profile_hz, meta={"worker": worker_id})
    start = perf_counter()
    shm = shared_memory.SharedMemory(name=shm_name)
    # The binary path wraps `shm.buf` zero-copy — the index holds
    # memoryviews into the segment until the worker drops it; the parent
    # owns the unlink.
    if transfer == "shm-json":
        index = KMismatchIndex.loads(bytes(shm.buf[:blob_size]).decode("utf-8"))
    else:
        index = KMismatchIndex.from_binary(shm.buf)
    hydrate_ms = (perf_counter() - start) * 1e3
    result_q.put(("hydrated", worker_id, hydrate_ms))
    arena_shm = None
    writer = None
    if arena_name is not None:
        arena_shm = shared_memory.SharedMemory(name=arena_name)
        writer = ArenaWriter(arena_shm.buf, arena_start, arena_end)
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            chunk_id, chunk = task
            snapshot = None
            try:
                if observe:
                    snapshot = ObsDelta.capture(OBS)
                    OBS.metrics.counter(
                        "engine.worker.chunks", worker=worker_id, transfer=transfer,
                        **({} if shard is None else {"shard": shard}),
                    ).inc()
                    out, stats = _run_chunk(index, kind, chunk, k, method, cached=True)
                    obs_payload = snapshot.finish(OBS)
                else:
                    out, stats = _run_chunk(index, kind, chunk, k, method, cached=True)
                    obs_payload = None
                payload = None
                if writer is not None:
                    packed = writer.pack_chunk(chunk_id, kind, out)
                    if packed is not None:
                        a_start, a_end, n_records = packed
                        payload = ("arena", a_start, a_end, len(out), n_records)
                if payload is None:
                    payload = ("queue", out)
                result_q.put(("ok", chunk_id, payload, stats, obs_payload))
            except BaseException as exc:  # ship the failure; never hang the parent
                # The failed chunk's telemetry still rides home: count the
                # error worker-side (idempotent — the matcher usually
                # already did) and finish the delta so the parent merges
                # query.errors{engine,k,kind} like any other series.
                obs_payload = None
                if observe and snapshot is not None:
                    try:
                        from .registry import REGISTRY

                        record_query_error(REGISTRY.canonical_name(method), k, exc)
                        obs_payload = snapshot.finish(OBS)
                    except Exception:  # pragma: no cover - never mask the failure
                        obs_payload = None
                result_q.put(
                    ("error", chunk_id, repr(exc), _traceback.format_exc(), obs_payload)
                )
                break
    finally:
        if profile_hz > 0:
            PROFILER.stop()
        # Drop every zero-copy view into the segment before detaching,
        # else close() raises BufferError ("exported pointers exist").
        del index, writer
        _gc.collect()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view outlived the index
            pass
        if arena_shm is not None:
            try:
                arena_shm.close()
            except BufferError:  # pragma: no cover - a view outlived the writer
                pass
