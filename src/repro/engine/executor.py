"""Chunked fan-out of batch queries over one index.

The many-pattern setting is the one the paper (and the related
k-mismatch literature) argues matters in practice: a fixed target, a
stream of reads.  :class:`BatchExecutor` turns a read batch into chunks
and runs them

* **serially** (``workers <= 1``) through the index's *cached* engine,
  so Algorithm A's persistent pair memo carries range derivations from
  one read to the next;
* on a **thread pool**, one shallow index clone per chunk — the clones
  share the FM-index payload but own their engine instances, because
  engines are stateful and not thread-safe;
* on a **process pool**, shipping the serialized index payload once per
  worker (initializer) and rebuilding it there — true CPU parallelism
  for workloads big enough to amortise the fork.

Results are always returned in input order regardless of scheduling, and
per-chunk :class:`~repro.core.types.SearchStats` are merged in chunk
order, so parallel runs are byte-identical to sequential ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import Occurrence, SearchStats
from ..errors import PatternError
from ..obs import OBS, ObsDelta, merge_obs_delta

#: Execution modes accepted by :class:`BatchExecutor`.
MODES = ("thread", "process")

#: Target number of chunks per worker when no explicit chunk size is given
#: — small enough to balance uneven reads, large enough to amortise the
#: per-chunk engine construction.
_CHUNKS_PER_WORKER = 4


@dataclass
class BatchResult:
    """Outcome of one batch run: per-item results plus merged stats."""

    #: One result entry per input item, in input order.
    results: List[object]
    #: Per-chunk stats merged through :meth:`SearchStats.merge`.
    stats: SearchStats
    n_chunks: int = 1
    workers: int = 1
    mode: str = "serial"
    extra: Dict[str, float] = field(default_factory=dict)


class BatchExecutor:
    """Run a batch of queries against one index with optional parallelism.

    Parameters
    ----------
    workers:
        ``<= 1`` runs serially (through the index's cached, memo-bearing
        engine); larger values fan chunks out over a pool.
    mode:
        ``"thread"`` (default; shares the in-memory index) or
        ``"process"`` (rebuilds the index per worker from its serialized
        payload — needs a picklable workload, pays a startup cost, and in
        exchange escapes the GIL).
    chunk_size:
        Items per chunk; default splits the batch into
        ``workers * 4`` chunks.
    """

    def __init__(
        self,
        workers: int = 0,
        mode: str = "thread",
        chunk_size: Optional[int] = None,
    ):
        if mode not in MODES:
            raise PatternError(f"unknown batch mode {mode!r}; expected one of {MODES}")
        if chunk_size is not None and chunk_size < 1:
            raise PatternError("chunk_size must be positive")
        self.workers = max(0, int(workers))
        self.mode = mode
        self.chunk_size = chunk_size

    # -- public API -----------------------------------------------------------

    def run_search(
        self, index, patterns: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> BatchResult:
        """Search every pattern; ``results[i]`` is pattern ``i``'s occurrence list."""
        return self._run(index, "search", list(patterns), k, method)

    def run_map(
        self, index, reads: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> BatchResult:
        """Strand-aware mapping of every read; ``results[i]`` is a ReadHit list."""
        return self._run(index, "map", list(reads), k, method)

    def search_batch(
        self, index, patterns: Sequence[str], k: int, method: str = "algorithm_a"
    ) -> Tuple[Dict[str, List[Occurrence]], SearchStats]:
        """Dict-shaped search results (the facade's ``search_batch`` contract)."""
        batch = self.run_search(index, patterns, k, method)
        return (
            {pattern: occs for pattern, occs in zip(patterns, batch.results)},
            batch.stats,
        )

    # -- internals ------------------------------------------------------------

    def _run(self, index, kind: str, items: List[str], k: int, method: str) -> BatchResult:
        parallel = self.workers > 1 and len(items) > 1
        workers = min(self.workers, len(items)) if parallel else 1
        start = perf_counter()
        with OBS.span(
            "engine.batch",
            kind=kind,
            mode=self.mode if parallel else "serial",
            workers=workers,
            items=len(items),
        ) as span:
            if not parallel:
                results, stats = _run_chunk(index, kind, items, k, method, cached=True)
                batch = BatchResult(results, stats, n_chunks=1, workers=1, mode="serial")
            else:
                batch = self._run_parallel(index, kind, items, k, method, workers)
            span.set(chunks=batch.n_chunks)
        if OBS.enabled:
            OBS.metrics.counter("engine.batch.items").inc(len(items))
            OBS.metrics.counter("engine.batch.chunks").inc(batch.n_chunks)
            OBS.record_event(
                "batch",
                engine=method,
                k=k,
                duration_ms=(perf_counter() - start) * 1e3,
                occurrences=sum(len(r) for r in batch.results),
                stats=batch.stats.to_dict(),
                kind=kind,
                items=len(items),
                chunks=batch.n_chunks,
                workers=batch.workers,
                mode=batch.mode,
            )
        return batch

    def _run_parallel(
        self, index, kind: str, items: List[str], k: int, method: str, workers: int
    ) -> BatchResult:
        size = self.chunk_size or max(1, -(-len(items) // (workers * _CHUNKS_PER_WORKER)))
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        if self.mode == "process":
            chunk_results = self._map_process(index, kind, chunks, k, method)
        else:
            chunk_results = self._map_thread(index, kind, chunks, k, method)
        results: List[object] = []
        stats = SearchStats()
        for chunk_out, chunk_stats in chunk_results:
            results.extend(chunk_out)
            stats.merge(chunk_stats)
        return BatchResult(
            results, stats, n_chunks=len(chunks), workers=workers, mode=self.mode
        )

    def _map_thread(self, index, kind, chunks, k, method):
        workers = min(self.workers, len(chunks))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_worker_chunk, index, kind, chunk, k, method)
                for chunk in chunks
            ]
            return [future.result() for future in futures]

    def _map_process(self, index, kind, chunks, k, method):
        payload = index.dumps()
        workers = min(self.workers, len(chunks))
        observe = OBS.enabled
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_process_init, initargs=(payload, observe)
        ) as pool:
            futures = [
                pool.submit(_process_chunk, kind, chunk, k, method, observe)
                for chunk in chunks
            ]
            outcomes = [future.result() for future in futures]
        # Fold each worker chunk's telemetry back into this process, in
        # chunk order — `map --mode process` reports the same counter
        # totals a sequential run would.
        results = []
        for chunk_out, chunk_stats, obs_payload in outcomes:
            if observe:
                merge_obs_delta(OBS, obs_payload)
            results.append((chunk_out, chunk_stats))
        return results


# -- chunk workers -------------------------------------------------------------


def _run_chunk(
    index, kind: str, chunk: Sequence[str], k: int, method: str, cached: bool
) -> Tuple[List[object], SearchStats]:
    """Run one chunk sequentially; the unit of work every mode shares.

    ``cached=True`` routes through the index's own engine cache (serial
    mode — the cross-query memo persists beyond this batch);
    ``cached=False`` is for pool workers operating on a private clone.
    """
    worker_index = index if cached else index.clone_for_worker()
    stats = SearchStats()
    out: List[object] = []
    if kind == "search":
        for pattern in chunk:
            occurrences, query_stats = worker_index.search_with_stats(pattern, k, method)
            stats.merge(query_stats)
            out.append(occurrences)
    elif kind == "map":
        for read in chunk:
            hits, query_stats = worker_index.map_read_with_stats(read, k, method=method)
            stats.merge(query_stats)
            out.append(hits)
    else:  # pragma: no cover - internal invariant
        raise PatternError(f"unknown batch kind {kind!r}")
    return out, stats


def _run_worker_chunk(index, kind, chunk, k, method):
    """Thread-pool entry: private index clone, then the shared chunk loop."""
    return _run_chunk(index, kind, chunk, k, method, cached=False)


#: Per-process rebuilt index (set by :func:`_process_init` in pool workers).
_WORKER_INDEX = None


def _process_init(payload: str, observe: bool = False) -> None:
    """Process-pool initializer: rebuild the index once per worker.

    ``observe`` mirrors the parent's ``OBS.enabled`` at submit time, so
    worker-side instrumentation runs exactly when the parent's does
    (under ``spawn`` the child starts with a fresh, disabled singleton;
    under ``fork`` it inherits whatever the parent had).
    """
    global _WORKER_INDEX
    from ..core.matcher import KMismatchIndex

    if observe:
        OBS.enable()
        # Under fork the worker inherits the parent's open engine.batch
        # span; drop it so worker spans finish as roots and get shipped.
        OBS.tracer.clear_stack()
    _WORKER_INDEX = KMismatchIndex.loads(payload)


def _process_chunk(kind: str, chunk: Sequence[str], k: int, method: str, observe: bool = False):
    """Process-pool entry: run one chunk against the per-worker index.

    Returns ``(results, stats, obs_payload)`` — the third element is the
    chunk's serialized telemetry delta (metric increments plus finished
    span trees, see :class:`repro.obs.ObsDelta`), or ``None`` when the
    parent was not observing.  Deltas are taken against a snapshot at
    chunk entry, so index-rebuild work from the initializer and counters
    inherited across ``fork`` are not double-reported, and a worker
    serving many chunks ships each chunk's increments exactly once.
    """
    if not observe:
        return (*_run_chunk(_WORKER_INDEX, kind, chunk, k, method, cached=True), None)
    snapshot = ObsDelta.capture(OBS)
    out, stats = _run_chunk(_WORKER_INDEX, kind, chunk, k, method, cached=True)
    return out, stats, snapshot.finish(OBS)
