"""Declarative engine registry: one registration point for every matcher.

Every way this package can answer "where does ``pattern`` occur in the
target within distance ``k``?" — the paper's Algorithm A, the S-tree
baseline of [34], the ablation variants, and the comparison methods from
:mod:`repro.baselines` — is described by an :class:`EngineSpec` and
registered in the process-wide :data:`REGISTRY`.  The facade
(:class:`~repro.core.matcher.KMismatchIndex`), the CLI, and the benchmark
suite all resolve method names through the registry instead of keeping
their own if/elif chains, so adding an engine is a single
``REGISTRY.register(...)`` call.

Engines follow one protocol (:class:`SearchEngine`): construction binds
the engine to a target (via the index), ``search(pattern, k)`` returns
``(occurrences, stats)``.  Matchers whose native signature differs —
per-pattern constructors like Amir's, plain ``fn(text, pattern, k)``
functions like the naive scan — are wrapped by the adapter classes below
at registration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Protocol, Tuple

from ..core.types import Occurrence, SearchStats
from ..errors import PatternError

class SearchEngine(Protocol):
    """The uniform engine protocol.

    An engine is bound to one target at construction time and may keep
    per-target state (indexes, caches, cross-query memos) between calls.
    Engine instances are **not** thread-safe; parallel callers must use
    one instance per worker (see :class:`repro.engine.executor.BatchExecutor`).
    """

    def search(self, pattern: str, k: int) -> Tuple[List[Occurrence], SearchStats]:
        """All occurrences of ``pattern`` within distance ``k``, plus stats."""
        ...


#: Capability labels used by :attr:`EngineSpec.capabilities`.
CAP_MISMATCH = "mismatch"
CAP_EDIT = "edit"
CAP_WILDCARD = "wildcard"


@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one registered engine.

    Attributes
    ----------
    name:
        Canonical method name (what :meth:`EngineRegistry.resolve` returns).
    factory:
        ``factory(index, **knobs) -> SearchEngine``; ``index`` is the
        owning :class:`~repro.core.matcher.KMismatchIndex` (text engines
        only read ``index.text``, index engines use ``index.fm_index``).
    kind:
        ``"index"`` — operates over the shared BWT/FM structures;
        ``"text"`` — scans or indexes the raw target itself.
    capabilities:
        Problem variants the engine answers (``mismatch``/``edit``/``wildcard``).
    aliases:
        Alternative names (the paper's display names, short forms).
    uses_phi / uses_reuse:
        Whether the φ(i) cut-off / the pair-hash-table derivation are
        active — lets ablation tooling enumerate variants declaratively.
    supports_mtree:
        Engine honours the ``record_mtree`` knob and exposes ``last_mtree``.
    cacheable:
        Instances are safely reusable across queries, so the facade may
        keep one per (name, knobs) — the cross-query memo lives there.
    description:
        One-line summary for listings (``repro-cli engines``).
    """

    name: str
    factory: Callable[..., SearchEngine]
    kind: str = "index"
    capabilities: FrozenSet[str] = frozenset({CAP_MISMATCH})
    aliases: Tuple[str, ...] = ()
    uses_phi: bool = False
    uses_reuse: bool = False
    supports_mtree: bool = False
    cacheable: bool = True
    description: str = ""


class EngineRegistry:
    """Name → :class:`EngineSpec` mapping with alias resolution.

    Registration order is preserved: enumeration APIs report engines in
    the order they were registered, so tables and CLI listings stay
    stable.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, EngineSpec] = {}
        self._aliases: Dict[str, str] = {}

    # -- registration ---------------------------------------------------------

    def register(self, spec: EngineSpec) -> EngineSpec:
        """Add ``spec``; duplicate names or aliases are rejected."""
        if spec.kind not in ("index", "text"):
            raise PatternError(f"engine kind must be 'index' or 'text', got {spec.kind!r}")
        for name in (spec.name, *spec.aliases):
            if name in self._specs or name in self._aliases:
                raise PatternError(f"engine name {name!r} is already registered")
        self._specs[spec.name] = spec
        for alias in spec.aliases:
            self._aliases[alias] = spec.name
        return spec

    # -- lookup ---------------------------------------------------------------

    def resolve(self, name: str) -> EngineSpec:
        """The spec for ``name`` (canonical or alias); raises on unknown names."""
        canonical = self._aliases.get(name, name)
        spec = self._specs.get(canonical)
        if spec is None:
            raise PatternError(
                f"unknown method {name!r}; expected one of {self.names()}"
            )
        return spec

    def create(self, name: str, index, **knobs) -> SearchEngine:
        """Instantiate the engine ``name`` for ``index``."""
        return self.resolve(name).factory(index, **knobs)

    def canonical_name(self, name: str) -> str:
        """The canonical spec name for ``name`` (aliases resolved);
        unknown names come back unchanged.

        Telemetry label values go through here so one engine is one
        series: ``A()`` and ``algorithm_a`` must not split the
        ``{engine=...}`` dimension just because callers spelled the
        method differently.
        """
        canonical = self._aliases.get(name, name)
        return canonical if canonical in self._specs else name

    def names(
        self, capability: Optional[str] = None, kind: Optional[str] = None
    ) -> Tuple[str, ...]:
        """Canonical names, optionally filtered by capability and kind."""
        return tuple(spec.name for spec in self.specs(capability=capability, kind=kind))

    def specs(
        self, capability: Optional[str] = None, kind: Optional[str] = None
    ) -> Tuple[EngineSpec, ...]:
        """Registered specs in registration order, optionally filtered."""
        out = []
        for spec in self._specs.values():
            if capability is not None and capability not in spec.capabilities:
                continue
            if kind is not None and spec.kind != kind:
                continue
            out.append(spec)
        return tuple(out)

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def __iter__(self) -> Iterator[EngineSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


# -- adapters -----------------------------------------------------------------
#
# The baselines predate the engine protocol; these adapters bring their
# three native shapes (function, per-pattern matcher, per-target matcher)
# onto SearchEngine without touching the baseline modules themselves.


class FunctionEngine:
    """Adapter for ``fn(text, pattern, k) -> [Occurrence]`` matchers."""

    def __init__(self, text: str, fn: Callable[[str, str, int], List[Occurrence]]):
        self._text = text
        self._fn = fn

    def search(self, pattern: str, k: int) -> Tuple[List[Occurrence], SearchStats]:
        return self._fn(self._text, pattern, k), SearchStats()


class PerPatternEngine:
    """Adapter for ``Matcher(text, pattern).search(k)`` matchers (Amir, LV)."""

    def __init__(self, text: str, matcher_cls):
        self._text = text
        self._matcher_cls = matcher_cls

    def search(self, pattern: str, k: int) -> Tuple[List[Occurrence], SearchStats]:
        return self._matcher_cls(self._text, pattern).search(k), SearchStats()


class PerTargetEngine:
    """Adapter for ``Matcher(text).search(pattern, k)`` matchers (Cole, q-gram).

    The wrapped matcher is built lazily on first use and kept — for
    Cole's method that amortises the suffix-tree construction across
    every query, exactly the way :class:`MethodSuite` used to hand-cache
    it.
    """

    def __init__(self, text: str, matcher_factory: Callable[[str], object]):
        self._text = text
        self._matcher_factory = matcher_factory
        self._matcher = None

    def search(self, pattern: str, k: int) -> Tuple[List[Occurrence], SearchStats]:
        if self._matcher is None:
            self._matcher = self._matcher_factory(self._text)
        return self._matcher.search(pattern, k), SearchStats()


class StatlessEngine:
    """Adapter for index searchers returning occurrences without stats
    (:class:`~repro.core.wildcard.WildcardSearcher`,
    :class:`~repro.core.kerrors.KErrorsSearcher`)."""

    def __init__(self, searcher):
        self._searcher = searcher

    def search(self, pattern: str, k: int):
        return self._searcher.search(pattern, k), SearchStats()


# -- builtin registration ------------------------------------------------------


def _register_builtin_engines(registry: EngineRegistry) -> None:
    """Register every engine this package ships with.

    Imports are local so that ``repro.engine`` stays importable without
    dragging in every baseline at interpreter start, and to keep the
    module free of import cycles with :mod:`repro.core.matcher` (engine
    factories receive the index instance; they never import its class).
    """
    from ..baselines.amir import AmirMatcher
    from ..baselines.bwt_seed import BwtSeedMatcher
    from ..baselines.cole import ColeMatcher
    from ..baselines.landau_vishkin import LandauVishkinMatcher
    from ..baselines.naive import naive_search
    from ..baselines.qgram import QGramIndex
    from ..core.algorithm_a import AlgorithmASearcher
    from ..core.kerrors import KErrorsSearcher
    from ..core.stree import STreeSearcher
    from ..core.wildcard import DEFAULT_WILDCARD, WildcardSearcher

    registry.register(
        EngineSpec(
            name="algorithm_a",
            factory=lambda index, record_mtree=False: AlgorithmASearcher(
                index.fm_index, record_mtree=record_mtree
            ),
            aliases=("A()", "a"),
            uses_phi=True,
            uses_reuse=True,
            supports_mtree=True,
            description="the paper's Algorithm A: BWT search with subtree derivation",
        )
    )
    registry.register(
        EngineSpec(
            name="algorithm_a_nophi",
            factory=lambda index, record_mtree=False: AlgorithmASearcher(
                index.fm_index, record_mtree=record_mtree, use_phi=False
            ),
            aliases=("A()-nophi",),
            uses_reuse=True,
            supports_mtree=True,
            description="Algorithm A ablation: φ(i) cut-off disabled",
        )
    )
    registry.register(
        EngineSpec(
            name="algorithm_a_noreuse",
            factory=lambda index, record_mtree=False: AlgorithmASearcher(
                index.fm_index, record_mtree=record_mtree, enable_reuse=False
            ),
            aliases=("A()-noreuse",),
            uses_phi=True,
            supports_mtree=True,
            description="Algorithm A ablation: pair hash table disabled",
        )
    )
    registry.register(
        EngineSpec(
            name="stree",
            factory=lambda index: STreeSearcher(index.fm_index, use_phi=True),
            aliases=("BWT", "bwt"),
            uses_phi=True,
            description="S-tree baseline of [34] with the φ(i) heuristic",
        )
    )
    registry.register(
        EngineSpec(
            name="stree_nophi",
            factory=lambda index: STreeSearcher(index.fm_index, use_phi=False),
            aliases=("BWT-nophi",),
            description="S-tree baseline, φ(i) heuristic off",
        )
    )
    registry.register(
        EngineSpec(
            name="naive",
            factory=lambda index: FunctionEngine(index.text, naive_search),
            kind="text",
            description="O(mn) direct scan (ground truth)",
        )
    )
    registry.register(
        EngineSpec(
            name="landau_vishkin",
            factory=lambda index: PerPatternEngine(index.text, LandauVishkinMatcher),
            kind="text",
            aliases=("LV", "lv"),
            description="O(kn) kangaroo verification at every position",
        )
    )
    registry.register(
        EngineSpec(
            name="amir",
            factory=lambda index: PerPatternEngine(index.text, AmirMatcher),
            kind="text",
            aliases=("Amir's", "amirs"),
            description="Amir's method: block marking + verification",
        )
    )
    registry.register(
        EngineSpec(
            name="cole",
            factory=lambda index: PerTargetEngine(index.text, ColeMatcher),
            kind="text",
            aliases=("Cole's", "coles"),
            description="Cole's method: k-mismatch DFS over a suffix tree",
        )
    )
    registry.register(
        EngineSpec(
            name="qgram",
            factory=lambda index: PerTargetEngine(index.text, QGramIndex),
            kind="text",
            description="q-gram seed index with pigeonhole filtration",
        )
    )
    registry.register(
        EngineSpec(
            name="bwt_seed",
            factory=lambda index: PerTargetEngine(index.text, BwtSeedMatcher),
            kind="text",
            description="BWT-backed seed-and-verify matcher",
        )
    )
    registry.register(
        EngineSpec(
            name="kerrors",
            factory=lambda index: StatlessEngine(KErrorsSearcher(index.fm_index)),
            capabilities=frozenset({CAP_EDIT}),
            description="k errors (Levenshtein) over the same BWT index",
        )
    )
    registry.register(
        EngineSpec(
            name="wildcard",
            factory=lambda index, wildcard=DEFAULT_WILDCARD: StatlessEngine(
                WildcardSearcher(index.fm_index, wildcard=wildcard)
            ),
            capabilities=frozenset({CAP_WILDCARD}),
            description="k-mismatch search with don't-care pattern positions",
        )
    )


#: The process-wide registry every dispatch layer consults.
REGISTRY = EngineRegistry()
_register_builtin_engines(REGISTRY)
