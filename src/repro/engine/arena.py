"""Zero-copy shared-memory result arena for process-pool batches.

Process workers hydrate the index zero-copy from shared memory, but the
*return* path historically pickled every occurrence list back through a
``multiprocessing.Queue`` per chunk — an O(hits) copy that dominates on
high-hit workloads (small ``k`` over repetitive genomes, the regime
Nicolae & Rajasekaran's k-mismatch line of work targets).  The arena
removes that copy: the parent allocates one shared-memory segment, each
worker packs its chunks' results into fixed-width records inside its own
reserved region, and the parent reassembles input-ordered results by
scanning records — no pickling, no per-hit allocation in transit.

Record layout (little-endian, 20-byte header)::

    u64 position      occurrence start in the target
    u32 item id       index of the pattern/read *within its chunk*
    u32 chunk id      which chunk the record belongs to
    u16 n_mismatches  how many u16 mismatch offsets follow inline
    u16 flags         bit 0: reverse-strand hit (map kind only)

followed by ``n_mismatches`` inline ``u16`` mismatch offsets, so the
full :class:`~repro.core.types.Occurrence` (offsets tuple included)
survives the round trip and arena-path results are byte-identical to
the pickled path.

Concurrency protocol: the arena is split into ``workers`` equal,
*exclusive* regions, so workers never contend on a shared cursor — each
owns an append-only offset inside its region (the "atomic-ish offset
protocol": ownership makes the append atomic by construction, and the
result-queue message that publishes ``(start, end)`` provides the
happens-before edge before the parent reads the bytes).  A chunk whose
records do not fit the remaining region space — or that contains a
value a fixed-width field cannot hold — spills gracefully back to the
pickle queue; ``BatchResult.extra["return_path"]`` records which path
each batch actually took (``arena`` / ``queue`` / ``mixed``).
"""

from __future__ import annotations

import os as _os
import struct
from typing import List, Optional, Sequence, Tuple

from ..errors import SerializationError

#: Fixed-width record header: position, item id, chunk id, mismatch
#: count, flags (see module docstring for field semantics).
RECORD_HEADER = struct.Struct("<QIIHH")

#: Default arena size in bytes (env ``REPRO_ARENA_BYTES``; ``0``
#: disables the arena entirely and forces the pickle-queue path).
DEFAULT_ARENA_BYTES = int(_os.environ.get("REPRO_ARENA_BYTES", str(8 << 20)))

#: ``flags`` bit 0: the hit is on the reverse strand (map kind only).
FLAG_REVERSE = 0x1

_U16_MAX = 0xFFFF
_U32_MAX = 0xFFFFFFFF


def region_bounds(arena_bytes: int, workers: int, worker_id: int) -> Tuple[int, int]:
    """The exclusive ``[start, end)`` byte range worker ``worker_id`` owns.

    The arena is split into ``workers`` equal regions; any remainder
    bytes at the tail are left unused (simpler than uneven regions, and
    at most ``workers - 1`` bytes are wasted).
    """
    region = arena_bytes // workers
    return worker_id * region, (worker_id + 1) * region


class ArenaWriter:
    """Worker-side packer: appends chunk records into one owned region.

    The writer never blocks and never raises on capacity: a chunk that
    does not fit (or holds a value outside the fixed-width fields)
    simply returns ``None`` from :meth:`pack_chunk`, signalling the
    caller to spill that chunk to the pickle queue instead.
    """

    def __init__(self, buf, start: int, end: int):
        self._buf = buf
        self._offset = start
        self._end = end

    def pack_chunk(
        self, chunk_id: int, kind: str, results: Sequence[Sequence[object]]
    ) -> Optional[Tuple[int, int, int]]:
        """Pack one chunk's per-item result lists; return the committed
        ``(start, end, n_records)`` triple, or ``None`` to spill.

        Sizing is done in a first pass so a chunk is committed
        all-or-nothing — a partial write never leaks into the region.
        """
        header_size = RECORD_HEADER.size
        needed = 0
        n_records = 0
        if chunk_id > _U32_MAX or len(results) > _U32_MAX:
            return None
        for entries in results:
            for entry in entries:
                occurrence = entry.occurrence if kind == "map" else entry
                mismatches = occurrence.mismatches
                if len(mismatches) > _U16_MAX:
                    return None
                if mismatches and mismatches[-1] > _U16_MAX:
                    # Offsets are ascending; checking the last suffices.
                    return None
                needed += header_size + 2 * len(mismatches)
                n_records += 1
        if needed > self._end - self._offset:
            return None
        start = self._offset
        offset = start
        buf = self._buf
        for item_id, entries in enumerate(results):
            for entry in entries:
                if kind == "map":
                    occurrence = entry.occurrence
                    flags = FLAG_REVERSE if entry.strand == "-" else 0
                else:
                    occurrence = entry
                    flags = 0
                mismatches = occurrence.mismatches
                RECORD_HEADER.pack_into(
                    buf, offset,
                    occurrence.start, item_id, chunk_id, len(mismatches), flags,
                )
                offset += header_size
                if mismatches:
                    struct.pack_into(
                        "<%dH" % len(mismatches), buf, offset, *mismatches
                    )
                    offset += 2 * len(mismatches)
        self._offset = offset
        return start, offset, n_records


def decode_chunk(
    buf, start: int, end: int, n_items: int, chunk_id: int, kind: str
) -> List[List[object]]:
    """Parent-side scan: rebuild one chunk's per-item result lists from
    the records a worker committed at ``[start, end)``.

    Workers pack items in order, so appends land in the same per-item
    order a sequential run produces — arena-path output is
    byte-identical to the pickled path.
    """
    from ..core.matcher import ReadHit
    from ..core.types import Occurrence

    out: List[List[object]] = [[] for _ in range(n_items)]
    header = RECORD_HEADER
    header_size = header.size
    offset = start
    while offset < end:
        if offset + header_size > end:
            raise SerializationError(
                f"arena chunk {chunk_id}: truncated record header at byte {offset}"
            )
        position, item_id, record_chunk, n_mismatches, flags = header.unpack_from(
            buf, offset
        )
        offset += header_size
        if record_chunk != chunk_id or item_id >= n_items:
            raise SerializationError(
                f"arena chunk {chunk_id}: record at byte {offset - header_size} "
                f"claims chunk {record_chunk} item {item_id} (have {n_items} items)"
            )
        if n_mismatches:
            if offset + 2 * n_mismatches > end:
                raise SerializationError(
                    f"arena chunk {chunk_id}: truncated mismatch offsets at "
                    f"byte {offset}"
                )
            mismatches = struct.unpack_from("<%dH" % n_mismatches, buf, offset)
            offset += 2 * n_mismatches
        else:
            mismatches = ()
        occurrence = Occurrence(start=position, mismatches=tuple(mismatches))
        if kind == "map":
            out[item_id].append(
                ReadHit(occurrence, "-" if flags & FLAG_REVERSE else "+")
            )
        else:
            out[item_id].append(occurrence)
    if offset != end:
        raise SerializationError(
            f"arena chunk {chunk_id}: record stream ended at byte {offset}, "
            f"expected {end}"
        )
    return out
