"""Pluggable engine layer: registry-driven dispatch and batch execution.

This package is the single seam between "a method name" and "the object
that answers queries":

* :mod:`repro.engine.registry` — the :class:`SearchEngine` protocol,
  declarative :class:`EngineSpec` descriptions, and the process-wide
  :data:`REGISTRY` every dispatch site (facade, CLI, bench suite)
  resolves names through.
* :mod:`repro.engine.executor` — :class:`BatchExecutor`, the chunked
  serial/thread/process fan-out behind ``search_batch``, ``map_reads``
  and ``repro-cli map --workers``.

See ``docs/ENGINES.md`` for the capability model, how to register a new
engine, and the batch-execution knobs.
"""

from .executor import MODES, BatchExecutor, BatchResult
from .registry import (
    CAP_EDIT,
    CAP_MISMATCH,
    CAP_WILDCARD,
    REGISTRY,
    EngineRegistry,
    EngineSpec,
    FunctionEngine,
    PerPatternEngine,
    PerTargetEngine,
    SearchEngine,
    StatlessEngine,
)

__all__ = [
    "REGISTRY",
    "EngineRegistry",
    "EngineSpec",
    "SearchEngine",
    "FunctionEngine",
    "PerPatternEngine",
    "PerTargetEngine",
    "StatlessEngine",
    "CAP_MISMATCH",
    "CAP_EDIT",
    "CAP_WILDCARD",
    "BatchExecutor",
    "BatchResult",
    "MODES",
]
