"""Uniform runner for the four compared methods (paper Sec. V).

The paper times, per configuration, the *average matching time* of:

* **A( )** — Algorithm A (this paper),
* **BWT** — the BWT-based S-tree method of [34] (φ heuristic on),
* **Amir's** — break/marking/verification,
* **Cole's** — suffix-tree brute force.

:class:`MethodSuite` amortises per-target preprocessing the way the paper
does — index/suffix-tree construction time is excluded ("the time for
constructing BWT(s̄) is not included as it is completely independent of
r") — and reports per-read averages plus the search statistics of the
index-based methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.registry import CAP_MISMATCH, REGISTRY
from ..core.matcher import KMismatchIndex
from ..core.types import SearchStats
from ..obs import LATENCY_BUCKETS_MS, OBS, Histogram

#: The four methods of the paper's evaluation, in its naming.  These are
#: registry aliases; :meth:`MethodSuite.run` accepts any registered
#: mismatch engine name or alias.
PAPER_METHODS = ("A()", "BWT", "Amir's", "Cole's")


def available_methods() -> Tuple[str, ...]:
    """Every registered mismatch engine the suite can time."""
    return REGISTRY.names(capability=CAP_MISMATCH)


@dataclass
class MethodResult:
    """Aggregate outcome of running one method over a read batch."""

    method: str
    total_seconds: float
    n_reads: int
    n_occurrences: int
    stats: Optional[SearchStats] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-read latency distribution (milliseconds), always populated by
    #: :meth:`MethodSuite.run` — feeds the percentile columns of
    #: :func:`repro.bench.reporting.format_percentiles`.
    latency_hist: Optional[Histogram] = None

    @property
    def avg_seconds(self) -> float:
        """Average matching time per read — the paper's reported metric."""
        return self.total_seconds / self.n_reads if self.n_reads else 0.0

    def to_dict(self) -> dict:
        """JSON-compatible summary (the regression gate's per-method row).

        Latency is reported in milliseconds (average plus histogram
        percentiles); work counters come from the merged
        :class:`SearchStats` — ``rank_queries`` is the probe count the
        gate compares, the machine-independent half of the check.
        """
        payload = {
            "method": self.method,
            "n_reads": self.n_reads,
            "n_occurrences": self.n_occurrences,
            "total_seconds": self.total_seconds,
            "avg_ms": self.avg_seconds * 1e3,
        }
        if self.latency_hist is not None and self.latency_hist.count:
            payload["latency_ms"] = {
                "p50": self.latency_hist.percentile(50),
                "p90": self.latency_hist.percentile(90),
                "p99": self.latency_hist.percentile(99),
                "max": self.latency_hist.max,
            }
        if self.stats is not None:
            payload["stats"] = self.stats.to_dict()
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


class MethodSuite:
    """Run any of the compared methods over one target string.

    Construction builds the shared per-target structures (the BWT index
    and, lazily, the suffix tree); :meth:`run` then times one method over
    a read batch at a given ``k``.

    Parameters
    ----------
    text:
        The target (genome) string.
    methods:
        Which methods :meth:`run_all` exercises, in order.
    """

    def __init__(self, text: str, methods: Sequence[str] = PAPER_METHODS):
        self._text = text
        self._methods = tuple(methods)
        self._index = KMismatchIndex(text)

    @property
    def index(self) -> KMismatchIndex:
        """The shared BWT index."""
        return self._index

    # -- single-method timing --------------------------------------------------

    def run(self, method: str, reads: Sequence[str], k: int) -> MethodResult:
        """Time ``method`` over ``reads`` at mismatch bound ``k``.

        Each read is also timed individually into the result's
        ``latency_hist`` so reports can show tail percentiles next to the
        paper's average — averages hide exactly the reads the derivation
        machinery is supposed to help.
        """
        runner = self._runner_for(method, k)
        last_stats: Optional[SearchStats] = None
        n_occurrences = 0
        latency_hist = Histogram("suite.latency_ms", LATENCY_BUCKETS_MS)
        with OBS.span("suite.run", method=method, k=k, n_reads=len(reads)) as span:
            start = time.perf_counter()
            for read in reads:
                read_start = time.perf_counter()
                occurrences, stats = runner(read)
                latency_hist.observe((time.perf_counter() - read_start) * 1e3)
                n_occurrences += len(occurrences)
                if stats is not None:
                    last_stats = stats if last_stats is None else last_stats.merge(stats)
            elapsed = time.perf_counter() - start
            span.set(seconds=round(elapsed, 6), occurrences=n_occurrences)
        if OBS.enabled:
            # One dimensional family, per-engine/per-k children — the cut
            # the paper's Fig. 11(a) plots, reproducible straight from a
            # /metrics scrape.  (The name-mangled suite.<method>.latency_ms
            # twin is retired; see docs/OBSERVABILITY.md.)
            OBS.metrics.histogram(
                "suite.latency_ms", engine=REGISTRY.canonical_name(method), k=k
            ).merge(latency_hist)
        return MethodResult(
            method=method,
            total_seconds=elapsed,
            n_reads=len(reads),
            n_occurrences=n_occurrences,
            stats=last_stats,
            latency_hist=latency_hist,
        )

    def run_all(self, reads: Sequence[str], k: int) -> List[MethodResult]:
        """Time every configured method; results in configuration order."""
        return [self.run(method, reads, k) for method in self._methods]

    def run_json(self, reads: Sequence[str], k: int, **meta) -> dict:
        """One JSON document for a full :meth:`run_all` pass.

        The shape consumed by :mod:`repro.bench.regression` — workload
        metadata (so baselines refuse to compare across different
        set-ups) plus one :meth:`MethodResult.to_dict` row per method.
        """
        results = self.run_all(reads, k)
        return {
            "format": "repro-bench",
            "version": 1,
            "workload": {
                "target_bp": len(self._text),
                "n_reads": len(reads),
                "read_length": len(reads[0]) if reads else 0,
                "k": k,
                **meta,
            },
            "methods": {result.method: result.to_dict() for result in results},
        }

    # -- method registry ----------------------------------------------------------

    def _runner_for(self, method: str, k: int) -> Callable:
        """Resolve ``method`` through the engine registry.

        The engine instance comes from the index's per-(method, knobs)
        cache, so per-target preprocessing (Cole's suffix tree, the
        q-gram table, Algorithm A's persistent pair memo) is amortised
        across the batch — the paper's accounting, extended to every
        registered engine.  Index-backed engines report their
        :class:`SearchStats`; text baselines report ``None`` (their
        adapters return empty stats, normalised here so result rows keep
        the historical shape).
        """
        spec = REGISTRY.resolve(method)
        engine = self._index.engine(spec.name)
        if spec.kind == "index":
            return lambda read: engine.search(read, k)
        return lambda read: (engine.search(read, k)[0], None)
