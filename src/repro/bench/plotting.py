"""Dependency-free ASCII charts for the benchmark figures.

The paper's Figs. 11–12 are line charts; these helpers render the same
series as terminal plots so ``benchmarks/results/*.txt`` contains both
the data table and a visual shape check, with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Glyph per series, recycled when there are more series than glyphs.
_GLYPHS = "*o+x#@%&"


def ascii_chart(
    xs: Sequence[object],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render one or more y-series over a shared x axis.

    ``series`` maps names to numeric values (same length as ``xs``).
    With ``log_y`` the vertical axis is logarithmic — the right choice
    for timings spanning orders of magnitude, as in the paper's figures.

    >>> "2.00" in ascii_chart([1, 2], {"A": [1.0, 2.0]}, height=3, width=12)
    True
    """
    import math

    names = list(series)
    if not names or not xs:
        raise ValueError("need at least one series and one x value")
    for name in names:
        if len(series[name]) != len(xs):
            raise ValueError(f"series {name!r} length does not match x axis")

    values = [v for name in names for v in series[name]]
    lo, hi = min(values), max(values)
    if log_y:
        if lo <= 0:
            raise ValueError("log_y requires positive values")
        transform = math.log
    else:
        transform = float
    t_lo, t_hi = transform(lo), transform(hi)
    span = (t_hi - t_lo) or 1.0

    def row_of(value: float) -> int:
        frac = (transform(value) - t_lo) / span
        return min(height - 1, max(0, round(frac * (height - 1))))

    def col_of(index: int) -> int:
        if len(xs) == 1:
            return 0
        return round(index * (width - 1) / (len(xs) - 1))

    grid = [[" "] * width for _ in range(height)]
    for s, name in enumerate(names):
        glyph = _GLYPHS[s % len(_GLYPHS)]
        points = series[name]
        # Draw straight segments between consecutive points.
        for i in range(len(xs) - 1):
            c0, c1 = col_of(i), col_of(i + 1)
            r0, r1 = row_of(points[i]), row_of(points[i + 1])
            steps = max(c1 - c0, 1)
            for step in range(steps + 1):
                c = c0 + step
                r = round(r0 + (r1 - r0) * step / steps)
                grid[r][c] = glyph
        if len(xs) == 1:
            grid[row_of(points[0])][0] = glyph

    def fmt(value: float) -> str:
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.2g}"

    lines: List[str] = []
    for r in range(height - 1, -1, -1):
        if r == height - 1:
            label = fmt(hi)
        elif r == 0:
            label = fmt(lo)
        else:
            label = ""
        lines.append(f"{label:>8} |" + "".join(grid[r]))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = " " * 10 + str(xs[0])
    tail = str(xs[-1])
    pad = max(1, width - len(str(xs[0])) - len(tail))
    lines.append(x_axis + " " * pad + tail)
    legend = "   ".join(
        f"{_GLYPHS[s % len(_GLYPHS)]} {name}" for s, name in enumerate(names)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"{y_label}{' (log scale)' if log_y else ''}")
    return "\n".join(lines)
