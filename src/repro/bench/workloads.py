"""Benchmark workloads: the paper's experimental set-ups, scaled.

A :class:`Workload` bundles a target genome with a batch of simulated
reads, mirroring Sec. V: "we take 50 reads with length varying from 100
bps to 300 bps" against the Table 1 genomes.

Scaling: benchmark genome sizes are additionally capped by
:data:`BENCH_SCALE` (environment variable ``REPRO_BENCH_SCALE``, default
120 000 bp) so the full suite finishes in minutes; set the variable higher
to run closer to the catalog's 1/1000-of-paper sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Sequence

from ..simulate.catalog import GENOME_CATALOG, GenomeSpec, build_catalog_genome
from ..simulate.reads import ReadConfig, simulate_reads

#: Cap (bp) applied to benchmark genomes; override via REPRO_BENCH_SCALE.
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "120000"))

#: Reads per benchmark batch (the paper uses 50; scaled down by default —
#: override via REPRO_BENCH_READS).
BENCH_READS = int(os.environ.get("REPRO_BENCH_READS", "10"))


@dataclass
class Workload:
    """A benchmark scenario: one genome plus a batch of query reads."""

    name: str
    genome: str
    reads: List[str] = field(repr=False)

    @property
    def genome_size(self) -> int:
        """Target length in bases."""
        return len(self.genome)

    @property
    def read_length(self) -> int:
        """Length of the (uniform-length) reads."""
        return len(self.reads[0]) if self.reads else 0


def _spec_by_name(name: str) -> GenomeSpec:
    for spec in GENOME_CATALOG:
        if spec.name == name or name.lower() in spec.name.lower():
            return spec
    raise KeyError(f"no catalog genome matches {name!r}")


def catalog_workload(
    genome_name: str = "Rat (Rnor_6.0)",
    read_length: int = 100,
    n_reads: int = 0,
    seed: int = 7,
    max_genome: int = 0,
) -> Workload:
    """Build a workload over a Table 1 catalog genome.

    ``n_reads`` defaults to :data:`BENCH_READS`; ``max_genome`` defaults
    to :data:`BENCH_SCALE`.
    """
    spec = _spec_by_name(genome_name)
    cap = max_genome if max_genome > 0 else BENCH_SCALE
    genome = build_catalog_genome(spec, max_length=cap)
    count = n_reads if n_reads > 0 else BENCH_READS
    config = ReadConfig(n_reads=count, length=read_length, seed=seed)
    reads = [r.forward_sequence() for r in simulate_reads(genome, config)]
    return Workload(name=f"{spec.name} / {read_length}bp x{count}", genome=genome, reads=reads)


def fig11_workload(read_length: int = 100, n_reads: int = 0, seed: int = 7) -> Workload:
    """The Fig. 11 scenario: reads against the Rat genome stand-in."""
    return catalog_workload("Rat (Rnor_6.0)", read_length=read_length, n_reads=n_reads, seed=seed)


def read_length_sweep(lengths: Sequence[int] = (100, 150, 200, 250, 300), seed: int = 7) -> List[Workload]:
    """Workloads for the Fig. 11(b) read-length axis."""
    return [fig11_workload(read_length=length, seed=seed) for length in lengths]
