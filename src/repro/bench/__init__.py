"""Benchmark harness: workloads, method suite, and reporting.

Every benchmark in ``benchmarks/`` is a thin driver over this package:
:mod:`repro.bench.workloads` materialises the paper's experimental
set-ups (genome + reads for a given scale), :mod:`repro.bench.suite` runs
the four compared methods uniformly and collects timings plus search
statistics, and :mod:`repro.bench.reporting` prints the rows the paper's
tables/figures report.
"""

from .workloads import Workload, fig11_workload, catalog_workload, BENCH_SCALE
from .suite import MethodResult, MethodSuite, PAPER_METHODS
from .reporting import format_table, format_series
from .regression import (
    Regression,
    RegressionError,
    compare_runs,
    format_report,
    load_bench_json,
    run_ci_workload,
    write_bench_json,
)

__all__ = [
    "Workload",
    "fig11_workload",
    "catalog_workload",
    "BENCH_SCALE",
    "MethodResult",
    "MethodSuite",
    "PAPER_METHODS",
    "format_table",
    "format_series",
    "Regression",
    "RegressionError",
    "compare_runs",
    "format_report",
    "load_bench_json",
    "run_ci_workload",
    "write_bench_json",
]
