"""Plain-text reporting for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report, as aligned ASCII tables — no plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..obs.metrics import Histogram


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(format_table(["k", "time"], [[1, "2.0s"], [10, "3.5s"]]))
    k   | time
    ----+-----
    1   | 2.0s
    10  | 3.5s
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [max(len(h), 3) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in str_rows
    )
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(header_line)
    parts.append(separator)
    if body:
        parts.append(body)
    return "\n".join(parts)


def format_series(x_label: str, xs: Sequence[object], series: dict, title: str = "") -> str:
    """Render one table with the x axis first and one column per series.

    ``series`` maps a series name to its y values (same length as ``xs``)
    — the shape of a paper figure's data.
    """
    names = list(series)
    headers = [x_label] + names
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in names])
    return format_table(headers, rows, title=title)


def format_seconds(seconds: float) -> str:
    """Human-readable duration with stable width for tables."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


#: Percentiles reported by the latency columns (paper tables report only
#: averages; the tail is where per-read variance shows).
PERCENTILES = (50, 90, 99)


def percentile_headers(prefix: str = "") -> List[str]:
    """Column headers matching :func:`percentile_cells` (``p50`` ...)."""
    return [f"{prefix}p{p}" for p in PERCENTILES]


def percentile_cells(hist: Optional[Histogram]) -> List[str]:
    """One formatted cell per :data:`PERCENTILES` entry for ``hist``.

    ``hist`` holds milliseconds (the convention of
    :class:`~repro.bench.suite.MethodResult.latency_hist`); empty or
    missing histograms render as dashes so tables stay aligned.
    """
    if hist is None or hist.count == 0:
        return ["-" for _ in PERCENTILES]
    return [format_seconds(hist.percentile(p) / 1e3) for p in PERCENTILES]


def format_histogram(hist: Histogram, width: int = 40) -> str:
    """ASCII rendering of one histogram (delegates to the obs layer)."""
    return hist.render(width=width)
