"""Perf-regression gate: compare a benchmark run against a committed baseline.

The paper's claim is a *work-count* argument — Algorithm A wins because
range reuse collapses repeated subtrees — so the gate checks two
different things per method:

* **probe counts** (``stats.rank_queries``, plus leaves and expanded
  nodes): deterministic for a fixed seeded workload, so any growth is a
  real algorithmic regression and gets a tight threshold;
* **latency** (``avg_ms``): machine-dependent, so it gets a looser,
  configurable threshold — it catches gross slowdowns (the 2× kind)
  without flapping on CI-runner variance.

Workflow::

    repro-cli bench --json-out run.json                      # produce
    repro-cli bench --baseline benchmarks/results/baseline_ci.json \
              --check-regression                             # compare

:func:`compare_runs` is the pure core (two JSON documents in, a list of
:class:`Regression` findings out); everything else is plumbing around
it.  Baselines embed their workload parameters and comparison refuses
mismatched workloads — a silent genome-size change must not masquerade
as a speedup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Format tag/version embedded in benchmark JSON documents.
BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1

#: Default regression thresholds (fractional growth over baseline).
DEFAULT_LATENCY_THRESHOLD = 0.25
DEFAULT_PROBE_THRESHOLD = 0.25

#: Ignore latency regressions below this many milliseconds of absolute
#: growth — sub-millisecond averages are timer noise, not regressions.
LATENCY_FLOOR_MS = 0.05

#: The deterministic work counters compared per method, in report order.
PROBE_COUNTERS = ("rank_queries", "nodes_expanded", "leaves")

#: The (numerator, denominator) of the relative latency gate — the
#: paper's headline comparison, Algorithm A vs the S-tree baseline.
RATIO_METHODS = ("A()", "BWT")


class RegressionError(ReproError):
    """Raised on malformed benchmark documents or mismatched workloads."""


@dataclass(frozen=True)
class Regression:
    """One metric that regressed past its threshold."""

    method: str
    metric: str
    baseline: float
    current: float
    threshold: float

    @property
    def ratio(self) -> float:
        """Current over baseline (inf when the baseline was zero)."""
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        return (
            f"{self.method}: {self.metric} regressed "
            f"{self.baseline:g} -> {self.current:g} "
            f"({self.ratio:.2f}x, threshold {1 + self.threshold:.2f}x)"
        )


def validate_bench_document(document: dict, source: str = "benchmark JSON") -> dict:
    """Check format/version/shape; returns the document for chaining."""
    if not isinstance(document, dict):
        raise RegressionError(f"{source} is not a {BENCH_FORMAT} document")
    if document.get("format") != BENCH_FORMAT:
        raise RegressionError(
            f"{source} is not a {BENCH_FORMAT} document "
            f"(format={document.get('format')!r})"
        )
    version = document.get("version")
    if not isinstance(version, int) or version > BENCH_VERSION:
        raise RegressionError(
            f"{source} has unsupported {BENCH_FORMAT} version {version!r} "
            f"(this build reads versions <= {BENCH_VERSION})"
        )
    if not isinstance(document.get("methods"), dict):
        raise RegressionError(f"{source} has no 'methods' table")
    return document


def load_bench_json(path: str) -> dict:
    """Read and validate a benchmark document from disk."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise RegressionError(f"{path} is not valid JSON: {exc}") from None
    return validate_bench_document(document, source=path)


def _workload_key(document: dict) -> dict:
    workload = document.get("workload") or {}
    return {
        key: workload.get(key)
        for key in ("target_bp", "n_reads", "read_length", "k", "seed")
    }


def compare_runs(
    current: dict,
    baseline: dict,
    latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
    probe_threshold: float = DEFAULT_PROBE_THRESHOLD,
    ratio_threshold: Optional[float] = None,
    ratio_methods: Tuple[str, str] = RATIO_METHODS,
) -> List[Regression]:
    """Every metric in ``current`` that regressed past its threshold.

    Only methods present in *both* documents are compared (dropping a
    method from the run is surfaced as a :class:`RegressionError`, not
    silently passed).  Improvements never fail the gate.

    ``ratio_threshold`` additionally gates the *relative* latency of
    ``ratio_methods[0]`` over ``ratio_methods[1]`` (default: Algorithm A
    over the S-tree baseline — the paper's headline comparison) against
    the same ratio in the baseline document.  Both methods run on the
    same machine in the same process, so runner speed divides out: the
    ratio check stays meaningful at thresholds where the absolute
    wall-clock gate would flap on shared-runner noise.  Skipped when
    either method is absent from either document.
    """
    validate_bench_document(current, "current run")
    validate_bench_document(baseline, "baseline")
    if _workload_key(current) != _workload_key(baseline):
        raise RegressionError(
            "workload mismatch between run and baseline: "
            f"{_workload_key(current)} vs {_workload_key(baseline)} "
            "(regenerate the baseline or fix the run parameters)"
        )
    missing = set(baseline["methods"]) - set(current["methods"])
    if missing:
        raise RegressionError(
            f"current run is missing baseline method(s): {sorted(missing)}"
        )
    findings: List[Regression] = []
    for method in sorted(baseline["methods"]):
        base_row = baseline["methods"][method]
        cur_row = current["methods"][method]
        base_ms = float(base_row.get("avg_ms", 0.0))
        cur_ms = float(cur_row.get("avg_ms", 0.0))
        if (
            cur_ms > base_ms * (1 + latency_threshold)
            and cur_ms - base_ms > LATENCY_FLOOR_MS
        ):
            findings.append(
                Regression(method, "avg_ms", base_ms, cur_ms, latency_threshold)
            )
        base_stats = base_row.get("stats") or {}
        cur_stats = cur_row.get("stats") or {}
        for counter in PROBE_COUNTERS:
            base_value = float(base_stats.get(counter, 0))
            cur_value = float(cur_stats.get(counter, 0))
            if base_value and cur_value > base_value * (1 + probe_threshold):
                findings.append(
                    Regression(
                        method, f"stats.{counter}", base_value, cur_value, probe_threshold
                    )
                )
    if ratio_threshold is not None:
        numerator, denominator = ratio_methods
        rows = [current["methods"], baseline["methods"]]
        if all(numerator in r and denominator in r for r in rows):
            cur_ratio = _latency_ratio(current["methods"], numerator, denominator)
            base_ratio = _latency_ratio(baseline["methods"], numerator, denominator)
            if (
                cur_ratio is not None
                and base_ratio is not None
                and cur_ratio > base_ratio * (1 + ratio_threshold)
            ):
                findings.append(
                    Regression(
                        f"{numerator}/{denominator}",
                        "avg_ms_ratio",
                        base_ratio,
                        cur_ratio,
                        ratio_threshold,
                    )
                )
    return findings


def _latency_ratio(methods: dict, numerator: str, denominator: str) -> Optional[float]:
    """avg_ms(numerator) / avg_ms(denominator), or None when undefined."""
    num_ms = float(methods[numerator].get("avg_ms", 0.0))
    den_ms = float(methods[denominator].get("avg_ms", 0.0))
    return num_ms / den_ms if den_ms > 0 else None


def format_report(
    findings: Sequence[Regression], current: dict, baseline: Optional[dict] = None
) -> str:
    """Human-readable gate verdict for CLI/CI logs."""
    lines: List[str] = []
    for method in sorted(current.get("methods", {})):
        row = current["methods"][method]
        probes = (row.get("stats") or {}).get("rank_queries", "-")
        base_note = ""
        if baseline and method in baseline.get("methods", {}):
            base_row = baseline["methods"][method]
            base_note = (
                f"  (baseline avg {base_row.get('avg_ms', 0):.3f}ms, "
                f"probes {(base_row.get('stats') or {}).get('rank_queries', '-')})"
            )
        lines.append(
            f"  {method:<12} avg {row.get('avg_ms', 0):.3f}ms  "
            f"probes {probes}{base_note}"
        )
    if findings:
        lines.append("")
        lines.append(f"REGRESSION GATE FAILED — {len(findings)} finding(s):")
        lines.extend("  " + finding.describe() for finding in findings)
    else:
        lines.append("")
        lines.append("regression gate passed")
    return "\n".join(lines)


def run_ci_workload(
    methods: Sequence[str] = ("A()", "BWT"),
    k: int = 2,
    scale: int = 40_000,
    n_reads: int = 12,
    read_length: int = 60,
    seed: int = 7,
    repeats: int = 1,
) -> dict:
    """The small fixed workload the CI gate runs (seeded, deterministic).

    Returns a :meth:`~repro.bench.suite.MethodSuite.run_json` document
    with the seed recorded in the workload block, so baselines can only
    be compared against byte-identical set-ups.

    ``repeats > 1`` runs the whole suite that many times (a fresh
    :class:`~repro.bench.suite.MethodSuite` per pass, so Algorithm A's
    cross-query memo cannot leak work between passes and probe counters
    stay pass-identical) and reports each method's **median** ``avg_ms``
    / ``total_seconds`` — the noise reduction that lets CI run a tighter
    latency threshold than any single shared-runner measurement could
    hold.  The workload block records ``repeats``; the baseline
    compatibility key does not include it, so existing baselines stay
    comparable.
    """
    from statistics import median

    from .suite import MethodSuite
    from .workloads import catalog_workload

    if repeats < 1:
        raise RegressionError(f"repeats must be >= 1, got {repeats}")
    workload = catalog_workload(
        read_length=read_length, n_reads=n_reads, seed=seed, max_genome=scale
    )
    documents = []
    for _ in range(repeats):
        suite = MethodSuite(workload.genome, methods=tuple(methods))
        documents.append(
            suite.run_json(
                workload.reads, k, seed=seed, name=workload.name, repeats=repeats
            )
        )
    document = documents[0]
    if repeats > 1:
        for method, row in document["methods"].items():
            rows = [doc["methods"][method] for doc in documents]
            row["avg_ms"] = median(float(r.get("avg_ms", 0.0)) for r in rows)
            row["total_seconds"] = median(
                float(r.get("total_seconds", 0.0)) for r in rows
            )
    return document


def write_bench_json(document: dict, path: str) -> None:
    """Pretty-print a benchmark document to ``path`` (trailing newline)."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "BENCH_FORMAT",
    "BENCH_VERSION",
    "DEFAULT_LATENCY_THRESHOLD",
    "DEFAULT_PROBE_THRESHOLD",
    "PROBE_COUNTERS",
    "RATIO_METHODS",
    "Regression",
    "RegressionError",
    "compare_runs",
    "format_report",
    "load_bench_json",
    "run_ci_workload",
    "validate_bench_document",
    "write_bench_json",
]
