"""Alphabet handling.

The paper targets DNA, where the alphabet is ``{a, c, g, t}`` plus the
sentinel ``$`` that terminates every indexed string and sorts before all
other characters (``$ < a < c < g < t``, paper Sec. III-A).  The library is
nevertheless generic: any :class:`Alphabet` over single-character symbols
works with every index and matcher in the package.

An :class:`Alphabet` provides a dense integer code for each symbol (0 is
always the sentinel) which the packed-sequence and rank structures rely on.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .errors import AlphabetError

#: Sentinel character appended to every indexed text.  It must not occur in
#: user data and sorts before every alphabet symbol.
SENTINEL = "$"


class Alphabet:
    """An ordered, immutable alphabet with dense integer codes.

    Parameters
    ----------
    symbols:
        The alphabet's characters *excluding* the sentinel, in sort order.
        Each must be a single character and distinct.

    Examples
    --------
    >>> dna = Alphabet("acgt")
    >>> dna.code("c")
    2
    >>> dna.symbol(2)
    'c'
    >>> dna.size
    5
    """

    __slots__ = ("_symbols", "_codes", "_with_sentinel")

    def __init__(self, symbols: Iterable[str]):
        ordered = tuple(symbols)
        if not ordered:
            raise AlphabetError("alphabet must contain at least one symbol")
        seen = set()
        for ch in ordered:
            if len(ch) != 1:
                raise AlphabetError(f"alphabet symbols must be single characters, got {ch!r}")
            if ch == SENTINEL:
                raise AlphabetError("the sentinel '$' is implicit and may not be listed")
            if ch in seen:
                raise AlphabetError(f"duplicate alphabet symbol {ch!r}")
            seen.add(ch)
        if list(ordered) != sorted(ordered):
            raise AlphabetError("alphabet symbols must be given in sorted order")
        self._symbols = ordered
        self._with_sentinel = (SENTINEL,) + ordered
        self._codes = {ch: i for i, ch in enumerate(self._with_sentinel)}

    # -- introspection ----------------------------------------------------

    @property
    def symbols(self) -> Tuple[str, ...]:
        """The alphabet's symbols, sentinel excluded, in sort order."""
        return self._symbols

    @property
    def symbols_with_sentinel(self) -> Tuple[str, ...]:
        """``($,) + symbols`` — code ``i`` maps to ``symbols_with_sentinel[i]``."""
        return self._with_sentinel

    @property
    def size(self) -> int:
        """Number of distinct codes including the sentinel."""
        return len(self._with_sentinel)

    # -- coding -----------------------------------------------------------

    def code(self, ch: str) -> int:
        """Return the integer code of ``ch`` (sentinel has code 0)."""
        try:
            return self._codes[ch]
        except KeyError:
            raise AlphabetError(f"character {ch!r} is not in alphabet {''.join(self._symbols)!r}") from None

    def symbol(self, code: int) -> str:
        """Return the character for integer ``code``."""
        try:
            return self._with_sentinel[code]
        except IndexError:
            raise AlphabetError(f"code {code} out of range for alphabet of size {self.size}") from None

    def encode(self, text: str) -> Sequence[int]:
        """Encode ``text`` into a list of integer codes (no sentinel added)."""
        codes = self._codes
        try:
            return [codes[ch] for ch in text]
        except KeyError as exc:
            raise AlphabetError(f"character {exc.args[0]!r} is not in alphabet") from None

    def decode(self, codes: Iterable[int]) -> str:
        """Decode integer codes back into a string."""
        table = self._with_sentinel
        return "".join(table[c] for c in codes)

    def validate(self, text: str) -> None:
        """Raise :class:`AlphabetError` if ``text`` has out-of-alphabet chars."""
        codes = self._codes
        for i, ch in enumerate(text):
            if ch not in codes or ch == SENTINEL:
                raise AlphabetError(f"character {ch!r} at position {i} is not in alphabet")

    def contains(self, text: str) -> bool:
        """True when every character of ``text`` is a non-sentinel symbol."""
        allowed = set(self._symbols)
        return all(ch in allowed for ch in text)

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Alphabet) and other._symbols == self._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Alphabet({''.join(self._symbols)!r})"


#: The DNA alphabet used throughout the paper: ``$ < a < c < g < t``.
DNA = Alphabet("acgt")

#: Protein alphabet (20 amino acids), for generality tests.
PROTEIN = Alphabet("ACDEFGHIKLMNPQRSTVWY")


def infer_alphabet(text: str) -> Alphabet:
    """Build the smallest :class:`Alphabet` covering ``text``.

    Useful for ad-hoc experiments on non-DNA data.

    >>> infer_alphabet("mississippi").symbols
    ('i', 'm', 'p', 's')
    """
    distinct = sorted(set(text))
    if SENTINEL in distinct:
        raise AlphabetError("text may not contain the sentinel '$'")
    return Alphabet(distinct)
