"""Versioned zero-copy binary index format (``.fmbin``).

The JSON serialization (:meth:`~repro.bwt.fmindex.FMIndex.dumps`) is a
compatibility path: loading it re-encodes the BWT, rebuilds every rank
checkpoint and re-hydrates the sampled suffix array — O(index) parsing
that dominates wall-clock when a process pool ships one index to every
worker.  This module stores the index the way the paper's space
accounting already thinks about it: flat, packed, aligned buffers that
serialize verbatim from the underlying ``array``/``bytes`` payloads and
deserialize by *wrapping* an ``mmap``/``memoryview`` — no per-section
copies, O(header) work on load.

Layout (all integers little-endian; see ``docs/INDEX_FORMAT.md``)::

    0   8s   magic                b"REPROIDX"
    8   u32  format version       1
    12  u32  endianness stamp     0x01020304 (readers reject other values)
    16  u32  header size          32 + 32 * n_sections
    20  u32  n_sections
    24  u64  total file size
    32  section table, one 32-byte entry per section:
          4s tag, 4x pad, u64 offset, u64 length, u32 crc32, 4x pad
    ..  section payloads, each 8-byte aligned, zero-padded between

Sections (every one required in both format versions):

=======  ==================================================================
``META``  JSON: alphabet, lengths, sample rates, rank totals
``BWTW``  the 2-bit-packed BWT, 64-bit words (:class:`PackedSequence`)
``BWTC``  one-byte-per-code BWT shadow (the C-speed scan path)
``RANK``  int32 row-major rankall checkpoint table
``SARO``  sampled suffix-array rows, ascending
``SAPO``  sampled suffix-array positions, aligned with ``SARO``
=======  ==================================================================

**Format version 2** widens ``SARO``/``SAPO`` from uint32 to uint64
behind the ``META.sa_width`` flag (4 or 8 bytes per entry), lifting the
4 Gbp target cap.  Writers emit version 1 (byte-identical to the
original format) whenever every suffix-array value fits uint32 and only
stamp version 2 when u64 sections are actually needed — so v1 readers
keep loading every file a v1 writer could have produced, and a v1 file
claiming ``sa_width`` other than 4 is rejected as corrupt.

This module also defines the ``REPROSHD`` shard-manifest container
(:func:`dump_manifest` / :func:`parse_manifest`): a small header plus a
JSON body naming per-shard ``REPROIDX`` files with their global
offsets.  The sharded-index layer (:mod:`repro.shard`) builds on it;
see ``docs/SHARDING.md``.

Corruption — bad magic, foreign endianness, version skew, truncated
files, section-table overruns, section-length mismatches against
``META``, checksum drift — raises
:class:`~repro.errors.IndexCorruptionError` naming the offending field;
a corrupt file must never produce a silently wrong answer.  A value the
*requested* format cannot hold (an SA entry past uint32 in a forced v1
write) raises :class:`~repro.errors.IndexFormatError` naming the
section and the v2 flag.  CRC32s are stored per section but verified
only on request (``verify_checksums=True``) because checksumming is
O(file) and would defeat the zero-copy load.
"""

from __future__ import annotations

import json
import mmap as _mmap
import struct
import sys
import zlib
from array import array
from bisect import bisect_left
from typing import Dict, Iterator, Optional, Tuple

from ..alphabet import Alphabet
from ..errors import IndexCorruptionError, IndexFormatError, SerializationError
from ..obs import OBS
from ..sequence import PackedSequence, bits_needed
from ..bwt.rankall import RankAll

#: First 8 bytes of every binary index file.
MAGIC = b"REPROIDX"

#: First 8 bytes of every shard-manifest file.
MANIFEST_MAGIC = b"REPROSHD"

#: Highest index format version this build reads and writes.  Writers
#: emit the *lowest* version that can represent the index: 1 while every
#: SA value fits uint32, 2 (u64 ``SARO``/``SAPO``) beyond that.
FORMAT_VERSION = 2

#: Shard-manifest format version written by this build.
MANIFEST_VERSION = 1

#: Endianness stamp: reads back as 0x01020304 only on little-endian hosts.
ENDIAN_STAMP = 0x01020304

_HEADER = struct.Struct("<8sIIIIQ")
_SECTION = struct.Struct("<4s4xQQI4x")
_ALIGN = 8

#: Section tags of format version 1, in file order.
SECTION_TAGS = (b"META", b"BWTW", b"BWTC", b"RANK", b"SARO", b"SAPO")


def _pad(n: int) -> int:
    """``n`` rounded up to the section alignment."""
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class SampledSAView:
    """Read-only dict-like over the ``SARO``/``SAPO`` sections.

    Presents the mapping interface :class:`~repro.bwt.fmindex.FMIndex`
    expects of its sampled suffix array (``row in sa``, ``sa[row]``,
    ``len``, ``items``) on top of two uint32 memoryviews — O(header)
    to construct, O(log n) per probe via binary search on the sorted
    row column.
    """

    __slots__ = ("_rows", "_positions")

    def __init__(self, rows, positions):
        self._rows = rows
        self._positions = positions

    def __len__(self) -> int:
        return len(self._rows)

    def _index_of(self, row: int) -> int:
        i = bisect_left(self._rows, row)
        if i < len(self._rows) and self._rows[i] == row:
            return i
        return -1

    def __contains__(self, row: int) -> bool:
        return self._index_of(row) >= 0

    def __getitem__(self, row: int) -> int:
        i = self._index_of(row)
        if i < 0:
            raise KeyError(row)
        return self._positions[i]

    def get(self, row: int, default=None):
        i = self._index_of(row)
        return self._positions[i] if i >= 0 else default

    def items(self) -> Iterator[Tuple[int, int]]:
        return zip(self._rows, self._positions)

    def keys(self) -> Iterator[int]:
        return iter(self._rows)

    def __iter__(self) -> Iterator[int]:
        return iter(self._rows)

    def __eq__(self, other) -> bool:
        if isinstance(other, (SampledSAView, dict)):
            return dict(self.items()) == dict(
                other.items() if not isinstance(other, dict) else other.items()
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampledSAView({len(self)} entries)"


# -- writing ---------------------------------------------------------------------


def _require_little_endian() -> None:
    if sys.byteorder != "little":  # pragma: no cover - exotic hosts
        raise SerializationError(
            "the binary index format is little-endian; this host is "
            f"{sys.byteorder}-endian — use the JSON serialization instead"
        )


def _as_byte_view(buffer) -> memoryview:
    """A flat unsigned-byte view over any buffer-protocol object."""
    view = memoryview(buffer)
    if view.format != "B":
        view = view.cast("B")
    return view


def dump_fmindex(fm, sa_width: Optional[int] = None) -> bytes:
    """Serialize ``fm`` to one binary blob, straight from its buffers.

    ``sa_width`` selects the ``SARO``/``SAPO`` entry width in bytes: 4
    (uint32, format version 1) or 8 (uint64, format version 2).  The
    default picks the narrowest width that holds every suffix-array
    value — version 1 output stays byte-identical to pre-v2 builds.
    Forcing ``sa_width=4`` on a target whose SA values exceed uint32
    raises :class:`~repro.errors.IndexFormatError` (never a silent
    truncation).
    """
    _require_little_endian()
    if getattr(fm, "_rank_backend", "rankall") != "rankall":
        raise SerializationError(
            "the binary index format stores the rankall backend only "
            f"(index uses {fm._rank_backend!r}); use the JSON serialization"
        )
    rank = fm._rank
    packed = rank.packed
    checkpoints = rank.checkpoints
    if getattr(checkpoints, "itemsize", 4) != 4:  # pragma: no cover - exotic ABIs
        checkpoints = array("i", checkpoints)
    # SA rows run up to bwt_len - 1 == text_len and positions up to
    # text_len - 1, so text_len is the exact overflow criterion.
    needs_u64 = fm.text_length >= 2**32
    if sa_width is None:
        sa_width = 8 if needs_u64 else 4
    if sa_width not in (4, 8):
        raise SerializationError(f"sa_width must be 4 or 8, got {sa_width!r}")
    if sa_width == 4 and needs_u64:
        raise IndexFormatError(
            "sections SARO/SAPO: suffix-array values for a target of "
            f"{fm.text_length} bp exceed uint32; write format v2 instead "
            "(sa_width=8, the META.sa_width flag)"
        )
    sampled = sorted(fm._sampled_sa.items())
    typecode = "I" if sa_width == 4 else "Q"
    rows = array(typecode, (row for row, _ in sampled))
    positions = array(typecode, (pos for _, pos in sampled))
    version = 1 if sa_width == 4 else 2
    meta = {
        "alphabet": "".join(fm.alphabet.symbols),
        "text_len": fm.text_length,
        "bwt_len": len(rank),
        "packed_width": packed.width,
        "occ_sample_rate": rank.sample_rate,
        "sa_sample_rate": fm.sa_sample_rate,
        "rank_backend": "rankall",
        "totals": rank.totals_list,
        "n_sampled": len(sampled),
    }
    if sa_width != 4:
        # The v2 flag.  Omitted (not written as 4) in v1 files so that
        # version-1 output is byte-identical to pre-v2 builds.
        meta["sa_width"] = sa_width
    payloads = {
        b"META": json.dumps(meta, sort_keys=True).encode("utf-8"),
        b"BWTW": _as_byte_view(packed.raw_words),
        b"BWTC": _as_byte_view(rank.codes_buffer),
        b"RANK": _as_byte_view(checkpoints),
        b"SARO": _as_byte_view(rows),
        b"SAPO": _as_byte_view(positions),
    }
    header_size = _HEADER.size + _SECTION.size * len(SECTION_TAGS)
    offset = _pad(header_size)
    entries = []
    for tag in SECTION_TAGS:
        payload = payloads[tag]
        entries.append((tag, offset, len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        offset = _pad(offset + len(payload))
    total_size = offset
    blob = bytearray(total_size)
    _HEADER.pack_into(
        blob, 0, MAGIC, version, ENDIAN_STAMP, header_size,
        len(SECTION_TAGS), total_size,
    )
    for i, (tag, off, length, crc) in enumerate(entries):
        _SECTION.pack_into(blob, _HEADER.size + i * _SECTION.size, tag, off, length, crc)
        blob[off:off + length] = payloads[tag]
    return bytes(blob)


def save_fmindex(fm, path, sa_width: Optional[int] = None) -> int:
    """Write :func:`dump_fmindex` output to ``path``; returns bytes written."""
    blob = dump_fmindex(fm, sa_width=sa_width)
    with open(path, "wb") as handle:
        handle.write(blob)
    if OBS.enabled:
        OBS.metrics.counter("index.saves").inc()
        OBS.metrics.gauge("index.file_nbytes").set(len(blob))
    return len(blob)


# -- reading ---------------------------------------------------------------------


def _corrupt(source: str, field: str, detail: str) -> IndexCorruptionError:
    return IndexCorruptionError(f"{source}: {field}: {detail}")


def parse_sections(buffer, source: str = "<buffer>") -> Tuple[dict, Dict[bytes, memoryview]]:
    """Validate the container and return ``(header_info, tag -> section view)``.

    Accepts any buffer-protocol object (``mmap``, ``bytes``, a shared
    memory block).  The buffer may extend past the recorded file size —
    shared-memory segments round up to page granularity — but must not
    fall short of it.  Every returned view aliases ``buffer``.
    """
    view = _as_byte_view(buffer)
    if len(view) < _HEADER.size:
        raise _corrupt(source, "header", f"file is {len(view)} bytes, header needs {_HEADER.size}")
    magic, version, endian, header_size, n_sections, file_size = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise _corrupt(source, "magic", f"expected {MAGIC!r}, found {bytes(magic)!r}")
    if endian != ENDIAN_STAMP:
        raise _corrupt(
            source, "endianness stamp",
            f"expected {ENDIAN_STAMP:#010x}, found {endian:#010x} (foreign byte order?)",
        )
    if not 1 <= version <= FORMAT_VERSION:
        raise _corrupt(
            source, "version",
            f"found {version}, this build reads versions 1..{FORMAT_VERSION}",
        )
    expected_header = _HEADER.size + _SECTION.size * n_sections
    if header_size != expected_header:
        raise _corrupt(
            source, "header size",
            f"header claims {header_size} bytes for {n_sections} section(s), "
            f"expected {expected_header}",
        )
    if file_size < header_size:
        raise _corrupt(source, "file size", f"{file_size} is smaller than the header ({header_size})")
    if len(view) < file_size:
        raise _corrupt(
            source, "file size",
            f"header records {file_size} bytes but only {len(view)} are present (truncated?)",
        )
    sections: Dict[bytes, memoryview] = {}
    crcs: Dict[bytes, int] = {}
    for i in range(n_sections):
        tag, offset, length, crc = _SECTION.unpack_from(view, _HEADER.size + i * _SECTION.size)
        if offset < header_size or offset + length > file_size:
            raise _corrupt(
                source, f"section {tag.decode('ascii', 'replace')}",
                f"range [{offset}, {offset + length}) falls outside the file "
                f"(header size {header_size}, file size {file_size})",
            )
        sections[tag] = view[offset:offset + length]
        crcs[tag] = crc
    for tag in SECTION_TAGS:
        if tag not in sections:
            raise _corrupt(source, f"section {tag.decode('ascii')}", "missing from section table")
    info = {
        "version": version,
        "header_size": header_size,
        "n_sections": n_sections,
        "file_size": file_size,
        "crcs": crcs,
    }
    return info, sections


def verify_section_checksums(info: dict, sections: Dict[bytes, memoryview],
                             source: str = "<buffer>") -> None:
    """Recompute every section CRC32 against the table (O(file) work)."""
    for tag, section in sections.items():
        found = zlib.crc32(section) & 0xFFFFFFFF
        expected = info["crcs"].get(tag, 0)
        if found != expected:
            raise _corrupt(
                source, f"section {tag.decode('ascii', 'replace')} checksum",
                f"stored {expected:#010x}, computed {found:#010x}",
            )


def _meta_int(meta: dict, field: str, source: str, minimum: int = 0) -> int:
    value = meta.get(field)
    if not isinstance(value, int) or value < minimum:
        raise _corrupt(source, f"META.{field}", f"expected integer >= {minimum}, found {value!r}")
    return value


def load_fmindex(buffer, verify_checksums: bool = False, source: str = "<buffer>"):
    """Rebuild an :class:`~repro.bwt.fmindex.FMIndex` around ``buffer``.

    O(header) + O(alphabet): sections are wrapped in memoryviews, never
    copied, so the returned index keeps ``buffer`` alive and shares its
    storage (with every other process that mapped the same file or
    shared-memory block).
    """
    from ..bwt.fmindex import FMIndex

    _require_little_endian()
    with OBS.span("binfmt.load", source=source, verify=verify_checksums):
        info, sections = parse_sections(buffer, source=source)
        if verify_checksums:
            verify_section_checksums(info, sections, source=source)
        try:
            meta = json.loads(bytes(sections[b"META"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _corrupt(source, "section META", f"not valid JSON ({exc})") from None
        if not isinstance(meta, dict):
            raise _corrupt(source, "section META", "top level is not an object")
        symbols = meta.get("alphabet")
        if not isinstance(symbols, str) or not symbols:
            raise _corrupt(source, "META.alphabet", f"expected non-empty string, found {symbols!r}")
        try:
            alphabet = Alphabet(symbols)
        except Exception as exc:
            raise _corrupt(source, "META.alphabet", str(exc)) from None
        if meta.get("rank_backend", "rankall") != "rankall":
            raise _corrupt(
                source, "META.rank_backend",
                f"expected 'rankall', found {meta.get('rank_backend')!r}",
            )
        text_len = _meta_int(meta, "text_len", source)
        bwt_len = _meta_int(meta, "bwt_len", source, minimum=1)
        if bwt_len != text_len + 1:
            raise _corrupt(
                source, "META.bwt_len",
                f"{bwt_len} does not equal text_len + 1 ({text_len + 1})",
            )
        width = _meta_int(meta, "packed_width", source, minimum=1)
        if width != bits_needed(alphabet.size):
            raise _corrupt(
                source, "META.packed_width",
                f"{width} does not match alphabet of {alphabet.size} codes "
                f"(expected {bits_needed(alphabet.size)})",
            )
        occ_rate = _meta_int(meta, "occ_sample_rate", source, minimum=1)
        sa_rate = _meta_int(meta, "sa_sample_rate", source, minimum=1)
        n_sampled = _meta_int(meta, "n_sampled", source)
        sa_width = meta.get("sa_width", 4)
        if sa_width not in (4, 8):
            raise _corrupt(
                source, "META.sa_width",
                f"expected 4 (uint32) or 8 (uint64), found {sa_width!r}",
            )
        if info["version"] < 2 and sa_width != 4:
            raise _corrupt(
                source, "META.sa_width",
                f"format v1 stores uint32 SA sections only; the sa_width={sa_width} "
                "flag requires format version 2",
            )
        totals = meta.get("totals")
        if (
            not isinstance(totals, list)
            or len(totals) != alphabet.size
            or not all(isinstance(t, int) and t >= 0 for t in totals)
        ):
            raise _corrupt(
                source, "META.totals",
                f"expected {alphabet.size} non-negative integers, found {totals!r}",
            )
        if sum(totals) != bwt_len:
            raise _corrupt(
                source, "META.totals",
                f"totals sum to {sum(totals)}, BWT length is {bwt_len}",
            )

        def _section_exact(tag: bytes, expected: int, what: str) -> memoryview:
            section = sections[tag]
            if len(section) != expected:
                raise _corrupt(
                    source, f"section {tag.decode('ascii')} length",
                    f"{what} needs {expected} bytes, section holds {len(section)}",
                )
            return section

        n_words = (bwt_len * width + 63) // 64
        n_blocks = bwt_len // occ_rate + 1
        words = _section_exact(b"BWTW", n_words * 8, f"{bwt_len} x {width}-bit BWT").cast("Q")
        codes = _section_exact(b"BWTC", bwt_len, "BWT code shadow")
        flat = _section_exact(
            b"RANK", n_blocks * alphabet.size * 4,
            f"{n_blocks} checkpoint rows x {alphabet.size} codes",
        ).cast("i")
        sa_code = "I" if sa_width == 4 else "Q"
        rows = _section_exact(
            b"SARO", n_sampled * sa_width, f"{n_sampled} sampled SA rows"
        ).cast(sa_code)
        positions = _section_exact(
            b"SAPO", n_sampled * sa_width, f"{n_sampled} sampled SA positions"
        ).cast(sa_code)

        packed = PackedSequence.from_words(width, bwt_len, words)
        rank = RankAll.from_parts(alphabet, occ_rate, bwt_len, packed, codes, flat, totals)
        fm = FMIndex._from_parts(
            alphabet, text_len, sa_rate, rank, SampledSAView(rows, positions)
        )
    if OBS.enabled:
        OBS.metrics.counter("index.loads").inc()
        OBS.metrics.gauge("index.nbytes").set(fm.nbytes())
    return fm


def open_fmindex(path, mmap: bool = True, verify_checksums: bool = False):
    """Load a binary index file, memory-mapped by default.

    With ``mmap=True`` the OS page cache backs the index: load cost is
    O(header) and every process mapping the same file shares one copy of
    the payload.  The mapping (and file handle) live as long as the
    returned index's buffers do.
    """
    path = str(path)
    if mmap:
        with open(path, "rb") as handle:
            try:
                mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file
                raise _corrupt(path, "header", f"cannot mmap ({exc})") from None
        return load_fmindex(mapped, verify_checksums=verify_checksums, source=path)
    with open(path, "rb") as handle:
        blob = handle.read()
    return load_fmindex(blob, verify_checksums=verify_checksums, source=path)


def sniff(path) -> bool:
    """True when ``path`` starts with the binary index magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


# -- shard manifests (REPROSHD) --------------------------------------------------

_MANIFEST_HEADER = struct.Struct("<8sII")

#: Top-level manifest fields every reader requires, with the minimum
#: acceptable value for the integer ones.
_MANIFEST_INT_FIELDS = (("total_length", 1), ("overlap", 0))

#: Per-shard integer fields, with their minimum acceptable value.
_SHARD_INT_FIELDS = (("start", 0), ("length", 1), ("core_start", 0), ("core_end", 1))


def dump_manifest(payload: dict) -> bytes:
    """Serialize a shard-manifest payload: magic + version + JSON body.

    The payload is produced by :meth:`repro.shard.ShardManifest.to_payload`;
    this function only owns the container framing.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _MANIFEST_HEADER.pack(MANIFEST_MAGIC, MANIFEST_VERSION, len(body)) + body


def parse_manifest(buffer, source: str = "<buffer>") -> dict:
    """Validate a ``REPROSHD`` container and return its JSON payload.

    Structural validation only (framing, JSON-ness, required fields and
    their types); the semantic checks — cores partitioning the target,
    shard files existing and matching their recorded offsets — live in
    :mod:`repro.shard.manifest`, which also raises
    :class:`~repro.errors.IndexCorruptionError` naming the field.
    """
    view = _as_byte_view(buffer)
    if len(view) < _MANIFEST_HEADER.size:
        raise _corrupt(
            source, "manifest header",
            f"file is {len(view)} bytes, header needs {_MANIFEST_HEADER.size}",
        )
    magic, version, body_len = _MANIFEST_HEADER.unpack_from(view, 0)
    if magic != MANIFEST_MAGIC:
        raise _corrupt(
            source, "manifest magic",
            f"expected {MANIFEST_MAGIC!r}, found {bytes(magic)!r}",
        )
    if not 1 <= version <= MANIFEST_VERSION:
        raise _corrupt(
            source, "manifest version",
            f"found {version}, this build reads versions 1..{MANIFEST_VERSION}",
        )
    if len(view) < _MANIFEST_HEADER.size + body_len:
        raise _corrupt(
            source, "manifest size",
            f"header records a {body_len}-byte body but only "
            f"{len(view) - _MANIFEST_HEADER.size} bytes follow (truncated?)",
        )
    try:
        payload = json.loads(
            bytes(view[_MANIFEST_HEADER.size:_MANIFEST_HEADER.size + body_len]).decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _corrupt(source, "manifest body", f"not valid JSON ({exc})") from None
    if not isinstance(payload, dict):
        raise _corrupt(source, "manifest body", "top level is not an object")
    for field, minimum in _MANIFEST_INT_FIELDS:
        value = payload.get(field)
        if not isinstance(value, int) or value < minimum:
            raise _corrupt(
                source, f"manifest.{field}",
                f"expected integer >= {minimum}, found {value!r}",
            )
    alphabet = payload.get("alphabet")
    if not isinstance(alphabet, str) or not alphabet:
        raise _corrupt(
            source, "manifest.alphabet",
            f"expected non-empty string, found {alphabet!r}",
        )
    shards = payload.get("shards")
    if not isinstance(shards, list) or not shards:
        raise _corrupt(
            source, "manifest.shards",
            f"expected non-empty list, found {type(shards).__name__}",
        )
    for i, shard in enumerate(shards):
        if not isinstance(shard, dict):
            raise _corrupt(source, f"manifest.shards[{i}]", "entry is not an object")
        name = shard.get("file")
        if not isinstance(name, str) or not name:
            raise _corrupt(
                source, f"manifest.shards[{i}].file",
                f"expected non-empty string, found {name!r}",
            )
        for field, minimum in _SHARD_INT_FIELDS:
            value = shard.get(field)
            if not isinstance(value, int) or value < minimum:
                raise _corrupt(
                    source, f"manifest.shards[{i}].{field}",
                    f"expected integer >= {minimum}, found {value!r}",
                )
    return payload


def save_manifest(payload: dict, path) -> int:
    """Write :func:`dump_manifest` output to ``path``; returns bytes written."""
    blob = dump_manifest(payload)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_manifest(path) -> dict:
    """Read and structurally validate a manifest file."""
    path = str(path)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise _corrupt(path, "manifest header", f"cannot read ({exc})") from None
    return parse_manifest(blob, source=path)


def sniff_manifest(path) -> bool:
    """True when ``path`` starts with the shard-manifest magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MANIFEST_MAGIC)) == MANIFEST_MAGIC
    except OSError:
        return False


__all__ = [
    "MAGIC",
    "MANIFEST_MAGIC",
    "FORMAT_VERSION",
    "MANIFEST_VERSION",
    "ENDIAN_STAMP",
    "SECTION_TAGS",
    "SampledSAView",
    "dump_fmindex",
    "save_fmindex",
    "load_fmindex",
    "open_fmindex",
    "parse_sections",
    "verify_section_checksums",
    "sniff",
    "dump_manifest",
    "parse_manifest",
    "save_manifest",
    "load_manifest",
    "sniff_manifest",
]
