"""Sequence I/O: FASTA/FASTQ parsing and SAM-like mapping output.

Minimal, dependency-free readers for the two formats the paper's
evaluation data comes in (genomes as FASTA, wgsim reads as FASTQ), plus a
writer for mapping results in a SAM-flavoured tab-separated layout so the
CLI's output can be inspected with standard tooling.

Only the fields this library produces are emitted; this is not a
full SAM implementation (no CIGAR beyond ``<m>M``, no quality recalc).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from ..core.matcher import ReadHit
from ..errors import PatternError


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record (name, sequence, quality string)."""

    name: str
    sequence: str
    quality: str


def parse_fasta(text: str) -> Dict[str, str]:
    """Parse FASTA content into an ordered name → sequence mapping.

    >>> parse_fasta(">a desc\\nACGT\\nacg\\n>b\\ntt\\n")
    {'a': 'acgtacg', 'b': 'tt'}
    """
    records: Dict[str, str] = {}
    name: Optional[str] = None
    parts: List[str] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                records[name] = "".join(parts)
            name = line[1:].split()[0] if len(line) > 1 else f"record{len(records)}"
            parts = []
        elif name is not None:
            parts.append(line.lower())
        else:
            raise PatternError("FASTA content must start with a '>' header")
    if name is not None:
        records[name] = "".join(parts)
    if not records:
        raise PatternError("no FASTA records found")
    return records


def parse_fastq(text: str) -> List[FastqRecord]:
    """Parse FASTQ content (strict 4-line records).

    >>> parse_fastq("@r1\\nACGT\\n+\\nIIII\\n")[0].sequence
    'acgt'
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) % 4 != 0:
        raise PatternError("FASTQ content must be 4 lines per record")
    out: List[FastqRecord] = []
    for i in range(0, len(lines), 4):
        header, sequence, plus, quality = lines[i:i + 4]
        if not header.startswith("@"):
            raise PatternError(f"bad FASTQ header at line {i + 1}: {header!r}")
        if not plus.startswith("+"):
            raise PatternError(f"bad FASTQ separator at line {i + 3}")
        if len(quality) != len(sequence):
            raise PatternError(f"quality/sequence length mismatch for {header!r}")
        out.append(FastqRecord(header[1:].split()[0], sequence.lower(), quality))
    return out


# -- SAM-like output ----------------------------------------------------------------

#: SAM flags used by the writer.
FLAG_UNMAPPED = 4
FLAG_REVERSE = 16
FLAG_SECONDARY = 256


def sam_header(references: Iterable[Tuple[str, int]]) -> str:
    """``@HD``/``@SQ`` header lines for the given (name, length) pairs."""
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for name, length in references:
        lines.append(f"@SQ\tSN:{name}\tLN:{length}")
    lines.append("@PG\tID:repro\tPN:repro-cli")
    return "\n".join(lines)


def sam_line(
    read_name: str,
    sequence: str,
    reference: str,
    hit: Optional[ReadHit],
    secondary: bool = False,
) -> str:
    """One SAM alignment line for ``hit`` (or an unmapped record)."""
    if hit is None:
        return "\t".join(
            [read_name, str(FLAG_UNMAPPED), "*", "0", "0", "*", "*", "0", "0",
             sequence, "*"]
        )
    flag = 0
    if hit.strand == "-":
        flag |= FLAG_REVERSE
    if secondary:
        flag |= FLAG_SECONDARY
    occ = hit.occurrence
    cigar = f"{len(sequence)}M"
    mapq = max(0, 60 - 10 * occ.n_mismatches)
    tags = f"NM:i:{occ.n_mismatches}"
    return "\t".join(
        [
            read_name,
            str(flag),
            reference,
            str(occ.start + 1),  # SAM is 1-based
            str(mapq),
            cigar,
            "*",
            "0",
            "0",
            sequence,
            "*",
            tags,
        ]
    )


def write_sam(
    handle: TextIO,
    references: Iterable[Tuple[str, int]],
    alignments: Iterable[Tuple[str, str, str, List[ReadHit]]],
) -> int:
    """Write a full SAM document.

    ``alignments`` yields ``(read_name, sequence, reference, hits)``; the
    first hit is primary, the rest secondary, an empty list is an
    unmapped record.  Returns the number of alignment lines written.
    """
    handle.write(sam_header(references) + "\n")
    written = 0
    for read_name, sequence, reference, hits in alignments:
        if not hits:
            handle.write(sam_line(read_name, sequence, reference, None) + "\n")
            written += 1
            continue
        for i, hit in enumerate(hits):
            handle.write(
                sam_line(read_name, sequence, reference, hit, secondary=i > 0) + "\n"
            )
            written += 1
    return written
