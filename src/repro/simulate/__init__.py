"""Data substrate: synthetic genomes and simulated reads.

The paper evaluates on five reference genomes (Table 1) with reads
simulated by wgsim (SAMtools) [37].  Neither the genomes nor wgsim are
available here, so this subpackage provides faithful synthetic stand-ins:

* :mod:`repro.simulate.genome` — genomes with controllable GC bias,
  interspersed repeat families and tandem duplications, so the BWT search
  tree branches the way real DNA makes it branch;
* :mod:`repro.simulate.reads` — a read sampler implementing wgsim's
  default single-end model (uniform start, strand flip, polymorphism and
  sequencing-error rates);
* :mod:`repro.simulate.catalog` — the Table 1 genome roster at 1/1000
  scale, preserving the relative sizes that drive the paper's cross-
  genome comparisons.
"""

from .genome import GenomeConfig, generate_genome, reverse_complement
from .reads import ReadConfig, SimulatedRead, simulate_reads
from .pairs import PairedReadConfig, ReadPair, simulate_read_pairs
from .catalog import GENOME_CATALOG, GenomeSpec, build_catalog_genome

__all__ = [
    "GenomeConfig",
    "generate_genome",
    "reverse_complement",
    "ReadConfig",
    "SimulatedRead",
    "simulate_reads",
    "PairedReadConfig",
    "ReadPair",
    "simulate_read_pairs",
    "GENOME_CATALOG",
    "GenomeSpec",
    "build_catalog_genome",
]
