"""wgsim-style read simulation.

The paper draws "simulating reads ... with varying lengths and amounts
... using the wgsim program included in the SAMtools package with a
default model for single reads simulation" (Sec. V).  wgsim's default
single-end model, reproduced here:

* read start positions uniform over the genome;
* each read taken from the forward or reverse-complement strand with
  probability ½;
* polymorphism: each base mutates with rate ``mutation_rate`` (wgsim
  default 0.001), all point substitutions here (no indels — the paper's
  problem is Hamming distance);
* sequencing error: each output base is replaced by a uniform random
  different base with rate ``error_rate`` (wgsim default base error 0.02).

Each :class:`SimulatedRead` keeps its ground-truth origin so mapping
experiments can score sensitivity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .genome import reverse_complement

_BASES = "acgt"


@dataclass
class ReadConfig:
    """Parameters of a read-simulation run (wgsim defaults).

    Attributes mirror ``wgsim -N n_reads -1 length -e error_rate
    -r mutation_rate``.
    """

    n_reads: int
    length: int
    error_rate: float = 0.02
    mutation_rate: float = 0.001
    both_strands: bool = True
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range fields."""
        if self.n_reads < 0 or self.length <= 0:
            raise ValueError("n_reads must be >= 0 and length positive")
        for name in ("error_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class SimulatedRead:
    """One simulated read plus its ground truth.

    ``position`` is the 0-based start of the originating window on the
    *forward* strand; ``reverse_strand`` tells whether the read sequence
    is the reverse complement of that window; ``n_mutations`` counts the
    substitutions introduced (polymorphism + sequencing error combined).
    """

    sequence: str
    position: int
    reverse_strand: bool
    n_mutations: int

    def forward_sequence(self) -> str:
        """The read expressed on the forward strand (mapping target)."""
        return reverse_complement(self.sequence) if self.reverse_strand else self.sequence


def simulate_reads(genome: str, config: ReadConfig) -> List[SimulatedRead]:
    """Sample reads from ``genome`` under wgsim's default single-end model.

    >>> reads = simulate_reads("acgt" * 50, ReadConfig(n_reads=3, length=10, seed=1))
    >>> len(reads), all(len(r.sequence) == 10 for r in reads)
    (3, True)
    """
    config.validate()
    if config.length > len(genome):
        raise ValueError(f"read length {config.length} exceeds genome length {len(genome)}")
    rng = random.Random(config.seed)
    reads: List[SimulatedRead] = []
    for _ in range(config.n_reads):
        start = rng.randrange(0, len(genome) - config.length + 1)
        window = list(genome[start:start + config.length])
        mutations = 0
        for i, ch in enumerate(window):
            if rng.random() < config.mutation_rate:
                window[i] = rng.choice([b for b in _BASES if b != ch])
                mutations += 1
            elif rng.random() < config.error_rate:
                window[i] = rng.choice([b for b in _BASES if b != window[i]])
                mutations += 1
        sequence = "".join(window)
        reverse = config.both_strands and rng.random() < 0.5
        if reverse:
            sequence = reverse_complement(sequence)
        reads.append(
            SimulatedRead(
                sequence=sequence,
                position=start,
                reverse_strand=reverse,
                n_mutations=mutations,
            )
        )
    return reads
