"""Paired-end read simulation (wgsim's full mode).

The paper simulates single-end reads ("a default model for single reads
simulation"), but wgsim's native output — and every modern sequencing
run — is *paired*: two reads from opposite ends of one DNA fragment,
facing each other.  This module adds that model on top of
:mod:`repro.simulate.reads`:

* fragment ("insert") lengths drawn as round(Normal(insert_size, std)),
  clamped to hold both mates;
* mate 1 from the fragment's left end on the forward strand, mate 2 the
  reverse complement of the fragment's right end (FR orientation);
* the same substitution model (polymorphism + sequencing error) per mate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..dna import reverse_complement

_BASES = "acgt"


@dataclass
class PairedReadConfig:
    """Parameters of a paired-end simulation run (wgsim naming).

    ``insert_size`` is the outer fragment length (wgsim ``-d``, default
    500), ``insert_std`` its standard deviation (``-s``, default 50).
    """

    n_pairs: int
    read_length: int
    insert_size: int = 500
    insert_std: int = 50
    error_rate: float = 0.02
    mutation_rate: float = 0.001
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range fields."""
        if self.n_pairs < 0 or self.read_length <= 0:
            raise ValueError("n_pairs must be >= 0 and read_length positive")
        if self.insert_size < self.read_length:
            raise ValueError("insert_size must be at least read_length")
        if self.insert_std < 0:
            raise ValueError("insert_std must be non-negative")
        for name in ("error_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class ReadPair:
    """One simulated fragment's two mates plus ground truth.

    ``read1`` is forward-strand sequence at ``position1``;
    ``read2`` is the reverse complement of the window at ``position2``
    (both positions are forward-strand starts).  ``fragment_length`` is
    the outer distance (end of mate 2 minus start of mate 1).
    """

    read1: str
    read2: str
    position1: int
    position2: int
    fragment_length: int
    n_mutations1: int
    n_mutations2: int


def _mutated_window(genome: str, start: int, length: int, config: PairedReadConfig,
                    rng: random.Random) -> tuple:
    window = list(genome[start:start + length])
    mutations = 0
    for i, ch in enumerate(window):
        if rng.random() < config.mutation_rate:
            window[i] = rng.choice([b for b in _BASES if b != ch])
            mutations += 1
        elif rng.random() < config.error_rate:
            window[i] = rng.choice([b for b in _BASES if b != window[i]])
            mutations += 1
    return "".join(window), mutations


def simulate_read_pairs(genome: str, config: PairedReadConfig) -> List[ReadPair]:
    """Sample paired-end reads from ``genome``.

    >>> pairs = simulate_read_pairs("acgt" * 300, PairedReadConfig(
    ...     n_pairs=2, read_length=30, insert_size=100, insert_std=5, seed=1))
    >>> len(pairs), all(len(p.read1) == len(p.read2) == 30 for p in pairs)
    (2, True)
    """
    config.validate()
    n = len(genome)
    if config.insert_size > n:
        raise ValueError(f"insert_size {config.insert_size} exceeds genome length {n}")
    rng = random.Random(config.seed)
    pairs: List[ReadPair] = []
    for _ in range(config.n_pairs):
        fragment = max(
            config.read_length,
            min(n, round(rng.gauss(config.insert_size, config.insert_std))),
        )
        start = rng.randrange(0, n - fragment + 1)
        pos1 = start
        pos2 = start + fragment - config.read_length
        seq1, muts1 = _mutated_window(genome, pos1, config.read_length, config, rng)
        window2, muts2 = _mutated_window(genome, pos2, config.read_length, config, rng)
        pairs.append(
            ReadPair(
                read1=seq1,
                read2=reverse_complement(window2),
                position1=pos1,
                position2=pos2,
                fragment_length=fragment,
                n_mutations1=muts1,
                n_mutations2=muts2,
            )
        )
    return pairs
