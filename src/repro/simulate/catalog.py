"""The Table 1 genome roster, scaled.

Paper Table 1 lists five reference genomes:

======================  ===============
Genome                  Size (bp)
======================  ===============
Rat (Rnor_6.0)          2,909,701,677
Zebrafish (GRCz10)      1,464,443,456
Rat chr1 (Rnor_6.0)       290,094,217
C. elegans (WBcel235)     103,022,290
C. merolae (ASM9v1)        16,728,967
======================  ===============

Pure-Python index construction over gigabases is not feasible in a
benchmark loop (repro band note: "too slow for full-genome benchmarks"),
so the catalog reproduces the roster at **1/1000 scale**, preserving the
relative sizes — the quantity that drives the paper's cross-genome
comparisons — and assigning each genome a distinct repeat/GC profile in
line with its biology (mammalian genomes are repeat-rich; C. merolae is
compact and repeat-poor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .genome import GenomeConfig, generate_genome

#: Scale factor applied to the paper's genome sizes.
SCALE = 1_000


@dataclass(frozen=True)
class GenomeSpec:
    """One catalog entry: paper-reported size plus synthesis profile."""

    name: str
    paper_size_bp: int
    gc_content: float
    repeat_fraction: float
    seed: int

    @property
    def scaled_size(self) -> int:
        """Synthetic genome length: paper size divided by :data:`SCALE`."""
        return max(1_000, self.paper_size_bp // SCALE)


#: Table 1 genomes in paper order.
GENOME_CATALOG: Tuple[GenomeSpec, ...] = (
    GenomeSpec("Rat (Rnor_6.0)", 2_909_701_677, gc_content=0.42, repeat_fraction=0.40, seed=101),
    GenomeSpec("Zebra fish (GRCz10)", 1_464_443_456, gc_content=0.37, repeat_fraction=0.50, seed=102),
    GenomeSpec("Rat chr1 (Rnor_6.0)", 290_094_217, gc_content=0.42, repeat_fraction=0.40, seed=103),
    GenomeSpec("C. elegans (WBcel235)", 103_022_290, gc_content=0.35, repeat_fraction=0.15, seed=104),
    GenomeSpec("C. merolae (ASM9v1)", 16_728_967, gc_content=0.55, repeat_fraction=0.05, seed=105),
)

_cache: Dict[str, str] = {}


def build_catalog_genome(spec: GenomeSpec, max_length: int = 0) -> str:
    """Materialise (and memoise) a catalog genome.

    ``max_length`` further caps the length — benchmarks that only need a
    prefix-scale workload use it to stay inside their time budget.
    """
    length = spec.scaled_size if max_length <= 0 else min(spec.scaled_size, max_length)
    key = f"{spec.name}:{length}"
    if key not in _cache:
        _cache[key] = generate_genome(
            GenomeConfig(
                length=length,
                gc_content=spec.gc_content,
                repeat_fraction=spec.repeat_fraction,
                seed=spec.seed,
            )
        )
    return _cache[key]
