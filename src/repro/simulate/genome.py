"""Synthetic genome generation.

Random uniform DNA is a poor stand-in for a genome: real genomes carry
repeat families (SINEs/LINEs), tandem duplications and GC skew, and it is
precisely this repeat structure that makes k-mismatch search trees (and
the paper's pair hash table) behave the way they do.  The generator here
layers those features on a base Markov-ish background:

1. a background sequence drawn with a configurable GC fraction;
2. a small library of repeat elements, each pasted many times with a
   per-copy divergence (point mutations) — this is what creates the
   recurring BWT ranges Algorithm A exploits;
3. tandem duplications of random local windows.

Everything is driven by a seeded :class:`random.Random` so every genome
is reproducible from its config.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..dna import reverse_complement

_BASES = "acgt"

__all__ = ["GenomeConfig", "generate_genome", "reverse_complement", "summarize_genome"]


@dataclass
class GenomeConfig:
    """Parameters of a synthetic genome.

    Attributes
    ----------
    length:
        Target genome length in bases.
    gc_content:
        Fraction of g/c bases in the background (human ≈ 0.41).
    repeat_fraction:
        Fraction of the genome covered by repeat-family copies.
    repeat_unit_length:
        Length of each repeat family's consensus element.
    n_repeat_families:
        Number of distinct repeat consensus sequences.
    repeat_divergence:
        Per-base mutation probability applied to each pasted repeat copy
        (models SINE/LINE divergence; also guarantees approximate — not
        exact — recurrences, the regime the paper targets).
    tandem_fraction:
        Fraction of the genome covered by local tandem duplications.
    seed:
        RNG seed; two configs with equal fields produce equal genomes.
    """

    length: int
    gc_content: float = 0.41
    repeat_fraction: float = 0.30
    repeat_unit_length: int = 180
    n_repeat_families: int = 6
    repeat_divergence: float = 0.03
    tandem_fraction: float = 0.05
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range fields."""
        if self.length <= 0:
            raise ValueError("length must be positive")
        for name in ("gc_content", "repeat_fraction", "repeat_divergence", "tandem_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.repeat_unit_length <= 0 or self.n_repeat_families < 0:
            raise ValueError("repeat parameters must be positive")


def _random_base(rng: random.Random, gc: float) -> str:
    if rng.random() < gc:
        return rng.choice("gc")
    return rng.choice("at")


def _mutate(seq: str, rate: float, rng: random.Random) -> str:
    if rate <= 0:
        return seq
    out = list(seq)
    for i, ch in enumerate(out):
        if rng.random() < rate:
            out[i] = rng.choice([b for b in _BASES if b != ch])
    return "".join(out)


def generate_genome(config: GenomeConfig) -> str:
    """Generate one synthetic genome according to ``config``.

    >>> g = generate_genome(GenomeConfig(length=500, seed=7))
    >>> len(g), set(g) <= set("acgt")
    (500, True)
    >>> g == generate_genome(GenomeConfig(length=500, seed=7))   # reproducible
    True
    """
    config.validate()
    rng = random.Random(config.seed)
    n = config.length

    # 1. background
    genome: List[str] = [_random_base(rng, config.gc_content) for _ in range(n)]

    # 2. repeat families
    if config.n_repeat_families and config.repeat_fraction > 0:
        unit_len = min(config.repeat_unit_length, max(1, n // 4))
        families = [
            "".join(_random_base(rng, config.gc_content) for _ in range(unit_len))
            for _ in range(config.n_repeat_families)
        ]
        budget = int(n * config.repeat_fraction)
        while budget > 0 and unit_len <= n:
            family = rng.choice(families)
            copy = _mutate(family, config.repeat_divergence, rng)
            # Occasionally insert the reverse-complement strand copy.
            if rng.random() < 0.5:
                copy = reverse_complement(copy)
            pos = rng.randrange(0, n - unit_len + 1)
            genome[pos:pos + unit_len] = copy
            budget -= unit_len

    # 3. tandem duplications
    budget = int(n * config.tandem_fraction)
    while budget > 0 and n >= 8:
        span = rng.randint(4, max(4, min(64, n // 4)))
        src = rng.randrange(0, n - 2 * span + 1) if n >= 2 * span else 0
        window = genome[src:src + span]
        genome[src + span:src + 2 * span] = window
        budget -= span

    return "".join(genome)


@dataclass
class GenomeSummary:
    """Composition summary used by tests and the Table 1 bench."""

    length: int
    gc_content: float
    base_counts: dict = field(default_factory=dict)


def summarize_genome(genome: str) -> GenomeSummary:
    """Length / GC / per-base composition of a genome string."""
    counts = {b: genome.count(b) for b in _BASES}
    gc = (counts["g"] + counts["c"]) / len(genome) if genome else 0.0
    return GenomeSummary(length=len(genome), gc_content=gc, base_counts=counts)
