"""Strict linter for the Prometheus/OpenMetrics text exposition.

CI scrapes a live ``repro-cli serve-metrics`` endpoint and runs every
line through this module (the ``metrics-lint`` job / CLI subcommand), so
a malformed series — an illegal character repr leaking into a value, a
histogram whose cumulative buckets go backwards, a label value with an
unescaped quote — fails the build instead of failing the first real
Prometheus scrape in production.  Stdlib-only, like everything else in
``repro.obs``: the point is validating our *own* exposition without
trusting the code that produced it, so the grammar here is written from
the exposition-format spec, not imported from :mod:`repro.obs.export`.

Checked per exposition (:func:`lint_openmetrics`):

* every line is a comment (``# TYPE``/``# HELP``/``# EOF``) or matches
  the sample grammar ``name{label="value",...} value [# {...} value]``
  (exemplars are accepted on histogram ``_bucket`` samples only);
* metric and label names are legal, label values properly escaped,
  no label name repeated within one series;
* values parse as Prometheus numbers (``+Inf``/``-Inf``/``NaN``
  spellings — Python's ``inf``/``nan`` reprs are rejected);
* ``# TYPE`` appears at most once per family, before its samples, and
  every sample belongs to a declared family (suffix rules applied:
  counters expose ``_total``, histograms ``_bucket``/``_sum``/``_count``);
* no duplicate series (same name + label set twice);
* per histogram series: bucket counts are cumulative and monotone
  non-decreasing, an ``le="+Inf"`` bucket is present and equals the
  series' ``_count`` sample;
* the exposition ends with ``# EOF``.

:func:`lint_openmetrics` returns the problems as strings (empty list =
clean) so both the CLI and the tests can assert on substance; the
module is also runnable — ``python -m repro.obs.promlint <file|url>``.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

#: Metric name / label name grammar (exposition-format spec).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Prometheus number: integer/float with optional exponent, or the
#: canonical non-finite spellings.  (``inf``/``nan`` — Python reprs —
#: deliberately do NOT match.)
VALUE_RE = re.compile(r"^(?:[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN)$")

_TYPE_LINE = re.compile(r"^# TYPE (?P<name>\S+) (?P<kind>counter|gauge|histogram|summary|untyped)$")
_HELP_LINE = re.compile(r"^# HELP (?P<name>\S+) .*$")

#: One sample line: name, optional label block, value, optional exemplar.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[^\s{]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: # \{(?P<exemplar>[^}]*)\} (?P<exvalue>\S+))?$"
)

#: One label pair inside a label block (value escapes: \\ \" \n).
_LABEL_PAIR = re.compile(r'(?P<name>[^=,]+)="(?P<value>(?:[^"\\]|\\.)*)"')

_KNOWN_SUFFIXES = ("_total", "_bucket", "_sum", "_count")


def _parse_labels(raw: str, line_no: int, problems: List[str]) -> Optional[Tuple[Tuple[str, str], ...]]:
    """The sorted label tuple of one ``{...}`` block, or None on bad grammar."""
    if raw == "":
        return ()
    pairs: List[Tuple[str, str]] = []
    rest = raw
    while rest:
        match = _LABEL_PAIR.match(rest)
        if match is None:
            problems.append(f"line {line_no}: malformed label block {{{raw}}}")
            return None
        name = match.group("name")
        if not LABEL_NAME_RE.match(name):
            problems.append(f"line {line_no}: illegal label name {name!r}")
            return None
        pairs.append((name, match.group("value")))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            problems.append(f"line {line_no}: malformed label block {{{raw}}}")
            return None
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        problems.append(f"line {line_no}: repeated label name in {{{raw}}}")
        return None
    return tuple(sorted(pairs))


def _family_of(sample_name: str, declared: Dict[str, str]) -> Optional[Tuple[str, str]]:
    """The (family, kind) a sample name belongs to, or None when undeclared.

    A counter family ``f`` owns ``f_total``; a histogram family ``f``
    owns ``f_bucket``/``f_sum``/``f_count``; gauges own their bare name.
    Longest match wins so a gauge literally named ``x_count`` is not
    claimed by a histogram named ``x``.
    """
    if sample_name in declared:
        return sample_name, declared[sample_name]
    for suffix in _KNOWN_SUFFIXES:
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            kind = declared.get(family)
            if kind == "counter" and suffix == "_total":
                return family, kind
            if kind == "histogram" and suffix in ("_bucket", "_sum", "_count"):
                return family, kind
            if kind == "summary" and suffix in ("_sum", "_count"):
                return family, kind
    return None


def _value_of(raw: str) -> float:
    """The float behind a VALUE_RE-legal sample value."""
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)


def lint_openmetrics(text: str) -> List[str]:
    """Every problem found in one text exposition (empty list = clean)."""
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    else:
        problems.append("exposition does not end with a newline")
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition does not end with '# EOF'")

    declared: Dict[str, str] = {}
    #: (sample_name, labels) -> value, for duplicate detection.
    seen_series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    #: histogram family -> labels-sans-le -> [(le, cumulative count)].
    hist_buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[str, float]]] = {}
    #: histogram family -> labels -> _count value.
    hist_counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    for line_no, line in enumerate(lines, start=1):
        if line == "# EOF":
            if line_no != len(lines):
                problems.append(f"line {line_no}: '# EOF' before end of exposition")
            continue
        if line.startswith("#"):
            type_match = _TYPE_LINE.match(line)
            if type_match:
                name = type_match.group("name")
                if not METRIC_NAME_RE.match(name):
                    problems.append(f"line {line_no}: illegal metric name {name!r}")
                elif name in declared:
                    problems.append(f"line {line_no}: duplicate # TYPE for {name}")
                else:
                    declared[name] = type_match.group("kind")
                continue
            if _HELP_LINE.match(line):
                continue
            problems.append(f"line {line_no}: unrecognised comment line {line!r}")
            continue
        if not line.strip():
            problems.append(f"line {line_no}: blank line inside exposition")
            continue

        sample = _SAMPLE_LINE.match(line)
        if sample is None:
            problems.append(f"line {line_no}: does not match sample grammar: {line!r}")
            continue
        name = sample.group("name")
        if not METRIC_NAME_RE.match(name):
            problems.append(f"line {line_no}: illegal metric name {name!r}")
            continue
        if not VALUE_RE.match(sample.group("value")):
            problems.append(
                f"line {line_no}: illegal sample value {sample.group('value')!r}"
            )
            continue
        labels = _parse_labels(sample.group("labels") or "", line_no, problems)
        if labels is None:
            continue

        owner = _family_of(name, declared)
        if owner is None:
            problems.append(f"line {line_no}: sample {name!r} has no preceding # TYPE")
            continue
        family, kind = owner

        exemplar = sample.group("exemplar")
        if exemplar is not None:
            if not (kind == "histogram" and name.endswith("_bucket")):
                problems.append(
                    f"line {line_no}: exemplar on non-bucket sample {name!r}"
                )
            elif _parse_labels(exemplar, line_no, problems) is None:
                pass  # problem already recorded
            elif not VALUE_RE.match(sample.group("exvalue") or ""):
                problems.append(
                    f"line {line_no}: illegal exemplar value {sample.group('exvalue')!r}"
                )

        series_key = (name, labels)
        if series_key in seen_series:
            problems.append(f"line {line_no}: duplicate series {name}{dict(labels)}")
            continue
        value = _value_of(sample.group("value"))
        seen_series[series_key] = value

        if kind == "counter" and not (value >= 0):
            problems.append(f"line {line_no}: counter {name} has negative value {value}")
        if kind == "histogram":
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    problems.append(f"line {line_no}: bucket sample missing 'le' label")
                    continue
                if not VALUE_RE.match(le):
                    problems.append(f"line {line_no}: illegal 'le' bound {le!r}")
                    continue
                base = tuple(pair for pair in labels if pair[0] != "le")
                hist_buckets.setdefault((family, base), []).append((le, value))
            elif name.endswith("_count"):
                hist_counts[(family, labels)] = value

    for (family, base_labels), buckets in hist_buckets.items():
        where = f"{family}{dict(base_labels)}" if base_labels else family
        bounds = [le for le, _ in buckets]
        if "+Inf" not in bounds:
            problems.append(f"histogram {where}: no le=\"+Inf\" bucket")
        ordered = sorted(buckets, key=lambda pair: _value_of(pair[0]))
        counts = [count for _, count in ordered]
        if counts != sorted(counts):
            problems.append(
                f"histogram {where}: bucket counts are not cumulative/monotone: {counts}"
            )
        count_value = hist_counts.get((family, base_labels))
        if count_value is None:
            problems.append(f"histogram {where}: missing _count sample")
        elif "+Inf" in bounds and dict(buckets)["+Inf"] != count_value:
            problems.append(
                f"histogram {where}: le=\"+Inf\" bucket ({dict(buckets)['+Inf']}) "
                f"!= _count ({count_value})"
            )
    return problems


def fetch_exposition(source: str, timeout: float = 10.0) -> str:
    """The exposition text behind ``source`` — an ``http(s)://`` URL
    (``/metrics`` appended when the path has no endpoint) or a file path."""
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        url = source if "/metrics" in source else source.rstrip("/") + "/metrics"
        with urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")
    with open(source) as handle:
        return handle.read()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.promlint <file|url>`` — 0 clean, 1 problems."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.obs.promlint <exposition-file-or-url>",
              file=sys.stderr)
        return 2
    text = fetch_exposition(args[0])
    problems = lint_openmetrics(text)
    for problem in problems:
        print(problem)
    n_samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    if problems:
        print(f"FAIL: {len(problems)} problem(s) in {n_samples} sample line(s)")
        return 1
    print(f"OK: {n_samples} sample line(s) clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
