"""Live telemetry fan-out behind the ``/debug/stream`` SSE endpoint.

One :class:`StreamBroker` per process: a publisher daemon thread that,
every ``REPRO_STREAM_INTERVAL_S`` seconds, samples the process-wide
:class:`~repro.obs.timeseries.TimeSeriesStore`, and pushes incremental
JSON frames to every subscribed client:

* ``hello`` — once per subscription: stream format/version, cadence;
* ``metrics`` — per tick: the metric **delta** since the previous tick
  (:func:`~repro.obs.export.metrics_delta` — counters as increments,
  changed gauges, histogram bucket increments) plus the embedded
  dashboard document :func:`~repro.obs.top.compute_dashboard` builds
  from the full payload (``repro-cli top --url`` renders exactly this);
* ``alert`` — only on state *transitions* (inactive→firing,
  firing→resolved), from ticking the process-wide SLO engine;
* ``slow_query`` — newly pinned flight-recorder slow records
  (span trees, stats and profiles stripped: frames stay small).

Every client owns a **bounded** queue (``REPRO_STREAM_QUEUE`` frames).
A consumer that cannot keep up — a stalled ``curl``, a dead socket the
TCP stack has not noticed yet — fills its queue and is **evicted**
rather than allowed to stall the publisher or buffer without bound:
the broker drops the subscription, counts ``obs.stream.evictions``,
and the serving thread notices on its next queue read.  The
``obs.stream.clients`` gauge tracks live subscriptions.

Frames cross the wire in Server-Sent-Events framing
(:func:`format_sse`): ``event: <type>`` + ``data: <one JSON object>``
+ blank line, consumable by ``curl -N`` and ``EventSource`` alike.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Any, Dict, List, Optional

from .export import metrics_delta
from .recorder import FlightRecorder
from .timeseries import TimeSeriesStore, get_timeseries
from .top import compute_dashboard

#: Stream format tag, sent in the hello frame.
STREAM_FORMAT = "repro-stream"

#: Stream schema version.
STREAM_VERSION = 1

#: Publisher cadence in seconds — env REPRO_STREAM_INTERVAL_S.
DEFAULT_STREAM_INTERVAL_S = float(
    os.environ.get("REPRO_STREAM_INTERVAL_S", "1.0")
)

#: Per-client queue bound in frames — env REPRO_STREAM_QUEUE.
DEFAULT_STREAM_QUEUE = int(os.environ.get("REPRO_STREAM_QUEUE", "64"))

#: Record fields stripped from slow_query frames (heavyweight payloads
#: that belong to ``/debug/queries``, not a push stream).
_SLOW_FRAME_DROP = ("spans", "stats", "profile")


def format_sse(frame: Dict[str, Any]) -> bytes:
    """One frame in SSE wire framing (``event:`` + ``data:`` + blank)."""
    body = json.dumps(frame, separators=(",", ":"))
    return f"event: {frame.get('type', 'message')}\ndata: {body}\n\n".encode()


class StreamClient:
    """One subscription: a bounded frame queue plus liveness state."""

    __slots__ = ("client_id", "queue", "evicted", "subscribed_at")

    def __init__(self, client_id: int, maxsize: int):
        self.client_id = client_id
        self.queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(maxsize)
        self.evicted = False
        self.subscribed_at = time.time()

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next frame, or None on timeout / after eviction."""
        if self.evicted:
            return None
        try:
            return self.queue.get(timeout=timeout)
        except queue.Empty:
            return None


class StreamBroker:
    """Publisher + subscription registry for ``/debug/stream``.

    ``store`` defaults to the process-wide time-series store (shared
    with the SLO engine), ``recorder`` to ``OBS.recorder``; both are
    injectable for tests.  ``tick()`` is public and deterministic —
    the publisher thread is just ``tick`` on a timer.
    """

    def __init__(self, store: Optional[TimeSeriesStore] = None,
                 recorder: Optional[FlightRecorder] = None,
                 interval_s: Optional[float] = None,
                 queue_maxsize: Optional[int] = None):
        self._store = store
        self._recorder = recorder
        self.interval_s = float(DEFAULT_STREAM_INTERVAL_S
                                if interval_s is None else interval_s)
        self.queue_maxsize = int(DEFAULT_STREAM_QUEUE
                                 if queue_maxsize is None else queue_maxsize)
        self._lock = threading.Lock()
        self._clients: List[StreamClient] = []
        self._next_client_id = 1
        self._seq = 0
        self._last_payload: Optional[Dict[str, dict]] = None
        self._last_alert_states: Dict[str, str] = {}
        self._last_slow_seq = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.frames_published = 0
        self.evictions = 0

    # -- wiring ---------------------------------------------------------------

    def store(self) -> TimeSeriesStore:
        return self._store if self._store is not None else get_timeseries()

    def recorder(self) -> FlightRecorder:
        if self._recorder is not None:
            return self._recorder
        from . import OBS

        return OBS.recorder

    def _set_clients_gauge(self) -> None:
        from . import OBS

        if OBS.enabled:
            OBS.metrics.gauge("obs.stream.clients").set(len(self._clients))

    # -- subscriptions --------------------------------------------------------

    @property
    def n_clients(self) -> int:
        with self._lock:
            return len(self._clients)

    def subscribe(self) -> StreamClient:
        """Register a client; its queue starts with a ``hello`` frame and
        one full ``metrics`` snapshot, so a one-shot consumer (``curl
        --max-time``, ``top --once --url``) need not wait a tick."""
        with self._lock:
            client = StreamClient(self._next_client_id, self.queue_maxsize)
            self._next_client_id += 1
            self._clients.append(client)
            self._set_clients_gauge()
        client.queue.put(self._hello_frame(client))
        client.queue.put(self._snapshot_frame())
        return client

    def unsubscribe(self, client: StreamClient) -> None:
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)
                self._set_clients_gauge()

    def publish(self, frame: Dict[str, Any]) -> None:
        """Fan one frame out; full queues evict their client."""
        with self._lock:
            clients = list(self._clients)
        dropped = []
        for client in clients:
            try:
                client.queue.put_nowait(frame)
            except queue.Full:
                client.evicted = True
                dropped.append(client)
        if dropped:
            from . import OBS

            self.evictions += len(dropped)
            if OBS.enabled:
                OBS.metrics.counter("obs.stream.evictions").inc(len(dropped))
            for client in dropped:
                self.unsubscribe(client)
        self.frames_published += 1

    # -- frame building -------------------------------------------------------

    def _hello_frame(self, client: StreamClient) -> Dict[str, Any]:
        return {
            "type": "hello",
            "format": STREAM_FORMAT,
            "version": STREAM_VERSION,
            "ts": round(time.time(), 3),
            "client_id": client.client_id,
            "interval_s": self.interval_s,
            "frame_types": ["hello", "metrics", "alert", "slow_query"],
        }

    def _alerts(self) -> List[dict]:
        from .slo import get_slo_engine

        return get_slo_engine().alerts.to_dict()["alerts"]

    def _snapshot_frame(self) -> Dict[str, Any]:
        """A full-payload metrics frame (subscription bootstrap)."""
        _, payload = self.store().sample()
        self._seq += 1
        return {
            "type": "metrics",
            "seq": self._seq,
            "ts": round(time.time(), 3),
            "full": True,
            "metrics": payload,
            "dashboard": compute_dashboard(payload, alerts=self._alerts()),
        }

    def tick(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One publisher step: sample, diff, publish; returns the frames
        (deterministic — tests drive it directly without the thread)."""
        store = self.store()
        _, payload = store.sample(now)
        frames: List[Dict[str, Any]] = []

        from .slo import get_slo_engine

        engine = get_slo_engine()
        try:
            engine.tick(now)
        except Exception:
            pass  # rule evaluation must not take the stream down
        alerts = self._alerts()
        for alert in alerts:
            name = alert.get("objective", "?")
            state = alert.get("state", "inactive")
            previous = self._last_alert_states.get(name)
            if previous is not None and previous != state:
                frames.append({
                    "type": "alert",
                    "ts": round(time.time(), 3),
                    "objective": name,
                    "state": state,
                    "previous": previous,
                    "burn_fast": alert.get("burn_fast", 0.0),
                    "burn_slow": alert.get("burn_slow", 0.0),
                })
            self._last_alert_states[name] = state

        delta = metrics_delta(self._last_payload, payload) \
            if self._last_payload is not None else payload
        self._seq += 1
        frames.append({
            "type": "metrics",
            "seq": self._seq,
            "ts": round(time.time(), 3),
            "full": self._last_payload is None,
            "delta": delta,
            "dashboard": compute_dashboard(payload, alerts=alerts),
        })
        self._last_payload = payload

        for record in self.recorder().slow_since(self._last_slow_seq):
            self._last_slow_seq = max(self._last_slow_seq,
                                      record.get("seq", 0))
            slim = {key: value for key, value in record.items()
                    if key not in _SLOW_FRAME_DROP}
            frames.append({
                "type": "slow_query",
                "ts": round(time.time(), 3),
                "record": slim,
            })

        for frame in frames:
            self.publish(frame)
        return frames

    # -- the publisher thread -------------------------------------------------

    def start(self) -> "StreamBroker":
        """Run :meth:`tick` every ``interval_s`` on a daemon thread
        (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stream-publisher", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:
                # A tick must never kill the publisher; the next one
                # starts from clean state.
                continue

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "queue_maxsize": self.queue_maxsize,
                "n_clients": len(self._clients),
                "frames_published": self.frames_published,
                "evictions": self.evictions,
            }


# -- SSE parsing (the consuming side: repro-cli top --url) -------------------------


def parse_sse(lines) -> "list[Dict[str, Any]]":
    """Parse SSE wire text (an iterable of ``str`` lines) into frames.

    Tolerant of comment lines (``: keep-alive``) and unknown fields;
    the generator form is :func:`iter_sse_frames`.
    """
    return list(iter_sse_frames(lines))


def iter_sse_frames(lines):
    """Yield decoded frame dicts from an iterable of SSE lines."""
    data: List[str] = []
    for raw in lines:
        line = raw.decode() if isinstance(raw, bytes) else raw
        line = line.rstrip("\r\n")
        if not line:
            if data:
                try:
                    yield json.loads("\n".join(data))
                except json.JSONDecodeError:
                    pass
                data = []
            continue
        if line.startswith(":"):
            continue
        if line.startswith("data:"):
            data.append(line[5:].lstrip())
    if data:
        try:
            yield json.loads("\n".join(data))
        except json.JSONDecodeError:
            pass


# -- the process-wide broker -------------------------------------------------------

_default_broker: Optional[StreamBroker] = None
_default_broker_lock = threading.Lock()


def get_broker() -> StreamBroker:
    """The process-wide broker ``/debug/stream`` serves from (created on
    first use over the process-wide store and recorder)."""
    global _default_broker
    with _default_broker_lock:
        if _default_broker is None:
            _default_broker = StreamBroker()
        return _default_broker


def configure_broker(store: Optional[TimeSeriesStore] = None,
                     recorder: Optional[FlightRecorder] = None,
                     interval_s: Optional[float] = None,
                     queue_maxsize: Optional[int] = None) -> StreamBroker:
    """Replace the process-wide broker (stopping any running publisher)."""
    global _default_broker
    with _default_broker_lock:
        if _default_broker is not None:
            _default_broker.stop()
        _default_broker = StreamBroker(
            store=store, recorder=recorder, interval_s=interval_s,
            queue_maxsize=queue_maxsize,
        )
        return _default_broker


__all__ = [
    "STREAM_FORMAT",
    "STREAM_VERSION",
    "DEFAULT_STREAM_INTERVAL_S",
    "DEFAULT_STREAM_QUEUE",
    "format_sse",
    "StreamClient",
    "StreamBroker",
    "parse_sse",
    "iter_sse_frames",
    "get_broker",
    "configure_broker",
]
