"""In-process time-series store over metrics-registry snapshots.

Every existing telemetry surface (``/metrics``, ``/slo``, ``stats``,
``slo report``) is a point-in-time render of the registry; this module
adds *time* as a first-class axis.  A :class:`TimeSeriesStore` retains a
bounded ring of ``(timestamp, registry.to_dict())`` snapshots — sampled
on a configurable cadence by a background thread, or appended explicitly
by whoever already holds a snapshot (the SLO engine's tick does) — and
answers windowed queries over them:

* :meth:`~TimeSeriesStore.delta` — how much a counter (or histogram
  observation count, or gauge level) moved inside a window;
* :meth:`~TimeSeriesStore.rate` — that delta per second of covered time
  (QPS, error rates, probe rates);
* :meth:`~TimeSeriesStore.percentile_over_time` — a percentile of one
  histogram family computed from only the observations that landed
  inside the window.

Counter and histogram queries walk *consecutive snapshot pairs* and sum
per-pair increments with **reset detection**, the Prometheus ``rate()``
contract (sans extrapolation): a pair whose counter went backwards — the
process restarted, or the registry was reset mid-run — contributes the
``after`` value verbatim instead of a negative increment, so a restart
costs at most the samples of one interval rather than poisoning the
whole window.  Gauges are last-write-wins levels, so their delta is
simply ``last - first`` (negative allowed, no reset handling).

The :class:`~repro.obs.slo.SLOEngine` feeds from this store rather than
a private snapshot list — burn-rate windows and these queries share one
substrate, which is also what the ``/debug/stream`` publisher and
``repro-cli top`` read.

Knobs (read at store construction):

* ``REPRO_TS_INTERVAL_S`` — background sampling cadence (default 5 s);
* ``REPRO_TS_CAPACITY``  — retained snapshot bound (default 512).

Everything here is pure stdlib and, like the rest of ``repro.obs``,
clock- and registry-injectable for deterministic tests.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .export import metrics_delta
from .metrics import Histogram, LabelTuple, freeze_labels, iter_series

#: Default background sampling cadence (seconds).
DEFAULT_TS_INTERVAL_S = float(os.environ.get("REPRO_TS_INTERVAL_S", "5.0"))

#: Default retained-snapshot bound.
DEFAULT_TS_CAPACITY = int(os.environ.get("REPRO_TS_CAPACITY", "512"))


def _series_payload(payload: Optional[dict],
                    labels: LabelTuple) -> Optional[dict]:
    """The one series of a family payload carrying exactly ``labels``."""
    if payload is None:
        return None
    for series_labels, child in iter_series(payload):
        if series_labels == labels:
            return child
    return None


def _counter_increment(before: Optional[dict], after: dict) -> float:
    """One consecutive-pair counter increment with reset detection."""
    value = after.get("value", 0)
    if before is None:
        return value
    inc = value - before.get("value", 0)
    return value if inc < 0 else inc


def _histogram_increment(before: Optional[dict],
                         after: dict) -> Tuple[List[float], float, float]:
    """(bucket increments, count increment, sum increment) for one pair.

    A reset — any bucket or the total going backwards, or the bucket
    layout changing — contributes the ``after`` payload verbatim, same
    contract as :func:`_counter_increment`.
    """
    counts = list(after.get("counts") or [])
    count = after.get("count", 0)
    total = after.get("sum", 0.0)
    if before is None or before.get("buckets") != after.get("buckets"):
        return counts, count, total
    prior_counts = list(before.get("counts") or [])
    if len(prior_counts) != len(counts):
        return counts, count, total
    inc_counts = [c - p for c, p in zip(counts, prior_counts)]
    inc_count = count - before.get("count", 0)
    if inc_count < 0 or any(c < 0 for c in inc_counts):
        return counts, count, total
    return inc_counts, inc_count, total - before.get("sum", 0.0)


class TimeSeriesStore:
    """A bounded ring of registry snapshots with windowed queries.

    ``registry`` defaults to the process-wide ``OBS.metrics`` (resolved
    lazily, so construction order does not matter); ``clock`` defaults
    to :func:`time.monotonic`.  ``retention_s`` (settable after
    construction — the SLO engine pins it to its slow window) prunes
    snapshots older than the window while keeping the newest one at or
    before its left edge as the baseline; ``capacity`` bounds the ring
    regardless, thinning from just past the baseline so both the oldest
    snapshot and recent density survive.
    """

    def __init__(self, registry=None,
                 clock: Optional[Callable[[], float]] = None,
                 capacity: Optional[int] = None,
                 interval_s: Optional[float] = None):
        self._registry = registry
        self.clock = clock or time.monotonic
        self.capacity = max(2, int(capacity if capacity is not None
                                   else DEFAULT_TS_CAPACITY))
        self.interval_s = float(interval_s if interval_s is not None
                                else DEFAULT_TS_INTERVAL_S)
        #: Prune horizon in seconds (None = bounded by capacity only).
        self.retention_s: Optional[float] = None
        self._lock = threading.RLock()
        self._snapshots: List[Tuple[float, Dict[str, dict]]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.total_sampled = 0

    def registry(self):
        if self._registry is not None:
            return self._registry
        from . import OBS

        return OBS.metrics

    # -- the ring --------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def append(self, now: float, payload: Dict[str, dict]) -> None:
        """Retain one already-taken snapshot (and prune)."""
        with self._lock:
            self._snapshots.append((now, payload))
            self._prune(now)

    def sample(self, now: Optional[float] = None) -> Tuple[float, Dict[str, dict]]:
        """Snapshot the registry now; returns the ``(ts, payload)`` retained.

        Process-level gauges (uptime, RSS) are refreshed into the
        process-wide registry first, so sampled series include them —
        the same refresh the ``/metrics`` scrape handler runs.
        """
        from . import OBS
        from .export import refresh_process_gauges

        registry = self.registry()
        if OBS.enabled and registry is OBS.metrics:
            refresh_process_gauges(registry)
        with self._lock:
            if now is None:
                now = self.clock()
            payload = registry.to_dict()
            self._snapshots.append((now, payload))
            self.total_sampled += 1
            self._prune(now)
            return now, payload

    def latest(self) -> Optional[Tuple[float, Dict[str, dict]]]:
        """The newest retained snapshot, or None."""
        with self._lock:
            return self._snapshots[-1] if self._snapshots else None

    def clear(self) -> None:
        with self._lock:
            del self._snapshots[:]

    def _prune(self, now: float) -> None:
        """Keep every snapshot inside the retention window plus the
        newest one at or before its left edge (the baseline), bounded
        overall by ``capacity``."""
        if self.retention_s is not None:
            cutoff = now - self.retention_s
            keep_from = 0
            for i, (ts, _) in enumerate(self._snapshots):
                if ts <= cutoff:
                    keep_from = i
                else:
                    break
            if keep_from:
                del self._snapshots[:keep_from]
        # Over the cap: thin from just past the baseline, keeping both
        # the oldest snapshot (window baseline) and recent density.
        while len(self._snapshots) > self.capacity:
            del self._snapshots[1]

    # -- window selection ------------------------------------------------------

    def window_delta(self, window_s: float, now: float,
                     current: Dict[str, dict]):
        """(delta payload, seconds actually covered) for one window, or
        (None, 0.0) before any baseline snapshot exists.  The baseline
        is the newest snapshot at or before the window's left edge; with
        history shorter than the window, the oldest snapshot serves —
        the window reports what it can actually see.  This is the SLO
        engine's burn-rate substrate (simple endpoint subtraction, no
        reset detection: one process's monotonic counters only reset
        when the registry itself is reset)."""
        with self._lock:
            cutoff = now - window_s
            baseline = None
            for ts, payload in self._snapshots:
                if ts <= cutoff:
                    baseline = (ts, payload)
                else:
                    break
            if baseline is None and self._snapshots:
                baseline = self._snapshots[0]
        if baseline is None:
            return None, 0.0
        return metrics_delta(baseline[1], current), max(0.0, now - baseline[0])

    def window_snapshots(self, window_s: Optional[float],
                         right_ts: Optional[float] = None
                         ) -> List[Tuple[float, Dict[str, dict]]]:
        """The retained snapshots a windowed query walks: the baseline
        (newest at or before ``right_ts - window_s``, else the oldest)
        through the newest at or before ``right_ts``.  ``window_s`` None
        means everything retained; ``right_ts`` defaults to the newest
        snapshot's timestamp."""
        with self._lock:
            snapshots = list(self._snapshots)
        if not snapshots:
            return []
        if right_ts is None:
            right_ts = snapshots[-1][0]
        snapshots = [s for s in snapshots if s[0] <= right_ts]
        if not snapshots or window_s is None:
            return snapshots
        cutoff = right_ts - window_s
        start = 0
        for i, (ts, _) in enumerate(snapshots):
            if ts <= cutoff:
                start = i
            else:
                break
        return snapshots[start:]

    # -- windowed queries ------------------------------------------------------

    def _window_series(self, family: str, labels: Optional[Dict[str, Any]],
                       window_s: Optional[float],
                       right_ts: Optional[float]):
        """(ordered series payloads, covered seconds) for one family/label
        pair across the window's snapshots (missing snapshots -> None)."""
        snapshots = self.window_snapshots(window_s, right_ts)
        if len(snapshots) < 2:
            return [], 0.0
        key = freeze_labels(labels or {})
        series = [_series_payload(payload.get(family), key)
                  for _, payload in snapshots]
        return series, max(0.0, snapshots[-1][0] - snapshots[0][0])

    def delta(self, family: str, labels: Optional[Dict[str, Any]] = None,
              window_s: Optional[float] = None,
              right_ts: Optional[float] = None) -> float:
        """How much ``family`` (scoped to one label set; ``None``/empty
        = the unlabelled series) moved inside the window.

        Counters and histogram observation counts sum consecutive-pair
        increments with reset detection; gauges report ``last - first``.
        Fewer than two retained snapshots in the window -> 0.0.
        """
        series, _ = self._window_series(family, labels, window_s, right_ts)
        if not series:
            return 0.0
        kinds = {child.get("type") for child in series if child is not None}
        if "gauge" in kinds:
            present = [child for child in series if child is not None]
            if not present:
                return 0.0
            return present[-1].get("value", 0) - present[0].get("value", 0)
        total = 0.0
        for before, after in zip(series, series[1:]):
            if after is None:
                continue
            if after.get("type") == "histogram":
                _, inc_count, _ = _histogram_increment(before, after)
                total += inc_count
            else:
                total += _counter_increment(before, after)
        return total

    def rate(self, family: str, labels: Optional[Dict[str, Any]] = None,
             window_s: Optional[float] = None,
             right_ts: Optional[float] = None) -> float:
        """Per-second :meth:`delta` over the seconds the window actually
        covers (0.0 with fewer than two snapshots)."""
        series, covered = self._window_series(family, labels, window_s, right_ts)
        if not series or covered <= 0.0:
            return 0.0
        moved = self.delta(family, labels, window_s, right_ts)
        return moved / covered

    def window_histogram(self, family: str,
                         labels: Optional[Dict[str, Any]] = None,
                         window_s: Optional[float] = None,
                         right_ts: Optional[float] = None
                         ) -> Optional[Histogram]:
        """A detached histogram holding only the window's observations
        (consecutive-pair bucket increments, reset-aware), or None when
        the family is absent / not a histogram / seen fewer than twice."""
        series, _ = self._window_series(family, labels, window_s, right_ts)
        present = [child for child in series if child is not None]
        if not present or present[-1].get("type") != "histogram":
            return None
        buckets = present[-1].get("buckets") or (1,)
        merged = Histogram(family, buckets, labels=freeze_labels(labels or {}))
        for before, after in zip(series, series[1:]):
            if after is None or after.get("type") != "histogram":
                continue
            if after.get("buckets") != list(buckets):
                continue
            inc_counts, inc_count, inc_sum = _histogram_increment(before, after)
            if len(inc_counts) != len(merged.counts):
                continue
            for i, c in enumerate(inc_counts):
                merged.counts[i] += c
            merged.count += inc_count
            merged.total += inc_sum
        # min/max are lifetime fields on the snapshots; the newest ones
        # are the best bucket-resolution stand-ins for the window.
        merged.min = present[-1].get("min")
        merged.max = present[-1].get("max")
        return merged

    def percentile_over_time(self, family: str, q: float,
                             labels: Optional[Dict[str, Any]] = None,
                             window_s: Optional[float] = None,
                             right_ts: Optional[float] = None) -> float:
        """The ``q``-th percentile of a histogram family over only the
        window's observations (bucket-resolution, like every percentile
        a fixed-bucket histogram reports).  0.0 when no observations
        landed in the window."""
        merged = self.window_histogram(family, labels, window_s, right_ts)
        if merged is None or merged.count == 0:
            return 0.0
        return merged.percentile(q)

    # -- the background sampler ------------------------------------------------

    def start(self, interval_s: Optional[float] = None) -> "TimeSeriesStore":
        """Sample on a daemon thread every ``interval_s`` seconds
        (default: the store's configured cadence); idempotent."""
        if interval_s is not None:
            self.interval_s = float(interval_s)
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-ts-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self) -> None:
        """Stop the background sampler (retained snapshots are kept)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    def to_dict(self) -> dict:
        """Store state summary (for debug surfaces)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "interval_s": self.interval_s,
                "retention_s": self.retention_s,
                "n_snapshots": len(self._snapshots),
                "total_sampled": self.total_sampled,
                "oldest_ts": self._snapshots[0][0] if self._snapshots else None,
                "newest_ts": self._snapshots[-1][0] if self._snapshots else None,
            }


# -- the process-wide store -------------------------------------------------------

_default_store: Optional[TimeSeriesStore] = None
_default_store_lock = threading.Lock()


def get_timeseries() -> TimeSeriesStore:
    """The process-wide store the SLO engine, the ``/debug/stream``
    publisher and ``repro-cli top`` all share (created on first use
    over ``OBS.metrics``)."""
    global _default_store
    with _default_store_lock:
        if _default_store is None:
            _default_store = TimeSeriesStore()
        return _default_store


def configure_timeseries(registry=None,
                         clock: Optional[Callable[[], float]] = None,
                         capacity: Optional[int] = None,
                         interval_s: Optional[float] = None) -> TimeSeriesStore:
    """Replace the process-wide store (stops any running sampler on the
    old one first)."""
    global _default_store
    with _default_store_lock:
        if _default_store is not None:
            _default_store.stop()
        _default_store = TimeSeriesStore(
            registry=registry, clock=clock, capacity=capacity,
            interval_s=interval_s,
        )
        return _default_store


__all__ = [
    "DEFAULT_TS_INTERVAL_S",
    "DEFAULT_TS_CAPACITY",
    "TimeSeriesStore",
    "get_timeseries",
    "configure_timeseries",
]
