"""Stdlib-only HTTP endpoint for live telemetry.

A :class:`ThreadingHTTPServer` exposing the process-wide ``OBS``
singleton:

* ``GET /metrics``       — Prometheus/OpenMetrics text exposition of the
  metrics registry (what a Prometheus scrape job points at), labelled
  series and histogram exemplars included;
* ``GET /healthz``       — liveness JSON (uptime, instrumentation state,
  metric/record counts).  Deliberately unconditional: it says "the
  process is up", nothing more;
* ``GET /readyz``        — deep readiness: runs the registered health
  probes (canary query against the loaded index, worker-pool state) and
  answers 200 only when every component is ready, 503 otherwise, with
  the per-component report as JSON (see :mod:`repro.obs.health`);
* ``GET /slo``           — one SLO engine tick: every objective judged
  over the rolling fast/slow windows, burn rates and alert state
  included (see :mod:`repro.obs.slo`).  Scraping this endpoint is what
  builds the windows — each request adds a snapshot;
* ``GET /alerts``        — the in-process alert manager's state
  (firing / resolved / inactive per objective) without ticking;
* ``GET /debug/queries`` — the flight recorder as JSON: recent query
  records plus the pinned slow list.  ``?trace_id=<id>`` narrows the
  response to the records carrying that correlation id — the resolution
  step for a ``/metrics`` exemplar annotation;
* ``GET /debug/metrics`` — the raw registry ``to_dict`` JSON (schema
  v2, labelled series nested under their family) — what
  ``repro-cli stats --by ... --url ...`` consumes;
* ``GET /debug/stream`` — Server-Sent-Events push of live telemetry:
  incremental metric deltas with an embedded dashboard document, alert
  transitions, and newly pinned slow-query records (see
  :mod:`repro.obs.stream`; ``?frames=N`` bounds the stream for
  ``curl``/CI consumers; ``repro-cli top --url`` renders it live);
* ``GET /debug/pprof`` — the sampling profiler's collapsed/folded
  stacks as text (``frame;frame count`` lines, span-attributed).  When
  no profile has been collected, ``?seconds=N[&hz=H]`` runs a blocking
  one-shot capture (capped at 30 s) and serves that;
* ``GET /debug/pprof/flamegraph`` — the same profile as speedscope JSON
  (drop the response on https://www.speedscope.app);
* ``GET /debug/pprof/heap`` — retained ``tracemalloc`` memory profiles
  (peak bytes + top allocators per profiled region) as JSON.

Start it with :func:`start_server` (daemon thread, ephemeral port
supported for tests), via ``repro-cli serve-metrics``, or by setting
``REPRO_METRICS_PORT`` before any CLI command — the CLI then serves
telemetry for the duration of the run.

The server holds no state of its own: every request renders the
singleton at that instant, so it composes with any workload the process
is running.  Nothing outside the Python standard library is used.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .export import (
    OPENMETRICS_CONTENT_TYPE,
    refresh_process_gauges,
    render_openmetrics,
)

#: Default port for `repro-cli serve-metrics` (0 = ephemeral).
DEFAULT_PORT = 9109

#: Serializes one-shot ``?seconds=N`` pprof captures: the profiler can
#: run one capture at a time, so concurrent requesters race its
#: is_running() check (TOCTOU) — the loser of this lock gets a 409.
_PPROF_CAPTURE_LOCK = threading.Lock()


class _ObsRequestHandler(BaseHTTPRequestHandler):
    """Routes the telemetry endpoints over the OBS singleton."""

    server_version = "repro-obs/1"

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        # A scraper may drop the connection mid-response (timeout,
        # restart); that is its problem, not a handler-thread traceback.
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        from . import OBS

        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/metrics":
            refresh_process_gauges(OBS.metrics)
            self._respond(
                200, OPENMETRICS_CONTENT_TYPE, render_openmetrics(OBS.metrics.to_dict())
            )
        elif path == "/healthz":
            body = {
                "status": "ok",
                "enabled": OBS.enabled,
                "uptime_s": round(time.time() - self.server.started_at, 3),
                "n_metrics": len(OBS.metrics),
                "n_query_records": OBS.recorder.total_recorded,
            }
            self._respond(200, "application/json", json.dumps(body) + "\n")
        elif path == "/debug/queries":
            query = parse_qs(parsed.query)
            trace_ids = query.get("trace_id")
            if trace_ids:
                body = {
                    "trace_id": trace_ids[0],
                    "records": OBS.recorder.find_trace(trace_ids[0]),
                }
            else:
                body = OBS.recorder.to_dict()
            self._respond(200, "application/json", json.dumps(body) + "\n")
        elif path == "/readyz":
            from .health import READINESS

            report = READINESS.check()
            self._respond(
                200 if report["ready"] else 503,
                "application/json", json.dumps(report) + "\n",
            )
        elif path == "/slo":
            from .slo import get_slo_engine

            self._respond(
                200, "application/json", json.dumps(get_slo_engine().tick()) + "\n"
            )
        elif path == "/alerts":
            from .slo import get_slo_engine

            self._respond(
                200, "application/json",
                json.dumps(get_slo_engine().alerts.to_dict()) + "\n",
            )
        elif path == "/debug/metrics":
            refresh_process_gauges(OBS.metrics)
            self._respond(
                200, "application/json", json.dumps(OBS.metrics.to_dict()) + "\n"
            )
        elif path == "/debug/stream":
            self._serve_stream(parsed)
        elif path in ("/debug/pprof", "/debug/pprof/flamegraph"):
            from .profiling import PROFILER

            query = parse_qs(parsed.query)
            profile = PROFILER.profile
            if profile is None or (not PROFILER.is_running() and query.get("seconds")):
                try:
                    seconds = min(30.0, float(query.get("seconds", ["0"])[0]))
                    hz = float(query.get("hz", ["0"])[0]) or None
                except ValueError:
                    self._respond(400, "application/json",
                                  json.dumps({"error": "seconds/hz must be numbers"}) + "\n")
                    return
                if seconds > 0:
                    if not _PPROF_CAPTURE_LOCK.acquire(blocking=False):
                        self._respond(
                            409, "application/json",
                            json.dumps({"error": "a capture is already running",
                                        "hint": "retry once it finishes"}) + "\n",
                        )
                        return
                    try:
                        if not PROFILER.is_running():
                            profile = PROFILER.capture(seconds, hz=hz)
                    finally:
                        _PPROF_CAPTURE_LOCK.release()
            if profile is None:
                self._respond(
                    404,
                    "application/json",
                    json.dumps({"error": "no profile collected",
                                "hint": "start the profiler (repro-cli profile / "
                                        "--profile) or pass ?seconds=N"}) + "\n",
                )
            elif path.endswith("/flamegraph"):
                self._respond(
                    200, "application/json",
                    json.dumps(profile.to_speedscope("repro live profile")) + "\n",
                )
            else:
                self._respond(200, "text/plain; charset=utf-8", profile.to_folded())
        elif path == "/debug/pprof/heap":
            from .profiling import MEMORY_PROFILES

            body = {"profiles": [mp.to_dict() for mp in MEMORY_PROFILES]}
            self._respond(200, "application/json", json.dumps(body) + "\n")
        else:
            self._respond(
                404,
                "application/json",
                json.dumps({"error": "not found",
                            "endpoints": ["/metrics", "/healthz", "/readyz",
                                          "/slo", "/alerts",
                                          "/debug/queries", "/debug/metrics",
                                          "/debug/stream",
                                          "/debug/pprof", "/debug/pprof/flamegraph",
                                          "/debug/pprof/heap"]}) + "\n",
            )

    def _serve_stream(self, parsed) -> None:
        """``/debug/stream``: Server-Sent-Events telemetry push.

        Subscribes this handler thread to the process-wide
        :class:`~repro.obs.stream.StreamBroker` (starting its publisher
        on first use) and relays frames until the client disconnects,
        the broker evicts the subscription, or ``?frames=N`` frames
        have been sent (the bounded mode ``curl``/CI use — an SSE
        stream otherwise never ends).  A connection dropped mid-frame
        is normal client behaviour, not a handler error: the
        subscription is cleaned up and nothing propagates.
        """
        from .stream import format_sse, get_broker

        query = parse_qs(parsed.query)
        try:
            max_frames = max(0, int(query.get("frames", ["0"])[0] or 0))
        except ValueError:
            self._respond(400, "application/json",
                          json.dumps({"error": "frames must be an integer"}) + "\n")
            return
        broker = get_broker().start()
        client = broker.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            sent = 0
            # Frames-until-idle heartbeat: a comment line every timeout
            # keeps intermediaries from closing the stream and makes a
            # dead socket surface as a write error promptly.
            while not client.evicted:
                frame = client.get(timeout=max(1.0, broker.interval_s * 2))
                if frame is None:
                    if client.evicted:
                        break
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                self.wfile.write(format_sse(frame))
                self.wfile.flush()
                sent += 1
                if max_frames and sent >= max_frames:
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            broker.unsubscribe(client)
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are periodic)."""


class MetricsServer:
    """A running telemetry endpoint (wraps :class:`ThreadingHTTPServer`).

    >>> server = start_server(port=0)     # ephemeral port
    >>> server.url.startswith("http://")
    True
    >>> server.stop()
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT):
        self._httpd = ThreadingHTTPServer((host, port), _ObsRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.started_at = time.time()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — the port is resolved even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def start_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> MetricsServer:
    """Bind and start a :class:`MetricsServer` on a daemon thread."""
    return MetricsServer(host, port).start()
