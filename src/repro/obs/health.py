"""Deep health: per-component readiness behind ``/readyz``.

``/healthz`` is *liveness* — "the process is up and answering HTTP" —
and deliberately never fails while the server runs.  Readiness is the
stronger claim "this process can serve queries correctly right now",
and that needs evidence: a canary query against the actually-loaded
index, a worker pool that is still making progress.  This module holds
that evidence.

:data:`READINESS` is the process-wide :class:`HealthMonitor`.  Two ways
to feed it:

* **Components** — code that *knows* its state pushes it:
  ``READINESS.set_component("workers", False, "no chunk in 30s")``
  (the :class:`~repro.engine.executor.BatchExecutor` watchdog does
  exactly this when a pool stalls).
* **Probes** — registered callables run on every :meth:`check` (every
  ``/readyz`` request): ``READINESS.register_probe("index",
  index_canary(index))``.  A probe returns ``(ok, detail)`` or just
  ``True``/``False``; raising counts as not ready with the exception as
  detail.

Overall readiness is the conjunction over all components; a monitor
with nothing registered is trivially ready (a bare metrics server has
nothing to prove).  Everything is stdlib-only and thread-safe — probes
run under the server's handler threads and the watchdog flips
components from its own thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple, Union

#: What a probe may return: a bare bool or an (ok, detail) pair.
ProbeResult = Union[bool, Tuple[bool, str]]


class HealthMonitor:
    """Named component states plus on-demand probes, conjoined into one
    ready/not-ready verdict.

    >>> monitor = HealthMonitor()
    >>> monitor.check()["ready"]
    True
    >>> monitor.set_component("workers", False, "pool stalled")
    >>> monitor.check()["ready"]
    False
    >>> monitor.set_component("workers", True)
    >>> monitor.check()["ready"]
    True
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock
        self._lock = threading.Lock()
        self._components: Dict[str, dict] = {}
        self._probes: Dict[str, Callable[[], ProbeResult]] = {}

    # -- pushed state ---------------------------------------------------------

    def set_component(self, name: str, ok: bool, detail: str = "") -> dict:
        """Record component ``name`` as ready (``ok=True``) or not."""
        entry = {
            "ok": bool(ok),
            "detail": detail,
            "checked_at": self._clock(),
            "source": "component",
        }
        with self._lock:
            self._components[name] = entry
        return entry

    # -- pulled state ---------------------------------------------------------

    def register_probe(self, name: str, probe: Callable[[], ProbeResult]) -> None:
        """Run ``probe`` on every :meth:`check`; its result becomes
        component ``name``.  Re-registering a name replaces the probe."""
        with self._lock:
            self._probes[name] = probe

    def unregister_probe(self, name: str) -> None:
        with self._lock:
            self._probes.pop(name, None)

    def reset(self) -> None:
        """Drop every component and probe (fresh-server state)."""
        with self._lock:
            self._components.clear()
            self._probes.clear()

    # -- evaluation -----------------------------------------------------------

    def check(self) -> dict:
        """Run every probe, fold in pushed component states, and report.

        The report is JSON-shaped: ``{"ready": bool, "components":
        {name: {"ok", "detail", "checked_at", "source"}}}`` — what
        ``/readyz`` serves (200 when ready, 503 otherwise).
        """
        with self._lock:
            probes = list(self._probes.items())
        for name, probe in probes:
            started = self._clock()
            try:
                result = probe()
            except Exception as exc:  # a failing probe IS the signal
                result = (False, f"probe raised {type(exc).__name__}: {exc}")
            if isinstance(result, tuple):
                ok, detail = result
            else:
                ok, detail = bool(result), ""
            entry = {
                "ok": bool(ok),
                "detail": detail,
                "checked_at": started,
                "source": "probe",
            }
            with self._lock:
                self._components[name] = entry
        with self._lock:
            components = {name: dict(entry) for name, entry in self._components.items()}
        return {
            "ready": all(entry["ok"] for entry in components.values()),
            "components": components,
        }


def index_canary(
    index, k: int = 0, length: int = 12, pattern: Optional[str] = None
) -> Callable[[], ProbeResult]:
    """A readiness probe running a real query against ``index``.

    The canary pattern is a prefix of the indexed text itself (so it
    *must* occur at least once) unless an explicit ``pattern`` is given;
    the probe passes iff the query answers without raising and finds the
    guaranteed hit.  This exercises the full serving path — alphabet
    validation, engine dispatch, rank probes, suffix-array location —
    against the exact index object the process serves, which is what
    distinguishes ``/readyz`` from ``/healthz``'s unconditional "ok".
    """
    if pattern is None:
        pattern = index.text[: max(1, min(length, index.text_length))]

    def probe() -> ProbeResult:
        start = time.perf_counter()
        try:
            found = index.contains(pattern, k)
        except Exception as exc:
            return False, f"canary query raised {type(exc).__name__}: {exc}"
        elapsed_ms = (time.perf_counter() - start) * 1e3
        if not found:
            return False, (
                f"canary pattern (a {len(pattern)} bp prefix of the target) "
                f"not found — index answers but answers wrong"
            )
        return True, f"canary query ok in {elapsed_ms:.2f} ms"

    return probe


#: Process-wide readiness state, served by ``/readyz``.
READINESS = HealthMonitor()

__all__ = ["HealthMonitor", "READINESS", "index_canary"]
