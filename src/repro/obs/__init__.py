"""Observability: tracing, metrics, and trace-file export.

This package is the engine's measurement substrate.  Every layer —
FM-index construction, rank backends, the tree searchers, the facade,
the benchmark suite, the CLI — reports through the one process-wide
:data:`OBS` singleton, so a single switch turns the whole pipeline's
instrumentation on and a single export captures it.

Quickstart
----------
>>> from repro.obs import OBS
>>> OBS.reset(); OBS.enable()
>>> from repro import KMismatchIndex
>>> index = KMismatchIndex("acagaca")
>>> _ = index.search("tcaca", k=2)
>>> OBS.disable()
>>> any(s.name == "kmismatch.search" for s in OBS.tracer.iter_finished())
True
>>> OBS.metrics.counter("rank.rankall.occ_probes").value > 0
True

Instrumented code follows two rules:

* **Per-region work** (a build phase, one query) opens a span:
  ``with OBS.span("fmindex.build", length=n): ...`` — `span()` returns a
  shared no-op when disabled.
* **Per-operation work** (a rank probe, an LF step) guards with the
  ``enabled`` flag: ``if OBS.enabled: OBS.metrics.counter(...).inc()`` —
  one attribute read on the disabled path.

The trace-file format written by :meth:`Observability.export` /
``repro-cli --stats-json`` is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_MAX_LABEL_SETS,
    Gauge,
    Histogram,
    LABELS_DROPPED_METRIC,
    LATENCY_BUCKETS_MS,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    family_payload,
    freeze_labels,
    iter_series,
    render_metrics,
)
from .tracing import NULL_SPAN, Span, Timer, Tracer, render_span_tree
from .export import (
    OPENMETRICS_CONTENT_TYPE,
    ObsDelta,
    fetch_metrics_json,
    merge_metrics,
    merge_obs_delta,
    metrics_delta,
    render_openmetrics,
    sanitize_metric_name,
)
from .health import HealthMonitor, READINESS, index_canary
from .slo import (
    AlertManager,
    AlertPolicy,
    DEFAULT_RULES_TOML,
    Objective,
    QUERY_ERRORS_METRIC,
    SLOEngine,
    SLORules,
    WORKER_STALLED_METRIC,
    classify_error,
    configure_slo_engine,
    count_query_error,
    default_rules,
    evaluate_objective,
    evaluate_payload,
    get_slo_engine,
    lint_rules,
    load_rules,
    record_query_error,
)
from .recorder import (
    DEFAULT_SLOW_MS,
    EventLog,
    FlightRecorder,
    load_events,
    make_record,
    new_trace_id,
    prune_span_tree,
    render_records,
)
from .timeseries import (
    TimeSeriesStore,
    configure_timeseries,
    get_timeseries,
)
from .events import (
    WIDE_EVENT_FORMAT,
    WIDE_EVENT_VERSION,
    WideEventLog,
    load_wide_events,
    make_wide_event,
    render_event_lines,
    render_event_summary,
    sample_keep,
    summarize_events,
    tail_events,
)
from .stream import (
    STREAM_FORMAT,
    STREAM_VERSION,
    StreamBroker,
    configure_broker,
    format_sse,
    get_broker,
    iter_sse_frames,
    parse_sse,
)
from .top import (
    DASHBOARD_FORMAT,
    compute_dashboard,
    render_dashboard,
)
from .profiling import (
    MEMORY_PROFILES,
    MemoryProfile,
    PROFILER,
    Profile,
    Profiler,
    SpanAttributer,
    memory_profiling_enabled,
    profile_memory,
    render_top,
    set_memory_profiling,
    write_profile,
)

#: Identifier written into every exported trace document.
TRACE_FORMAT = "repro-trace"
#: Version 2 adds labelled metric families (schema v2 payloads with
#: ``series`` lists) and histogram exemplars; v1 documents still load.
TRACE_VERSION = 2


class Observability:
    """The paired tracer + metrics registry behind :data:`OBS`.

    ``enabled`` gates *everything*: spans collapse to a no-op singleton
    and hot-path counter updates are skipped entirely.  The flag is a
    plain attribute so the disabled check is one load — the overhead
    budget the test suite enforces.
    """

    __slots__ = ("tracer", "metrics", "enabled", "recorder", "event_log",
                 "wide_log")

    def __init__(self):
        self.tracer = Tracer(enabled=False)
        self.metrics = MetricsRegistry()
        self.enabled = False
        #: Bounded ring of recent query/batch records (+ pinned slow ones).
        self.recorder = FlightRecorder()
        #: Optional JSONL sink; set via :meth:`open_event_log`.
        self.event_log = None
        #: Optional sampling/rotating wide-event sink (:meth:`open_wide_log`).
        self.wide_log = None

    # -- switches -------------------------------------------------------------

    def enable(self) -> "Observability":
        """Turn on span collection and metric updates."""
        self.enabled = True
        self.tracer.enabled = True
        return self

    def disable(self) -> "Observability":
        """Turn instrumentation off (collected data is kept)."""
        self.enabled = False
        self.tracer.enabled = False
        return self

    def reset(self) -> "Observability":
        """Drop all collected spans, metrics and flight-recorder records
        (enabled state and any open event log unchanged)."""
        self.tracer.reset()
        self.metrics.reset()
        self.recorder.clear()
        return self

    @property
    def profiler(self) -> Profiler:
        """The process-wide sampling profiler (:data:`PROFILER`).

        Deliberately *not* reset by :meth:`reset` and not gated by
        ``enabled``: profiling is its own explicit opt-in with its own
        lifecycle (see :mod:`repro.obs.profiling`).
        """
        return PROFILER

    # -- convenience forwarding ----------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A tracer span (the shared no-op singleton when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs, self.tracer)

    def timed(self, name: str, **attrs: Any) -> Timer:
        """An always-on stopwatch that is also a span when enabled."""
        return Timer(self.span(name, **attrs))

    def observe(self, name: str, value: float, buckets=LATENCY_BUCKETS_MS,
                trace_id=None, **labels: Any) -> None:
        """Record a histogram observation iff enabled.

        Label keywords select the child series (``OBS.observe("query.search_ms",
        ms, engine="stree", k=2)``); ``trace_id`` attaches an exemplar to
        the observation's bucket.
        """
        if self.enabled:
            self.metrics.histogram(name, buckets, **labels).observe(value, trace_id)

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        """Increment a counter iff enabled (labels select the child series)."""
        if self.enabled:
            self.metrics.counter(name, **labels).inc(n)

    # -- flight recorder / event log ------------------------------------------

    def open_event_log(self, path: str) -> EventLog:
        """Start streaming every recorded event to ``path`` (JSON lines).

        Replaces (and closes) any previously open log.  The log receives
        records regardless of the ``enabled`` flag's later toggles — it
        is closed only by :meth:`close_event_log`.
        """
        self.close_event_log()
        self.event_log = EventLog(path)
        return self.event_log

    def close_event_log(self) -> None:
        """Close and detach the JSONL event sink (no-op when none open)."""
        if self.event_log is not None:
            self.event_log.close()
            self.event_log = None

    def open_wide_log(self, path: str, sample=None, max_bytes=None,
                      backups=None) -> WideEventLog:
        """Start emitting wide events to ``path`` (JSON lines, head
        sampling + size rotation — see :mod:`repro.obs.events`).

        Replaces (and closes) any previously open wide log.  Like the
        event log, the sink outlives ``enabled`` toggles; call sites
        guard emission themselves.
        """
        self.close_wide_log()
        self.wide_log = WideEventLog(path, sample=sample,
                                     max_bytes=max_bytes, backups=backups)
        return self.wide_log

    def close_wide_log(self) -> None:
        """Close and detach the wide-event sink (no-op when none open)."""
        if self.wide_log is not None:
            self.wide_log.close()
            self.wide_log = None

    def emit_wide(self, event: str, **fields) -> bool:
        """Build and emit one wide event iff a wide log is open.

        Returns whether the event was written (False when no sink is
        open or head sampling dropped it).  Cheap when no log is open —
        the one-attribute-read contract of the disabled path.
        """
        if self.wide_log is None:
            return False
        return self.wide_log.emit(make_wide_event(event, **fields))

    def record_event(self, event: str, **fields) -> dict:
        """Build, retain and (if a log is open) stream one record.

        The record lands in the flight recorder's ring (pinned too when
        it crosses the slow threshold) and in the JSONL event log.  Call
        sites guard with ``if OBS.enabled`` — this method does not.
        """
        record = self.recorder.record(make_record(event, **fields))
        if self.event_log is not None:
            self.event_log.emit(record)
        return record

    def record_query(
        self,
        engine: str,
        k: int,
        m: int,
        duration_ms: float,
        occurrences: int,
        stats=None,
        spans=None,
        trace_id=None,
        profile=None,
    ) -> dict:
        """One per-query record (the facade's per-search call).

        ``trace_id`` is the correlation handle shared with the query's
        histogram exemplar — ``/debug/queries?trace_id=...`` finds this
        record from a ``/metrics`` bucket annotation.  ``profile`` is the
        folded-stack slice the sampling profiler collected during the
        query (attached only for slow queries, and only while the
        profiler runs).
        """
        extra = {"profile": profile} if profile is not None else {}
        return self.record_event(
            "query",
            engine=engine,
            k=k,
            m=m,
            duration_ms=duration_ms,
            occurrences=occurrences,
            stats=stats.to_dict() if stats is not None else None,
            spans=spans,
            trace_id=trace_id,
            **extra,
        )

    # -- export ---------------------------------------------------------------

    def export(self, **meta: Any) -> dict:
        """One JSON-compatible document: spans + metrics + metadata."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "meta": meta,
            "spans": self.tracer.to_dicts(),
            "metrics": self.metrics.to_dict(),
        }

    def write_trace(self, path: str, **meta: Any) -> dict:
        """Write :meth:`export` to ``path`` as JSON; returns the document."""
        document = self.export(**meta)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        return document

    def render_summary(self) -> str:
        """Plain-text span tree plus metric summary of everything collected."""
        parts = []
        spans = self.tracer.to_dicts()
        if spans:
            parts.append("spans\n-----\n" + render_span_tree(spans))
        if len(self.metrics):
            parts.append("metrics\n-------\n" + self.metrics.render_summary())
        return "\n\n".join(parts) if parts else "(no trace data collected)"


def load_trace(path: str) -> dict:
    """Read and validate a trace document written by :meth:`Observability.write_trace`.

    Validation happens up front — a malformed file, a foreign format, or
    a trace written by a *newer* format version raises
    :class:`MetricError` naming what was found, instead of surfacing as
    an opaque ``KeyError`` deep inside replay/rendering.
    """
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise MetricError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise MetricError(
            f"{path} is not a {TRACE_FORMAT} document "
            f"(top level is {type(document).__name__}, expected object)"
        )
    found_format = document.get("format")
    if found_format != TRACE_FORMAT:
        raise MetricError(
            f"{path} is not a {TRACE_FORMAT} document (format={found_format!r})"
        )
    found_version = document.get("version")
    if not isinstance(found_version, int) or found_version > TRACE_VERSION:
        raise MetricError(
            f"{path} has unsupported {TRACE_FORMAT} version {found_version!r} "
            f"(this build reads versions <= {TRACE_VERSION})"
        )
    return document


#: Validated trace loading, exposed on the class so callers holding an
#: Observability instance need no extra import.
Observability.load = staticmethod(load_trace)


def render_trace(document: dict) -> str:
    """Plain-text rendering of a loaded trace document."""
    parts = []
    meta = document.get("meta") or {}
    if meta:
        parts.append(" ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    spans = document.get("spans") or []
    if spans:
        parts.append("spans\n-----\n" + render_span_tree(spans))
    metrics = document.get("metrics") or {}
    if metrics:
        parts.append("metrics\n-------\n" + render_metrics(metrics))
    return "\n\n".join(parts) if parts else "(empty trace)"


#: The process-wide observability singleton used by all instrumented code.
OBS = Observability()

__all__ = [
    "OBS",
    "Observability",
    "Tracer",
    "Span",
    "Timer",
    "NULL_SPAN",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "LABELS_DROPPED_METRIC",
    "freeze_labels",
    "iter_series",
    "family_payload",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "load_trace",
    "render_trace",
    "render_span_tree",
    "render_metrics",
    # export / aggregation (repro.obs.export)
    "OPENMETRICS_CONTENT_TYPE",
    "render_openmetrics",
    "sanitize_metric_name",
    "metrics_delta",
    "merge_metrics",
    "merge_obs_delta",
    "ObsDelta",
    "fetch_metrics_json",
    # SLO engine + error accounting (repro.obs.slo)
    "QUERY_ERRORS_METRIC",
    "WORKER_STALLED_METRIC",
    "DEFAULT_RULES_TOML",
    "classify_error",
    "count_query_error",
    "record_query_error",
    "Objective",
    "AlertPolicy",
    "SLORules",
    "lint_rules",
    "load_rules",
    "default_rules",
    "evaluate_objective",
    "evaluate_payload",
    "AlertManager",
    "SLOEngine",
    "get_slo_engine",
    "configure_slo_engine",
    # deep health / readiness (repro.obs.health)
    "HealthMonitor",
    "READINESS",
    "index_canary",
    # flight recorder / event log (repro.obs.recorder)
    "FlightRecorder",
    "EventLog",
    "DEFAULT_SLOW_MS",
    "make_record",
    "new_trace_id",
    "prune_span_tree",
    "load_events",
    "render_records",
    # time-series store (repro.obs.timeseries)
    "TimeSeriesStore",
    "get_timeseries",
    "configure_timeseries",
    # wide-event query log (repro.obs.events)
    "WIDE_EVENT_FORMAT",
    "WIDE_EVENT_VERSION",
    "WideEventLog",
    "make_wide_event",
    "sample_keep",
    "load_wide_events",
    "tail_events",
    "summarize_events",
    "render_event_summary",
    "render_event_lines",
    # live stream + dashboard (repro.obs.stream / repro.obs.top)
    "STREAM_FORMAT",
    "STREAM_VERSION",
    "StreamBroker",
    "get_broker",
    "configure_broker",
    "format_sse",
    "parse_sse",
    "iter_sse_frames",
    "DASHBOARD_FORMAT",
    "compute_dashboard",
    "render_dashboard",
    # sampling / memory profiler (repro.obs.profiling)
    "PROFILER",
    "Profiler",
    "Profile",
    "SpanAttributer",
    "MemoryProfile",
    "MEMORY_PROFILES",
    "profile_memory",
    "set_memory_profiling",
    "memory_profiling_enabled",
    "write_profile",
    "render_top",
]
