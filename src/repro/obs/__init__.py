"""Observability: tracing, metrics, and trace-file export.

This package is the engine's measurement substrate.  Every layer —
FM-index construction, rank backends, the tree searchers, the facade,
the benchmark suite, the CLI — reports through the one process-wide
:data:`OBS` singleton, so a single switch turns the whole pipeline's
instrumentation on and a single export captures it.

Quickstart
----------
>>> from repro.obs import OBS
>>> OBS.reset(); OBS.enable()
>>> from repro import KMismatchIndex
>>> index = KMismatchIndex("acagaca")
>>> _ = index.search("tcaca", k=2)
>>> OBS.disable()
>>> any(s.name == "kmismatch.search" for s in OBS.tracer.iter_finished())
True
>>> OBS.metrics.counter("rank.rankall.occ_probes").value > 0
True

Instrumented code follows two rules:

* **Per-region work** (a build phase, one query) opens a span:
  ``with OBS.span("fmindex.build", length=n): ...`` — `span()` returns a
  shared no-op when disabled.
* **Per-operation work** (a rank probe, an LF step) guards with the
  ``enabled`` flag: ``if OBS.enabled: OBS.metrics.counter(...).inc()`` —
  one attribute read on the disabled path.

The trace-file format written by :meth:`Observability.export` /
``repro-cli --stats-json`` is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricError,
    MetricsRegistry,
    render_metrics,
)
from .tracing import NULL_SPAN, Span, Timer, Tracer, render_span_tree

#: Identifier written into every exported trace document.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class Observability:
    """The paired tracer + metrics registry behind :data:`OBS`.

    ``enabled`` gates *everything*: spans collapse to a no-op singleton
    and hot-path counter updates are skipped entirely.  The flag is a
    plain attribute so the disabled check is one load — the overhead
    budget the test suite enforces.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self):
        self.tracer = Tracer(enabled=False)
        self.metrics = MetricsRegistry()
        self.enabled = False

    # -- switches -------------------------------------------------------------

    def enable(self) -> "Observability":
        """Turn on span collection and metric updates."""
        self.enabled = True
        self.tracer.enabled = True
        return self

    def disable(self) -> "Observability":
        """Turn instrumentation off (collected data is kept)."""
        self.enabled = False
        self.tracer.enabled = False
        return self

    def reset(self) -> "Observability":
        """Drop all collected spans and metrics (enabled state unchanged)."""
        self.tracer.reset()
        self.metrics.reset()
        return self

    # -- convenience forwarding ----------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A tracer span (the shared no-op singleton when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs, self.tracer)

    def timed(self, name: str, **attrs: Any) -> Timer:
        """An always-on stopwatch that is also a span when enabled."""
        return Timer(self.span(name, **attrs))

    def observe(self, name: str, value: float, buckets=LATENCY_BUCKETS_MS) -> None:
        """Record a histogram observation iff enabled."""
        if self.enabled:
            self.metrics.histogram(name, buckets).observe(value)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter iff enabled."""
        if self.enabled:
            self.metrics.counter(name).inc(n)

    # -- export ---------------------------------------------------------------

    def export(self, **meta: Any) -> dict:
        """One JSON-compatible document: spans + metrics + metadata."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "meta": meta,
            "spans": self.tracer.to_dicts(),
            "metrics": self.metrics.to_dict(),
        }

    def write_trace(self, path: str, **meta: Any) -> dict:
        """Write :meth:`export` to ``path`` as JSON; returns the document."""
        document = self.export(**meta)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        return document

    def render_summary(self) -> str:
        """Plain-text span tree plus metric summary of everything collected."""
        parts = []
        spans = self.tracer.to_dicts()
        if spans:
            parts.append("spans\n-----\n" + render_span_tree(spans))
        if len(self.metrics):
            parts.append("metrics\n-------\n" + self.metrics.render_summary())
        return "\n\n".join(parts) if parts else "(no trace data collected)"


def load_trace(path: str) -> dict:
    """Read and validate a trace document written by :meth:`Observability.write_trace`."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("format") != TRACE_FORMAT:
        raise MetricError(f"{path} is not a {TRACE_FORMAT} document")
    return document


def render_trace(document: dict) -> str:
    """Plain-text rendering of a loaded trace document."""
    parts = []
    meta = document.get("meta") or {}
    if meta:
        parts.append(" ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    spans = document.get("spans") or []
    if spans:
        parts.append("spans\n-----\n" + render_span_tree(spans))
    metrics = document.get("metrics") or {}
    if metrics:
        parts.append("metrics\n-------\n" + render_metrics(metrics))
    return "\n\n".join(parts) if parts else "(empty trace)"


#: The process-wide observability singleton used by all instrumented code.
OBS = Observability()

__all__ = [
    "OBS",
    "Observability",
    "Tracer",
    "Span",
    "Timer",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "load_trace",
    "render_trace",
    "render_span_tree",
    "render_metrics",
]
