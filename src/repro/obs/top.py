"""Dashboard computation and rendering for ``repro-cli top``.

:func:`compute_dashboard` is a **pure function** from one metrics
payload (:meth:`~repro.obs.metrics.MetricsRegistry.to_dict` JSON — a
live registry, a saved trace's ``metrics`` section, or a scrape of
``/debug/metrics``) to the JSON document the dashboard renders: QPS,
latency percentiles, error rate, worker utilization, arena spill rate,
per-``{engine,k}`` and per-``{shard}`` breakdowns, and alert states.

The same function backs two surfaces, which is what makes their numbers
consistent by construction:

* the ``/debug/stream`` SSE publisher embeds its output in every
  ``metrics`` frame (see :mod:`repro.obs.stream`);
* ``repro-cli top`` renders it — from a trace file, from a live
  registry, or from the frames a ``--url`` stream delivers.

:func:`render_dashboard` is the ANSI terminal rendering (plain text
when ``color=False`` — the ``--once`` headless mode).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .metrics import Histogram, LabelTuple, iter_series

#: Format tag on every dashboard document.
DASHBOARD_FORMAT = "repro-dashboard"

#: Dashboard schema version.
DASHBOARD_VERSION = 1


def _family_series(payload: Optional[Dict[str, dict]],
                   family: str) -> List[Tuple[LabelTuple, dict]]:
    """Every ``(label_tuple, series)`` of one family ([] when absent)."""
    fam = (payload or {}).get(family)
    if not isinstance(fam, dict):
        return []
    return iter_series(fam)


def _matches(labels: LabelTuple, where: Dict[str, Any]) -> bool:
    """Whether a frozen label tuple carries every ``where`` pair."""
    have = dict(labels)
    return all(have.get(key) == str(value) for key, value in where.items())


def counter_total(payload: Optional[Dict[str, dict]], family: str,
                  where: Optional[Dict[str, Any]] = None,
                  flat_only: bool = False) -> float:
    """Summed counter value across matching series.

    ``flat_only`` selects exactly the unlabelled base series (the
    family total for families that keep one, like ``query.count``);
    otherwise every series matching the ``where`` label subset is
    summed (families without a base, like ``query.errors``).
    """
    series_list = _family_series(payload, family)
    if flat_only:
        return sum(s.get("value", 0) for labels, s in series_list
                   if labels == ())
    has_children = any(labels != () for labels, _ in series_list)
    total = 0.0
    for labels, series in series_list:
        if labels == ():
            # A base total next to labelled children would double-count
            # them; and a label-subset query never matches the base.
            if has_children or where:
                continue
        elif where and not _matches(labels, where):
            continue
        total += series.get("value", 0)
    return total


def gauge_value(payload: Optional[Dict[str, dict]], family: str,
                default: float = 0.0) -> float:
    """The unlabelled gauge level of ``family`` (``default`` when absent)."""
    for labels, series in _family_series(payload, family):
        if labels == ():
            return series.get("value", default)
    return default


def merged_histogram(payload: Optional[Dict[str, dict]], family: str,
                     where: Optional[Dict[str, Any]] = None
                     ) -> Optional[Histogram]:
    """A detached merge of every matching histogram series (or None)."""
    merged: Optional[Histogram] = None
    for labels, series in _family_series(payload, family):
        if series.get("type") != "histogram":
            continue
        if where is not None and not _matches(labels, where):
            continue
        if where is None and labels != ():
            continue
        h = Histogram(family, series.get("buckets") or (1,))
        h.counts = list(series.get("counts") or h.counts)
        h.count = series.get("count", 0)
        h.total = series.get("sum", 0.0)
        h.min = series.get("min")
        h.max = series.get("max")
        if merged is None:
            merged = h
        elif merged.buckets == h.buckets:
            merged.merge(h)
    return merged


def _percentiles(histogram: Optional[Histogram]) -> Dict[str, float]:
    if histogram is None or histogram.count == 0:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    return {
        "p50_ms": round(histogram.percentile(50), 3),
        "p95_ms": round(histogram.percentile(95), 3),
        "p99_ms": round(histogram.percentile(99), 3),
    }


def _group_keys(payload: Optional[Dict[str, dict]], family: str,
                keys: Tuple[str, ...]) -> List[Dict[str, str]]:
    """Distinct label-value combinations for ``keys`` across a family."""
    seen: Dict[Tuple[str, ...], Dict[str, str]] = {}
    for labels, _ in _family_series(payload, family):
        have = dict(labels)
        if not all(key in have for key in keys):
            continue
        values = tuple(have[key] for key in keys)
        seen.setdefault(values, {key: have[key] for key in keys})
    return [seen[values] for values in sorted(seen)]


def compute_dashboard(payload: Optional[Dict[str, dict]],
                      window_s: Optional[float] = None,
                      alerts: Optional[List[dict]] = None) -> Dict[str, Any]:
    """The dashboard document for one cumulative metrics payload.

    ``window_s`` is the seconds the payload's counters accumulated over
    (process uptime for a live registry, run duration for a trace) —
    the divisor behind QPS and utilization; when omitted, the payload's
    own ``process.uptime_s`` gauge serves.  Rates degrade to 0 rather
    than dividing by zero.  ``alerts`` is the ``/alerts``-shaped state
    list to pass through (the stream publisher supplies it).
    """
    uptime = gauge_value(payload, "process.uptime_s")
    if window_s is None or window_s <= 0:
        window_s = uptime
    window_s = max(0.0, float(window_s or 0.0))

    queries = counter_total(payload, "query.count", flat_only=True)
    errors = counter_total(payload, "query.errors")
    latency = merged_histogram(payload, "query.latency_ms")
    workers = gauge_value(payload, "engine.pool.workers")
    busy_ms = counter_total(payload, "engine.worker.busy_ms")
    arena_records = counter_total(payload, "engine.arena.records")
    arena_spills = counter_total(payload, "engine.arena.spills")

    utilization = 0.0
    if window_s > 0:
        utilization = busy_ms / (window_s * 1000.0 * max(1.0, workers))

    by_engine = []
    for group in _group_keys(payload, "query.search_ms", ("engine", "k")):
        where = {"engine": group["engine"], "k": group["k"]}
        h = merged_histogram(payload, "query.search_ms", where)
        n = counter_total(payload, "query.count", where)
        row = {
            "engine": group["engine"],
            "k": int(group["k"]) if group["k"].isdigit() else group["k"],
            "queries": n,
            "qps": round(n / window_s, 3) if window_s > 0 else 0.0,
            "occurrences": counter_total(payload, "query.occurrences", where),
            "errors": counter_total(payload, "query.errors", where),
        }
        row.update(_percentiles(h))
        by_engine.append(row)

    by_shard = []
    for group in _group_keys(payload, "query.shard_ms", ("shard",)):
        where = {"shard": group["shard"]}
        h = merged_histogram(payload, "query.shard_ms", where)
        row = {
            "shard": int(group["shard"]) if group["shard"].isdigit()
            else group["shard"],
            "queries": h.count if h else 0,
            "occurrences": counter_total(
                payload, "query.shard_occurrences", where
            ),
        }
        row.update(_percentiles(h))
        by_shard.append(row)

    return {
        "format": DASHBOARD_FORMAT,
        "version": DASHBOARD_VERSION,
        "window_s": round(window_s, 3),
        "uptime_s": round(uptime, 3),
        "rss_bytes": int(gauge_value(payload, "process.rss_bytes")),
        "queries": queries,
        "qps": round(queries / window_s, 3) if window_s > 0 else 0.0,
        "errors": errors,
        "error_rate": round(errors / queries, 6) if queries > 0 else 0.0,
        "latency_ms": _percentiles(latency),
        "workers": workers,
        "utilization": round(min(1.0, utilization), 4),
        "arena": {
            "records": arena_records,
            "spills": arena_spills,
            "spill_rate": round(arena_spills / arena_records, 6)
            if arena_records > 0 else 0.0,
        },
        "by_engine": by_engine,
        "by_shard": by_shard,
        "alerts": list(alerts or []),
    }


# -- rendering ---------------------------------------------------------------------

_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"

#: ANSI clear-screen + home, prepended by the live ``top`` loop.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


def render_dashboard(dashboard: Dict[str, Any], color: bool = True) -> str:
    """Terminal rendering of one :func:`compute_dashboard` document."""
    latency = dashboard.get("latency_ms") or {}
    arena = dashboard.get("arena") or {}
    error_rate = dashboard.get("error_rate", 0.0)
    err_code = _RED if error_rate > 0.01 else _GREEN
    lines = [
        _paint("repro top", _BOLD, color)
        + f"  window {dashboard.get('window_s', 0):g}s"
        + f"  uptime {dashboard.get('uptime_s', 0):g}s"
        + f"  rss {_human_bytes(dashboard.get('rss_bytes', 0))}",
        f"qps {dashboard.get('qps', 0):g}"
        f"  queries {dashboard.get('queries', 0):g}"
        f"  errors {dashboard.get('errors', 0):g} "
        + _paint(f"({error_rate:.2%})", err_code, color)
        + f"  p50 {latency.get('p50_ms', 0):g}ms"
        f"  p95 {latency.get('p95_ms', 0):g}ms"
        f"  p99 {latency.get('p99_ms', 0):g}ms",
        f"workers {dashboard.get('workers', 0):g}"
        f"  utilization {dashboard.get('utilization', 0):.1%}"
        f"  arena records {arena.get('records', 0):g}"
        f" spills {arena.get('spills', 0):g}"
        f" ({arena.get('spill_rate', 0):.2%})",
    ]
    alerts = dashboard.get("alerts") or []
    firing = [a for a in alerts if a.get("state") == "firing"]
    if firing:
        names = ", ".join(a.get("objective", "?") for a in firing)
        lines.append(_paint(f"ALERTS FIRING: {names}", _RED + _BOLD, color))
    elif alerts:
        lines.append(_paint(f"alerts: {len(alerts)} ok", _DIM, color))
    by_engine = dashboard.get("by_engine") or []
    if by_engine:
        header = (f"{'engine':<18} {'k':>2} {'queries':>8} {'qps':>8} "
                  f"{'occ':>8} {'err':>5} {'p50 ms':>9} {'p95 ms':>9} "
                  f"{'p99 ms':>9}")
        lines += ["", _paint(header, _BOLD, color), "-" * len(header)]
        for row in by_engine:
            lines.append(
                f"{row['engine']:<18} {row['k']:>2} {row['queries']:>8g} "
                f"{row['qps']:>8g} {row['occurrences']:>8g} "
                f"{row['errors']:>5g} {row['p50_ms']:>9.3f} "
                f"{row['p95_ms']:>9.3f} {row['p99_ms']:>9.3f}"
            )
    by_shard = dashboard.get("by_shard") or []
    if by_shard:
        header = (f"{'shard':>5} {'queries':>8} {'occ':>8} "
                  f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}")
        lines += ["", _paint(header, _BOLD, color), "-" * len(header)]
        for row in by_shard:
            lines.append(
                f"{row['shard']:>5} {row['queries']:>8g} "
                f"{row['occurrences']:>8g} {row['p50_ms']:>9.3f} "
                f"{row['p95_ms']:>9.3f} {row['p99_ms']:>9.3f}"
            )
    return "\n".join(lines)


__all__ = [
    "DASHBOARD_FORMAT",
    "DASHBOARD_VERSION",
    "CLEAR_SCREEN",
    "counter_total",
    "gauge_value",
    "merged_histogram",
    "compute_dashboard",
    "render_dashboard",
]
