"""Flight recorder and structured event log.

The metrics registry answers "how much, in total"; the flight recorder
answers "what just happened" — a bounded ring buffer of the most recent
per-query records (engine, ``k``, pattern length, duration, occurrence
count, the full :class:`~repro.core.types.SearchStats` dictionary, and
the query's span tree when tracing is on).  Queries slower than a
configurable threshold are additionally **pinned** into a separate
bounded list, so the interesting outliers survive long after the ring
has churned past them — the black-box-recorder property the name is
borrowed from.

The :class:`EventLog` is the streaming sibling: one JSON object per
line, appended as records arrive, so long benchmark runs and served
traffic leave a replayable, greppable trail (``repro-cli flightrecorder``
renders these files).

Both consume the same record dictionaries, produced by
:meth:`repro.obs.Observability.record_query` /
:meth:`~repro.obs.Observability.record_event`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, IO, List, Optional, Union

#: Ring-buffer capacity (recent records) — override via REPRO_FLIGHT_CAPACITY.
DEFAULT_CAPACITY = int(os.environ.get("REPRO_FLIGHT_CAPACITY", "256"))

#: Pinned-slow-record capacity.
DEFAULT_SLOW_CAPACITY = 64

#: Slow-query threshold in milliseconds — override via REPRO_SLOW_QUERY_MS.
DEFAULT_SLOW_MS = float(os.environ.get("REPRO_SLOW_QUERY_MS", "250"))


def new_trace_id() -> str:
    """A fresh 16-hex-char correlation id.

    One id per recorded query, shared between the flight-recorder record
    and the histogram exemplar the query's latency observation attaches
    (see :class:`~repro.obs.metrics.Histogram`), so a ``/metrics`` bucket
    annotation resolves to the record via ``/debug/queries?trace_id=...``.
    Random rather than sequential: ids stay unique across the processes
    of a pool batch without coordination.
    """
    return uuid.uuid4().hex[:16]


def prune_span_tree(span: Dict[str, Any], max_depth: int = 0, max_attrs: int = 0) -> Dict[str, Any]:
    """A bounded copy of one span-tree dict for flight-recorder storage.

    Deep engine traces (the S-tree expansion alone can nest dozens of
    levels with per-node attributes) make each record arbitrarily heavy;
    the recorder keeps hundreds of them.  ``max_depth`` keeps that many
    levels (1 = root only), ``max_attrs`` that many attributes per span
    (insertion order, i.e. the ones set at span entry); 0 means
    unlimited.  Whatever is cut is *marked*, not silently gone: a span
    whose subtree was dropped gains ``children_dropped`` (the number of
    descendants removed), one with trimmed attributes gains
    ``attrs_dropped``.  The input is never mutated.
    """

    def count_spans(node: Dict[str, Any]) -> int:
        return 1 + sum(count_spans(child) for child in node.get("children") or [])

    def walk(node: Dict[str, Any], depth_left: int) -> Dict[str, Any]:
        pruned = dict(node)
        attrs = node.get("attrs") or {}
        if max_attrs and len(attrs) > max_attrs:
            pruned["attrs"] = dict(list(attrs.items())[:max_attrs])
            pruned["attrs_dropped"] = len(attrs) - max_attrs
        children = node.get("children") or []
        if depth_left == 1 and children:
            pruned["children"] = []
            pruned["children_dropped"] = sum(count_spans(child) for child in children)
        else:
            pruned["children"] = [
                walk(child, depth_left - 1 if depth_left else 0) for child in children
            ]
        return pruned

    return walk(span, max_depth)


def make_record(
    event: str,
    *,
    engine: str = "",
    k: int = 0,
    m: int = 0,
    duration_ms: float = 0.0,
    occurrences: int = 0,
    stats: Optional[dict] = None,
    spans: Optional[dict] = None,
    trace_id: Optional[str] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """One flight-recorder/event-log record (plain JSON-compatible dict).

    ``event`` is ``"query"`` for single searches and ``"batch"`` for
    executor runs; ``spans`` is the query's span tree
    (:meth:`~repro.obs.tracing.Span.to_dict`) or ``None`` when tracing
    was off; ``trace_id`` (see :func:`new_trace_id`) is the correlation
    id histogram exemplars point at — omitted from the record when the
    producer did not mint one.

    Recorded span trees are bounded by ``REPRO_FLIGHT_SPAN_DEPTH`` /
    ``REPRO_FLIGHT_SPAN_ATTRS`` (see :func:`prune_span_tree`; 0 or unset
    = unlimited), so one deep trace cannot make every retained record
    heavyweight.
    """
    record: Dict[str, Any] = {
        "event": event,
        "ts": time.time(),
        "engine": engine,
        "k": k,
        "m": m,
        "duration_ms": round(float(duration_ms), 6),
        "occurrences": occurrences,
    }
    if trace_id:
        record["trace_id"] = trace_id
    if stats is not None:
        record["stats"] = stats
    if spans is not None:
        max_depth = int(os.environ.get("REPRO_FLIGHT_SPAN_DEPTH", "0") or 0)
        max_attrs = int(os.environ.get("REPRO_FLIGHT_SPAN_ATTRS", "0") or 0)
        if max_depth or max_attrs:
            spans = prune_span_tree(spans, max_depth, max_attrs)
        record["spans"] = spans
    record.update(extra)
    return record


class FlightRecorder:
    """Bounded ring of recent records plus a pinned list of slow ones.

    Parameters
    ----------
    capacity:
        Maximum recent records retained (oldest evicted first).
    slow_ms:
        Records with ``duration_ms`` at or above this are *also* pinned
        into the slow list; ``None`` disables pinning.
    slow_capacity:
        Bound on the pinned list (oldest pinned records evicted first —
        the recorder never grows without bound).

    Appends take a lock: recorders are shared by the threaded batch
    paths, and a deque append alone is atomic but the sequence counter
    update next to it is not.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_ms: Optional[float] = DEFAULT_SLOW_MS,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
    ):
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("flight recorder capacities must be positive")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.slow_capacity = slow_capacity
        self._recent: deque = deque(maxlen=capacity)
        self._slow: deque = deque(maxlen=slow_capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._recent)

    @property
    def total_recorded(self) -> int:
        """How many records have ever been appended (evicted ones included)."""
        return self._seq

    def record(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one record; returns it with its ``seq`` number set."""
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            record["slow"] = bool(
                self.slow_ms is not None
                and record.get("duration_ms", 0.0) >= self.slow_ms
            )
            self._recent.append(record)
            if record["slow"]:
                self._slow.append(record)
        return record

    def recent(self) -> List[Dict[str, Any]]:
        """The ring contents, oldest first."""
        with self._lock:
            return list(self._recent)

    def slow(self) -> List[Dict[str, Any]]:
        """The pinned slow records, oldest first (survive ring eviction)."""
        with self._lock:
            return list(self._slow)

    def slow_since(self, seq: int) -> List[Dict[str, Any]]:
        """Pinned slow records with ``seq`` strictly after ``seq``,
        oldest first — the incremental read the ``/debug/stream``
        publisher polls between frames."""
        with self._lock:
            return [record for record in self._slow
                    if record.get("seq", 0) > seq]

    def clear(self) -> None:
        """Drop every retained record (the sequence counter keeps counting)."""
        with self._lock:
            self._recent.clear()
            self._slow.clear()

    def find_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every retained record carrying ``trace_id`` (ring + pinned,
        deduplicated by ``seq``, oldest first) — the lookup behind
        ``/debug/queries?trace_id=...``, i.e. how a ``/metrics`` exemplar
        resolves to its full record.  A *batch* trace id matches too:
        worker-shipped per-query records carry their batch's id as
        ``batch_trace_id``, so one lookup returns the batch record plus
        every query record the batch produced."""
        matches: Dict[Any, Dict[str, Any]] = {}
        with self._lock:
            for record in list(self._recent) + list(self._slow):
                if (record.get("trace_id") == trace_id
                        or record.get("batch_trace_id") == trace_id):
                    matches[record.get("seq")] = record
        return [matches[seq] for seq in sorted(matches, key=lambda s: s or 0)]

    def to_dict(self) -> dict:
        """JSON document served by ``/debug/queries`` and the CLI dump."""
        return {
            "capacity": self.capacity,
            "slow_ms": self.slow_ms,
            "total_recorded": self.total_recorded,
            "recent": self.recent(),
            "slow": self.slow(),
        }

    def dump_jsonl(self, out: Union[str, IO[str]]) -> int:
        """Write every retained record as JSON lines (slow-but-evicted
        records included, deduplicated by ``seq``); returns line count."""
        recent = self.recent()
        seen = {record.get("seq") for record in recent}
        records = [r for r in self.slow() if r.get("seq") not in seen] + recent
        records.sort(key=lambda r: r.get("seq", 0))
        if isinstance(out, str):
            with open(out, "w") as handle:
                return self.dump_jsonl(handle)
        for record in records:
            out.write(json.dumps(record) + "\n")
        return len(records)


class EventLog:
    """Append-only JSON-lines sink for telemetry records.

    One :func:`make_record` dictionary per line; flushed per write so a
    killed process loses at most the current line.  Thread-safe.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "a")
        self._lock = threading.Lock()
        self.lines_written = 0

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one record (no-op after :meth:`close`)."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
            self.lines_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse an event-log / flight-recorder JSONL file (blank lines skipped)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def render_records(
    records: List[Dict[str, Any]], slow_only: bool = False, show_spans: bool = False
) -> str:
    """Aligned table of records for ``repro-cli flightrecorder``."""
    from .tracing import render_span_tree

    rows = [r for r in records if not slow_only or r.get("slow")]
    if not rows:
        return "(no records)"
    header = f"{'seq':>5}  {'event':<6} {'engine':<18} {'k':>2} {'m':>4} " \
             f"{'ms':>10} {'occ':>6}  flags"
    lines = [header, "-" * len(header)]
    for record in rows:
        flags = "SLOW" if record.get("slow") else ""
        lines.append(
            f"{record.get('seq', '-'):>5}  {record.get('event', '?'):<6} "
            f"{record.get('engine', '?'):<18} {record.get('k', '-'):>2} "
            f"{record.get('m', '-'):>4} {record.get('duration_ms', 0):>10.3f} "
            f"{record.get('occurrences', 0):>6}  {flags}"
        )
        if show_spans and record.get("spans"):
            tree = render_span_tree([record["spans"]])
            lines.extend("      " + line for line in tree.splitlines())
    return "\n".join(lines)
