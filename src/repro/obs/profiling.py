"""Span-attributed sampling profiler and memory profiles.

The metrics registry says *which* query/engine/k is slow; this module
says *which functions* burn the time.  :class:`Profiler` is a sampling
wall-clock profiler: a background daemon thread walks
``sys._current_frames()`` at a configurable rate, turns every thread's
frame chain into a root-first stack of ``module.function`` frames, and
aggregates identical stacks into counts — the classic collapsed/folded
representation flamegraph tooling consumes.

What makes it more useful than ``py-spy``-style output here is **span
attribution**: each sample is prefixed with a synthetic frame naming the
sampled thread's open span path (``span:kmismatch.search/algorithm_a.search``),
read from the tracer's per-thread stacks
(:meth:`repro.obs.tracing.Tracer.active_stack`).  Profiles therefore
break down by *phase* — build vs. rank vs. mtree vs. per-engine search —
not just by function, and the flamegraph's first level is the span tree
the rest of the observability stack already speaks.

Safety properties, in priority order:

1. **Off means off.**  Nothing starts at import; no sampling thread, no
   ``sys.setprofile`` hook, ever.  A disabled profiler costs exactly one
   attribute read at the few capture points that ask ``is_running()``
   (``tests/test_profiling.py`` pins the end-to-end overhead, mirroring
   the obs disabled-overhead guard).
2. **Hard caps.**  Sampling stops at ``max_samples`` samples or
   ``max_seconds`` of wall time, whichever comes first (the profile is
   marked ``truncated``), so a forgotten profiler cannot grow without
   bound.
3. **Idempotent lifecycle.**  ``start()`` while running is a no-op
   returning the active profile; ``stop()`` while stopped returns the
   last profile.

Exports: :meth:`Profile.to_folded` (``frame;frame;frame count`` lines —
``flamegraph.pl`` and speedscope both ingest them) and
:meth:`Profile.to_speedscope` (the speedscope JSON file format — drop it
on https://www.speedscope.app).  Worker processes ship their samples
home through the existing :class:`repro.obs.export.ObsDelta` payload;
:func:`merge_obs_delta` folds them into the parent's profile under a
``worker:<slot>`` root frame.

Memory is the second axis: :func:`profile_memory` wraps a region (the
index build) in ``tracemalloc``, publishing a ``<name>.peak_bytes``
gauge (``index.build.peak_bytes``) plus a top-allocator table.  It is
opt-in per-region (``tracemalloc`` is far too slow to leave on), gated
by :func:`set_memory_profiling` / ``REPRO_PROFILE_MEMORY``.

Environment knobs: ``REPRO_PROFILE_HZ`` (default 97 — a prime, so the
sampler cannot phase-lock with periodic work), ``REPRO_PROFILE_MAX_SAMPLES``
(default 200000), ``REPRO_PROFILE_MAX_SECONDS`` (default 600),
``REPRO_PROFILE_MEMORY`` (truthy enables :func:`profile_memory` regions).
"""

from __future__ import annotations

import os
import sys
import threading
import tracemalloc
from collections import deque
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from .tracing import Tracer

#: Fallback sampling rate (Hz) when neither the caller nor
#: ``REPRO_PROFILE_HZ`` says otherwise.  Prime, so the sampler drifts
#: relative to any periodic work instead of phase-locking with it.
DEFAULT_HZ = 97.0

#: Hard sample-count cap fallback (``REPRO_PROFILE_MAX_SAMPLES``).
DEFAULT_MAX_SAMPLES = 200_000

#: Hard wall-clock cap fallback, seconds (``REPRO_PROFILE_MAX_SECONDS``).
DEFAULT_MAX_SECONDS = 600.0

#: Bounded ring of the most recent samples, used to attach "what ran
#: during this query" sub-profiles to slow flight-recorder records.
RECENT_SAMPLES = 4096

#: Schema identifier of the speedscope file format we emit.
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name, "")
    try:
        value = float(raw)
    except ValueError:
        return fallback
    return value if value > 0 else fallback


def _frame_label(code) -> str:
    """``module.function`` for one code object (file stem, not full path:
    stable across checkouts, and line numbers would explode one logical
    frame into dozens of distinct stacks)."""
    stem = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{stem}.{code.co_name}"


def _stack_of(frame, limit: int = 256) -> Tuple[str, ...]:
    """The root-first frame-label stack behind one ``sys._current_frames``
    entry (depth-capped so a runaway recursion cannot bloat every sample)."""
    labels: List[str] = []
    while frame is not None and len(labels) < limit:
        labels.append(_frame_label(frame.f_code))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SpanAttributer:
    """Maps a sampled thread id to its synthetic span frame.

    The frame is the thread's open span path joined with ``/`` and
    prefixed ``span:`` — e.g. ``span:kmismatch.search/algorithm_a.search``
    — and is prepended to the sample's stack, so every flamegraph root
    is a phase of the pipeline.  Threads with no open span fall under
    ``span:(none)`` rather than being dropped: unattributed time is a
    finding, not noise.
    """

    #: Synthetic root for samples taken outside any span.
    NO_SPAN = "span:(none)"

    def __init__(self, tracer: Optional[Tracer] = None):
        self._tracer = tracer

    def _resolve_tracer(self) -> Optional[Tracer]:
        if self._tracer is not None:
            return self._tracer
        from . import OBS  # late: avoid package-import cycle

        return OBS.tracer

    def frame_for(self, thread_id: int) -> str:
        """The ``span:...`` frame for one sampled thread id."""
        tracer = self._resolve_tracer()
        stack = tracer.active_stack(thread_id) if tracer is not None else []
        if not stack:
            return self.NO_SPAN
        return "span:" + "/".join(span.name for span in stack)


class Profile:
    """One aggregated sample set: folded stack counts plus metadata.

    ``counts`` maps a root-first frame tuple to how many samples landed
    on it.  All exporters and the cross-process merge operate on this
    one structure.
    """

    __slots__ = ("counts", "n_samples", "wall_seconds", "hz", "truncated", "meta")

    def __init__(self, hz: float = DEFAULT_HZ, meta: Optional[dict] = None):
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0
        self.wall_seconds = 0.0
        self.hz = hz
        self.truncated = False
        self.meta: Dict[str, Any] = dict(meta or {})

    def add(self, frames: Tuple[str, ...], n: int = 1) -> None:
        """Fold ``n`` samples of one stack into the profile."""
        self.counts[frames] = self.counts.get(frames, 0) + n
        self.n_samples += n

    def merge(self, other: "Profile", prefix: Optional[str] = None) -> None:
        """Fold ``other`` into this profile, optionally rooting every
        incoming stack under a synthetic ``prefix`` frame (how per-worker
        sub-profiles become one tree: ``prefix="worker:0"``)."""
        for frames, count in other.counts.items():
            if prefix is not None:
                frames = (prefix,) + frames
            self.counts[frames] = self.counts.get(frames, 0) + count
        self.n_samples += other.n_samples
        self.truncated = self.truncated or other.truncated

    # -- exporters -----------------------------------------------------------

    def to_folded(self) -> str:
        """Collapsed-stack lines: ``frame;frame;frame count``, sorted for
        deterministic output.  Empty profile renders as an empty string."""
        lines = [
            ";".join(frames) + f" {count}"
            for frames, count in sorted(self.counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro profile") -> dict:
        """The speedscope JSON document for this profile.

        Sampled-profile flavour: one shared frame table, each sample a
        root-first list of frame indices weighted by its fold count in
        seconds (``count / hz``), so the time axis reads as wall time.
        """
        frame_index: Dict[str, int] = {}
        samples: List[List[int]] = []
        weights: List[float] = []
        period = 1.0 / self.hz if self.hz > 0 else 1.0
        for frames, count in sorted(self.counts.items()):
            row = []
            for label in frames:
                if label not in frame_index:
                    frame_index[label] = len(frame_index)
                row.append(frame_index[label])
            samples.append(row)
            weights.append(count * period)
        total = sum(weights)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "shared": {"frames": [{"name": label} for label in frame_index]},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    # -- cross-process form --------------------------------------------------

    def to_dict(self) -> dict:
        """Picklable/JSON form (stacks joined with ``;``) for the
        :class:`~repro.obs.export.ObsDelta` payload."""
        return {
            "folded": {";".join(frames): count for frames, count in self.counts.items()},
            "n_samples": self.n_samples,
            "wall_seconds": self.wall_seconds,
            "hz": self.hz,
            "truncated": self.truncated,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Profile":
        """Rebuild a profile from :meth:`to_dict` output."""
        profile = cls(
            hz=float(payload.get("hz") or DEFAULT_HZ),
            meta=dict(payload.get("meta") or {}),
        )
        for folded, count in (payload.get("folded") or {}).items():
            profile.counts[tuple(folded.split(";"))] = int(count)
        profile.n_samples = int(payload.get("n_samples") or sum(profile.counts.values()))
        profile.wall_seconds = float(payload.get("wall_seconds") or 0.0)
        profile.truncated = bool(payload.get("truncated"))
        return profile

    def top(self, n: int = 10) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``n`` heaviest stacks, heaviest first."""
        return sorted(self.counts.items(), key=lambda item: -item[1])[:n]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profile({self.n_samples} samples, {len(self.counts)} stacks, "
            f"{self.hz}Hz{', truncated' if self.truncated else ''})"
        )


class Profiler:
    """The sampling wall-clock profiler (one module singleton:
    :data:`PROFILER`).

    Lifecycle::

        PROFILER.start(hz=97)        # idempotent; spawns the sampler thread
        ... workload ...
        profile = PROFILER.stop()    # idempotent; joins the thread
        open("out.folded", "w").write(profile.to_folded())

    The sampler walks every live thread except itself; each sample is
    span-attributed through :class:`SpanAttributer` and folded into
    :attr:`profile`.  A bounded ring of recent ``(seq, stack)`` pairs
    backs :meth:`folded_since`, the hook slow-query pinning uses to
    attach "what ran during this query" to a flight-recorder record
    without copying the whole profile per query.
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.attributer = SpanAttributer(tracer)
        self.profile: Optional[Profile] = None
        self.hz = 0.0
        self.max_samples = DEFAULT_MAX_SAMPLES
        self.max_seconds = DEFAULT_MAX_SECONDS
        self._seq = 0
        self._recent: deque = deque(maxlen=RECENT_SAMPLES)

    # -- lifecycle -----------------------------------------------------------

    def is_running(self) -> bool:
        """Whether the sampler thread is alive (one attribute chain — the
        cost a disabled profiler imposes on capture points)."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(
        self,
        hz: Optional[float] = None,
        max_samples: Optional[int] = None,
        max_seconds: Optional[float] = None,
        meta: Optional[dict] = None,
    ) -> Profile:
        """Begin sampling; returns the (fresh) active profile.

        Already running: a no-op returning the active profile, so nested
        ``--profile`` surfaces cannot double-start.  Caps and rate
        default to the ``REPRO_PROFILE_*`` environment knobs.
        """
        with self._lock:
            if self.is_running():
                return self.profile
            self.hz = float(hz) if hz else _env_float("REPRO_PROFILE_HZ", DEFAULT_HZ)
            self.max_samples = int(
                max_samples
                if max_samples
                else _env_float("REPRO_PROFILE_MAX_SAMPLES", DEFAULT_MAX_SAMPLES)
            )
            self.max_seconds = float(
                max_seconds
                if max_seconds
                else _env_float("REPRO_PROFILE_MAX_SECONDS", DEFAULT_MAX_SECONDS)
            )
            self.profile = Profile(hz=self.hz, meta=meta)
            self._recent.clear()
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
            return self.profile

    def stop(self) -> Optional[Profile]:
        """Stop sampling and return the collected profile.

        Not running: a no-op returning whatever was last collected (or
        None if the profiler never started).
        """
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None and thread.is_alive():
            self._stop.set()
            thread.join(timeout=5.0)
        return self.profile

    # -- sampling loop -------------------------------------------------------

    def _run(self) -> None:
        profile = self.profile
        started = perf_counter()
        interval = 1.0 / self.hz if self.hz > 0 else 0.01
        own_id = threading.get_ident()
        samples_counter = self._bound_counter("profile.samples")
        truncated_counter = self._bound_counter("profile.truncated")
        while not self._stop.wait(interval):
            if (
                profile.n_samples >= self.max_samples
                or perf_counter() - started >= self.max_seconds
            ):
                profile.truncated = True
                if truncated_counter is not None:
                    truncated_counter.inc()
                break
            frames_by_thread = sys._current_frames()
            with self._lock:
                for thread_id, frame in frames_by_thread.items():
                    if thread_id == own_id:
                        continue
                    stack = (self.attributer.frame_for(thread_id),) + _stack_of(frame)
                    profile.add(stack)
                    self._seq += 1
                    self._recent.append((self._seq, stack))
                    if samples_counter is not None:
                        samples_counter.inc()
                    if profile.n_samples >= self.max_samples:
                        break
            del frames_by_thread  # drop frame refs promptly
        profile.wall_seconds = perf_counter() - started

    @staticmethod
    def _bound_counter(name: str):
        """A prebound registry counter (None if the obs package is in a
        state where binding fails — the sampler must never crash)."""
        try:
            from . import OBS

            return OBS.metrics.counter(name)
        except Exception:  # pragma: no cover - defensive
            return None

    # -- snapshots / attribution ---------------------------------------------

    def marker(self) -> int:
        """An opaque position in the sample stream; pair with
        :meth:`folded_since` to ask "what was sampled after this point"."""
        return self._seq

    def folded_since(self, marker: int) -> Dict[str, int]:
        """Folded counts of the ring samples newer than ``marker``.

        Bounded by :data:`RECENT_SAMPLES`, so attaching a sub-profile to
        a slow query costs O(ring), not O(profile).
        """
        out: Dict[str, int] = {}
        with self._lock:
            recent = list(self._recent)
        for seq, stack in recent:
            if seq > marker:
                key = ";".join(stack)
                out[key] = out.get(key, 0) + 1
        return out

    def counts_snapshot(self) -> Dict[Tuple[str, ...], int]:
        """A copy of the active profile's counts (ObsDelta capture point)."""
        with self._lock:
            profile = self.profile
            return dict(profile.counts) if profile is not None else {}

    def delta_payload(
        self, before: Dict[Tuple[str, ...], int]
    ) -> Optional[dict]:
        """What was sampled since ``before`` (:meth:`counts_snapshot`), as
        a :meth:`Profile.to_dict`-shaped payload — what one worker chunk
        ships home.  None when nothing new was sampled."""
        with self._lock:
            profile = self.profile
            if profile is None:
                return None
            folded: Dict[str, int] = {}
            total = 0
            for frames, count in profile.counts.items():
                new = count - before.get(frames, 0)
                if new > 0:
                    folded[";".join(frames)] = new
                    total += new
            if not total:
                return None
            return {
                "folded": folded,
                "n_samples": total,
                "hz": profile.hz,
                "truncated": profile.truncated,
                "meta": dict(profile.meta),
            }

    def adopt(self, payload: Optional[dict]) -> None:
        """Fold a worker's :meth:`delta_payload` into the local profile,
        rooted under a ``worker:<slot>`` frame (``worker`` from the
        payload's ``meta``).  No local profile (profiler never started):
        the payload is dropped — the parent did not ask for a profile."""
        if not payload:
            return
        with self._lock:
            profile = self.profile
            if profile is None:
                return
            incoming = Profile.from_dict(payload)
            worker = incoming.meta.get("worker")
            prefix = f"worker:{worker}" if worker is not None else None
            profile.merge(incoming, prefix=prefix)

    def capture(
        self, seconds: float, hz: Optional[float] = None
    ) -> Profile:
        """A blocking one-shot capture on a *private* profiler instance
        (the ``/debug/pprof?seconds=N`` path) — does not disturb the
        singleton's state."""
        sampler = Profiler(self.attributer._tracer)
        sampler.start(hz=hz, max_seconds=max(seconds, 0.05))
        threading.Event().wait(seconds)
        return sampler.stop()


#: The process-wide profiler singleton (off until ``start()``).
PROFILER = Profiler()


# -- memory profiles -------------------------------------------------------------

#: Module switch for :func:`profile_memory` regions; see
#: :func:`set_memory_profiling`.  Seeded from ``REPRO_PROFILE_MEMORY``.
_MEMORY_ACTIVE = os.environ.get("REPRO_PROFILE_MEMORY", "") not in ("", "0", "false")

#: Retained :class:`MemoryProfile` results, newest last (bounded).
MEMORY_PROFILES: deque = deque(maxlen=32)


def set_memory_profiling(active: bool) -> None:
    """Turn :func:`profile_memory` regions on/off process-wide.

    ``tracemalloc`` multiplies allocation cost, so this is a deliberate
    switch (CLI ``--profile``/``profile --memory``, or the
    ``REPRO_PROFILE_MEMORY`` environment variable), never a default.
    """
    global _MEMORY_ACTIVE
    _MEMORY_ACTIVE = bool(active)


def memory_profiling_enabled() -> bool:
    """Whether :func:`profile_memory` regions currently collect."""
    return _MEMORY_ACTIVE


class MemoryProfile:
    """One region's ``tracemalloc`` result: peak bytes + top allocators."""

    __slots__ = ("name", "peak_bytes", "current_bytes", "top")

    def __init__(self, name: str):
        self.name = name
        self.peak_bytes = 0
        self.current_bytes = 0
        #: ``[{"site": "file:lineno", "bytes": n, "blocks": n}, ...]``
        self.top: List[dict] = []

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "peak_bytes": self.peak_bytes,
            "current_bytes": self.current_bytes,
            "top": list(self.top),
        }

    def render(self) -> str:
        """Plain-text top-allocator table."""
        lines = [
            f"{self.name}: peak {self.peak_bytes} bytes "
            f"(current {self.current_bytes})"
        ]
        for entry in self.top:
            lines.append(
                f"  {entry['bytes']:>12} B  {entry['blocks']:>8} blocks  {entry['site']}"
            )
        return "\n".join(lines)


class profile_memory:
    """Context manager: ``tracemalloc`` snapshot around one region.

    No-op (two attribute reads) unless memory profiling is switched on —
    see :func:`set_memory_profiling`.  On exit it publishes a
    ``<name>.peak_bytes`` gauge (``index.build.peak_bytes`` for the
    index-build region) and appends a :class:`MemoryProfile` with the
    ``top_n`` heaviest allocation sites to :data:`MEMORY_PROFILES`.
    """

    def __init__(self, name: str, top_n: int = 10):
        self.name = name
        self.top_n = top_n
        self.result: Optional[MemoryProfile] = None
        self._started_here = False
        self._active = False

    def __enter__(self) -> "profile_memory":
        if not _MEMORY_ACTIVE:
            return self
        self._active = True
        self._started_here = not tracemalloc.is_tracing()
        if self._started_here:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        current, peak = tracemalloc.get_traced_memory()
        result = MemoryProfile(self.name)
        result.current_bytes = current
        result.peak_bytes = peak
        try:
            snapshot = tracemalloc.take_snapshot()
            for stat in snapshot.statistics("lineno")[: self.top_n]:
                frame = stat.traceback[0]
                site = f"{os.path.basename(frame.filename)}:{frame.lineno}"
                result.top.append(
                    {"site": site, "bytes": stat.size, "blocks": stat.count}
                )
        finally:
            if self._started_here:
                tracemalloc.stop()
        self.result = result
        MEMORY_PROFILES.append(result)
        try:
            from . import OBS

            OBS.metrics.gauge(f"{self.name}.peak_bytes").set(result.peak_bytes)
        except Exception:  # pragma: no cover - defensive
            pass
        return False


def write_profile(profile: Profile, path: str, fmt: str = "folded") -> str:
    """Write ``profile`` to ``path`` in ``fmt`` (``folded``/``speedscope``);
    returns the path.  Shared by the CLI's ``profile`` subcommand and the
    ``--profile`` flag."""
    import json

    if fmt == "speedscope":
        body = json.dumps(profile.to_speedscope(), indent=2) + "\n"
    else:
        body = profile.to_folded()
    with open(path, "w") as handle:
        handle.write(body)
    return path


def render_top(profile: Profile, n: int = 10) -> str:
    """Plain-text summary of the heaviest stacks (CLI stderr footer)."""
    if not profile.counts:
        return "(no samples collected)"
    period_ms = 1e3 / profile.hz if profile.hz > 0 else 0.0
    lines = [
        f"{profile.n_samples} sample(s), {len(profile.counts)} distinct stack(s) "
        f"at {profile.hz:g} Hz"
        + (" [truncated: cap hit]" if profile.truncated else "")
    ]
    for frames, count in profile.top(n):
        leaf = frames[-1]
        root = frames[0]
        lines.append(f"  {count * period_ms:>9.1f} ms  {count:>6}  {root} ... {leaf}")
    return "\n".join(lines)
