"""Metric export formats and cross-process snapshot aggregation.

Two concerns live here, both pure functions over the JSON form of
:meth:`~repro.obs.metrics.MetricsRegistry.to_dict` (schema v2 — v1 flat
payloads parse identically, see :func:`~repro.obs.metrics.iter_series`):

* **OpenMetrics rendering** — :func:`render_openmetrics` turns the
  registry payload into the Prometheus/OpenMetrics text exposition
  format served by :mod:`repro.obs.server` on ``/metrics``.  Dotted
  metric names become underscore-separated (``rank.rankall.occ_probes``
  → ``rank_rankall_occ_probes``), counters gain the conventional
  ``_total`` suffix, histograms expand into cumulative
  ``_bucket{le="..."}`` series plus ``_sum`` / ``_count``, labelled
  children render as ``{label="value"}`` series under one ``# TYPE``
  header, and histogram buckets carrying an exemplar append the
  OpenMetrics ``# {trace_id="..."} value`` clause — the pointer a
  dashboard follows from a latency bucket to the flight-recorder record
  (``/debug/queries?trace_id=...``) holding that query's span tree.

* **Snapshot deltas and merging** — process-pool batch workers each
  accumulate into their *own* ``OBS`` singleton (a forked or spawned
  copy), so their counters would silently vanish when the pool shuts
  down.  :func:`metrics_delta` computes what one chunk added on top of a
  baseline snapshot (fork-safe: inherited pre-fork totals subtract out),
  and :func:`merge_metrics` folds such a delta back into the parent's
  registry.  Both operate per *series*, so labelled children survive the
  hop with their label sets intact.  :class:`ObsDelta` bundles the
  metric delta with the span trees and flight-recorder records the chunk
  finished, which is exactly the payload
  ``repro.engine.executor._pool_worker`` ships home.
"""

from __future__ import annotations

import math
import re
from time import perf_counter_ns, time_ns
from typing import Any, Dict, List, Optional, Tuple

from .metrics import (
    LabelTuple,
    MetricsRegistry,
    family_payload,
    histogram_from_payload,
    iter_series,
)
from .profiling import PROFILER

#: Content type the ``/metrics`` endpoint serves (Prometheus text format).
OPENMETRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Gauge: seconds since this module was first imported (process start,
#: to import-time resolution) — refreshed on every scrape/sample.
PROCESS_UPTIME_METRIC = "process.uptime_s"

#: Gauge: resident set size in bytes — refreshed on every scrape/sample.
PROCESS_RSS_METRIC = "process.rss_bytes"

_PROCESS_START_NS = time_ns()


def read_rss_bytes() -> int:
    """This process's resident set size in bytes (0 when unreadable).

    Linux reads ``VmRSS`` from ``/proc/self/status``; elsewhere the
    ``resource`` module's peak-RSS is the stand-in (kilobytes on Linux,
    bytes on macOS — normalized here).
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except Exception:
        return 0


def refresh_process_gauges(registry: MetricsRegistry) -> None:
    """Set the process-level gauges (uptime, RSS) on ``registry``.

    Called by the ``/metrics``/``/debug/metrics`` scrape handlers and by
    :meth:`~repro.obs.timeseries.TimeSeriesStore.sample`, so both the
    exposition and retained time-series snapshots carry fresh values.
    """
    registry.gauge(PROCESS_UPTIME_METRIC).set(
        round((time_ns() - _PROCESS_START_NS) / 1e9, 3)
    )
    registry.gauge(PROCESS_RSS_METRIC).set(read_rss_bytes())

_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_LEADING = re.compile(r"^[^a-zA-Z_:]")

_LABEL_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_NAME_LEADING = re.compile(r"^[^a-zA-Z_]")


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name for a dotted repro metric name.

    >>> sanitize_metric_name("rank.rankall.occ_probes")
    'rank_rankall_occ_probes'
    >>> sanitize_metric_name("9bad name")
    '_bad_name'
    """
    cleaned = _NAME_INVALID.sub("_", name)
    return _NAME_LEADING.sub("_", cleaned[:1]) + cleaned[1:] if cleaned else "_"


def sanitize_label_name(name: str) -> str:
    """A Prometheus-legal label name (no colons, unlike metric names)."""
    cleaned = _LABEL_NAME_INVALID.sub("_", name)
    return _LABEL_NAME_LEADING.sub("_", cleaned[:1]) + cleaned[1:] if cleaned else "_"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition grammar (\\\\, \\", \\n)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    """A Prometheus-style number: integers bare, floats via repr,
    non-finite values as the exposition-format spellings ``+Inf`` /
    ``-Inf`` / ``NaN`` (Python's ``inf``/``nan`` are not legal there)."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _render_labels(labels: LabelTuple, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    """``{name="value",...}`` for a frozen label tuple ('' when empty)."""
    pairs = [
        f'{sanitize_label_name(key)}="{escape_label_value(value)}"'
        for key, value in tuple(labels) + tuple(extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_exemplar(exemplar: Optional[dict]) -> str:
    """The ``# {trace_id="..."} value`` clause for one bucket ('' if none)."""
    if not exemplar or not exemplar.get("trace_id"):
        return ""
    trace_id = escape_label_value(str(exemplar["trace_id"]))
    return f' # {{trace_id="{trace_id}"}} {_format_value(exemplar.get("value", 0.0))}'


def render_openmetrics(metrics: Dict[str, dict], prefix: str = "repro_") -> str:
    """The Prometheus text exposition of a registry ``to_dict`` payload.

    Every series is prefixed (default ``repro_``) so a scrape of a mixed
    process cannot collide with other exporters.  Histogram buckets are
    rendered cumulatively with inclusive ``le`` bounds and a final
    ``+Inf`` bucket, matching the storage convention of
    :class:`~repro.obs.metrics.Histogram` (per-bucket, non-cumulative).
    Labelled children of one family share a single ``# TYPE`` header;
    the unlabelled child renders first as the bare-name series.
    """
    lines: List[str] = []
    for name in sorted(metrics):
        payload = metrics[name]
        kind = payload.get("type")
        base = prefix + sanitize_metric_name(name)
        series = iter_series(payload)
        if not series:
            continue
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            for labels, child in series:
                lines.append(
                    f"{base}_total{_render_labels(labels)} "
                    f"{_format_value(child.get('value', 0))}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for labels, child in series:
                lines.append(
                    f"{base}{_render_labels(labels)} "
                    f"{_format_value(child.get('value', 0))}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            for labels, child in series:
                buckets = child.get("buckets", [])
                counts = child.get("counts", [])
                exemplars = child.get("exemplars") or {}
                running = 0
                for i, (bound, count) in enumerate(zip(buckets, counts)):
                    running += count
                    label_str = _render_labels(
                        labels, (("le", _format_value(float(bound))),)
                    )
                    exemplar = _render_exemplar(exemplars.get(str(i)))
                    lines.append(f"{base}_bucket{label_str} {running}{exemplar}")
                running += counts[len(buckets)] if len(counts) > len(buckets) else 0
                inf_labels = _render_labels(labels, (("le", "+Inf"),))
                exemplar = _render_exemplar(exemplars.get(str(len(buckets))))
                lines.append(f"{base}_bucket{inf_labels} {running}{exemplar}")
                plain = _render_labels(labels)
                lines.append(f"{base}_sum{plain} {_format_value(child.get('sum', 0.0))}")
                lines.append(f"{base}_count{plain} {_format_value(child.get('count', 0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def fetch_metrics_json(url: str, timeout: float = 10.0) -> Dict[str, dict]:
    """The registry ``to_dict`` payload scraped from a live server.

    ``url`` is the server base (``http://host:port``) or the full
    ``/debug/metrics`` endpoint — the suffix is appended when missing.
    Shared by ``repro-cli stats --url`` and ``repro-cli slo`` so both
    read exactly what the server exports.
    """
    import json
    from urllib.request import urlopen

    if not url.rstrip("/").endswith("/debug/metrics"):
        url = url.rstrip("/") + "/debug/metrics"
    with urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


# -- cross-process snapshot aggregation -----------------------------------------


def metrics_delta(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
    """What ``after`` added on top of ``before`` (both ``to_dict`` payloads).

    Counters and histogram counts subtract element-wise; gauges are
    last-write-wins so the ``after`` value is taken verbatim.  The
    subtraction is per *series*: a labelled child subtracts against the
    same label set in ``before``, so worker deltas keep their dimensions.
    Series with nothing new are omitted, so an idle chunk ships an empty
    dict.  Histogram ``min``/``max`` in a delta are the ``after`` values
    — a bucket-resolution approximation, consistent with everything else
    a fixed-bucket histogram reports.
    """
    delta: Dict[str, dict] = {}
    for name, payload in after.items():
        kind = payload.get("type")
        prior_payload = before.get(name)
        if prior_payload is not None and prior_payload.get("type") != kind:
            prior_payload = None  # kind changed (registry reset mid-run): treat as new
        prior_series: Dict[LabelTuple, dict] = (
            dict(iter_series(prior_payload)) if prior_payload else {}
        )
        changed: Dict[LabelTuple, dict] = {}
        for labels, child in iter_series(payload):
            prior = prior_series.get(labels)
            if kind == "counter":
                value = child.get("value", 0) - (prior.get("value", 0) if prior else 0)
                if value:
                    changed[labels] = {"type": "counter", "name": name, "value": value}
            elif kind == "gauge":
                if prior is None or child.get("value") != prior.get("value"):
                    changed[labels] = {k: v for k, v in child.items() if k != "labels"}
            elif kind == "histogram":
                if prior is None:
                    if child.get("count", 0):
                        changed[labels] = {k: v for k, v in child.items() if k != "labels"}
                    continue
                if child.get("buckets") != prior.get("buckets"):
                    # buckets changed: ship whole thing
                    changed[labels] = {k: v for k, v in child.items() if k != "labels"}
                    continue
                counts = [c - p for c, p in zip(child.get("counts", []), prior.get("counts", []))]
                count = child.get("count", 0) - prior.get("count", 0)
                if count <= 0 and not any(counts):
                    continue
                entry = {k: v for k, v in child.items() if k != "labels"}
                entry["counts"] = counts
                entry["count"] = count
                entry["sum"] = child.get("sum", 0.0) - prior.get("sum", 0.0)
                changed[labels] = entry
        entry = family_payload(kind or "?", name, changed)
        if entry is not None:
            delta[name] = entry
    return delta


def merge_metrics(registry: MetricsRegistry, payload: Dict[str, dict]) -> None:
    """Fold a ``to_dict``/:func:`metrics_delta` payload into ``registry``.

    Counters increment, gauges set, histograms merge element-wise
    (buckets must agree with any existing instrument of the same name —
    the registry raises on mismatch, same as two live call sites would).
    Every series folds into the child with the same label set, so
    per-label totals survive the process hop losslessly.
    """
    for name in sorted(payload):
        entry = payload[name]
        kind = entry.get("type")
        for labels, child in iter_series(entry):
            label_dict = dict(labels)
            if kind == "counter":
                registry.series("counter", name, label_dict).inc(child.get("value", 0))
            elif kind == "gauge":
                registry.series("gauge", name, label_dict).set(child.get("value", 0))
            elif kind == "histogram":
                incoming = histogram_from_payload(dict(child, name=name))
                registry.series(
                    "histogram", name, label_dict, buckets=incoming.buckets
                ).merge(incoming)


class ObsDelta:
    """One chunk's observability payload: metric deltas, span trees, and
    freshly appended flight-recorder records.

    Built worker-side by :meth:`capture`/:meth:`finish`, shipped as a
    plain dict (picklable), merged parent-side by :func:`merge_obs_delta`.
    Shipping the records (not just the metrics) is what keeps histogram
    exemplars resolvable: a worker query's ``trace_id`` lands in the
    parent recorder, so ``/debug/queries?trace_id=...`` finds it no
    matter which process ran the search.
    """

    __slots__ = (
        "_before_metrics",
        "_before_roots",
        "_before_records",
        "_before_profile",
        "payload",
    )

    def __init__(self):
        self._before_metrics: Dict[str, dict] = {}
        self._before_roots = 0
        self._before_records = 0
        self._before_profile: Dict[tuple, int] = {}
        self.payload: Optional[dict] = None

    @classmethod
    def capture(cls, obs) -> "ObsDelta":
        """Snapshot ``obs`` (an :class:`~repro.obs.Observability`) now."""
        snap = cls()
        snap._before_metrics = obs.metrics.to_dict()
        snap._before_roots = len(obs.tracer.finished)
        recorder = getattr(obs, "recorder", None)
        snap._before_records = recorder.total_recorded if recorder is not None else 0
        # The process-wide profiler rides the same delta: snapshot its
        # folded counts so finish() ships only this chunk's samples.
        snap._before_profile = PROFILER.counts_snapshot()
        return snap

    def finish(self, obs) -> dict:
        """The delta accumulated on ``obs`` since :meth:`capture`.

        ``clock_ns`` anchors this process's monotonic span timestamps to
        the wall clock (wall time at the monotonic clock's zero), so the
        receiving process can rebase them onto *its* monotonic timeline
        and interleave worker spans with its own chronologically.
        ``records`` are the flight-recorder entries appended since
        capture (identified by their ``seq``; a fork-inherited ring's
        pre-existing records subtract out the same way metrics do).
        """
        spans = [span.to_dict() for span in obs.tracer.finished[self._before_roots :]]
        records: List[dict] = []
        recorder = getattr(obs, "recorder", None)
        if recorder is not None:
            seen = set()
            for record in recorder.recent() + recorder.slow():
                seq = record.get("seq", 0)
                if seq > self._before_records and seq not in seen:
                    seen.add(seq)
                    records.append(record)
            records.sort(key=lambda r: r.get("seq", 0))
        self.payload = {
            "metrics": metrics_delta(self._before_metrics, obs.metrics.to_dict()),
            "spans": spans,
            "records": records,
            "clock_ns": time_ns() - perf_counter_ns(),
        }
        # Samples the profiler collected during this chunk (None when the
        # profiler is off or idle) — per-worker sub-profiles ride home in
        # the same payload as metrics/spans/records.
        profile = PROFILER.delta_payload(self._before_profile)
        if profile is not None:
            self.payload["profile"] = profile
        return self.payload


def merge_obs_delta(obs, payload: Optional[dict]) -> None:
    """Merge one worker chunk's :class:`ObsDelta` payload into ``obs``.

    When the payload carries the sender's ``clock_ns`` wall anchor, the
    difference against the local anchor rebases adopted span start times
    onto the local monotonic clock (the anchors share the wall-clock
    reference, so their difference is exactly the monotonic offset
    between the two processes).  Shipped flight-recorder records are
    re-recorded locally: they get fresh ``seq`` numbers on the local
    ring (their worker-side ordering is preserved) and re-run the local
    slow-query pinning.
    """
    if not payload:
        return
    merge_metrics(obs.metrics, payload.get("metrics") or {})
    spans = payload.get("spans") or []
    if spans:
        offset_ns = 0
        clock_ns = payload.get("clock_ns")
        if clock_ns is not None:
            offset_ns = int(clock_ns) - (time_ns() - perf_counter_ns())
        obs.tracer.adopt(spans, offset_ns)
    recorder = getattr(obs, "recorder", None)
    if recorder is not None:
        for record in payload.get("records") or []:
            adopted = {k: v for k, v in record.items() if k not in ("seq", "slow")}
            recorder.record(adopted)
    # Worker profile samples fold into the parent's profile under a
    # worker:<slot> root frame (dropped when the parent never profiled).
    PROFILER.adopt(payload.get("profile"))
