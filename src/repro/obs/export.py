"""Metric export formats and cross-process snapshot aggregation.

Two concerns live here, both pure functions over the JSON form of
:meth:`~repro.obs.metrics.MetricsRegistry.to_dict`:

* **OpenMetrics rendering** — :func:`render_openmetrics` turns the
  registry payload into the Prometheus/OpenMetrics text exposition
  format served by :mod:`repro.obs.server` on ``/metrics``.  Dotted
  metric names become underscore-separated (``rank.rankall.occ_probes``
  → ``rank_rankall_occ_probes``), counters gain the conventional
  ``_total`` suffix, and histograms expand into cumulative
  ``_bucket{le="..."}`` series plus ``_sum`` / ``_count``.

* **Snapshot deltas and merging** — process-pool batch workers each
  accumulate into their *own* ``OBS`` singleton (a forked or spawned
  copy), so their counters would silently vanish when the pool shuts
  down.  :func:`metrics_delta` computes what one chunk added on top of a
  baseline snapshot (fork-safe: inherited pre-fork totals subtract out),
  and :func:`merge_metrics` folds such a delta back into the parent's
  registry.  :class:`ObsDelta` bundles the metric delta with the span
  trees the chunk finished, which is exactly the payload
  ``repro.engine.executor._pool_worker`` ships home.
"""

from __future__ import annotations

import re
from time import perf_counter_ns, time_ns
from typing import Any, Dict, List, Optional

from .metrics import Histogram, MetricsRegistry

#: Content type the ``/metrics`` endpoint serves (Prometheus text format).
OPENMETRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_LEADING = re.compile(r"^[^a-zA-Z_:]")


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name for a dotted repro metric name.

    >>> sanitize_metric_name("rank.rankall.occ_probes")
    'rank_rankall_occ_probes'
    >>> sanitize_metric_name("9bad name")
    '_bad_name'
    """
    cleaned = _NAME_INVALID.sub("_", name)
    return _NAME_LEADING.sub("_", cleaned[:1]) + cleaned[1:] if cleaned else "_"


def _format_value(value: Any) -> str:
    """A Prometheus-style number: integers bare, floats via repr."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(metrics: Dict[str, dict], prefix: str = "repro_") -> str:
    """The Prometheus text exposition of a registry ``to_dict`` payload.

    Every series is prefixed (default ``repro_``) so a scrape of a mixed
    process cannot collide with other exporters.  Histogram buckets are
    rendered cumulatively with inclusive ``le`` bounds and a final
    ``+Inf`` bucket, matching the storage convention of
    :class:`~repro.obs.metrics.Histogram` (per-bucket, non-cumulative).
    """
    lines: List[str] = []
    for name in sorted(metrics):
        payload = metrics[name]
        kind = payload.get("type")
        base = prefix + sanitize_metric_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total {_format_value(payload.get('value', 0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(payload.get('value', 0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            buckets = payload.get("buckets", [])
            counts = payload.get("counts", [])
            running = 0
            for bound, count in zip(buckets, counts):
                running += count
                lines.append(f'{base}_bucket{{le="{_format_value(float(bound))}"}} {running}')
            running += counts[len(buckets)] if len(counts) > len(buckets) else 0
            lines.append(f'{base}_bucket{{le="+Inf"}} {running}')
            lines.append(f"{base}_sum {_format_value(payload.get('sum', 0.0))}")
            lines.append(f"{base}_count {_format_value(payload.get('count', 0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- cross-process snapshot aggregation -----------------------------------------


def metrics_delta(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
    """What ``after`` added on top of ``before`` (both ``to_dict`` payloads).

    Counters and histogram counts subtract element-wise; gauges are
    last-write-wins so the ``after`` value is taken verbatim.  Metrics
    with nothing new are omitted, so an idle chunk ships an empty dict.
    Histogram ``min``/``max`` in a delta are the ``after`` values — a
    bucket-resolution approximation, consistent with everything else a
    fixed-bucket histogram reports.
    """
    delta: Dict[str, dict] = {}
    for name, payload in after.items():
        kind = payload.get("type")
        prior = before.get(name)
        if prior is not None and prior.get("type") != kind:
            prior = None  # kind changed (registry reset mid-run): treat as new
        if kind == "counter":
            value = payload.get("value", 0) - (prior.get("value", 0) if prior else 0)
            if value:
                delta[name] = {"type": "counter", "name": name, "value": value}
        elif kind == "gauge":
            if prior is None or payload.get("value") != prior.get("value"):
                delta[name] = dict(payload)
        elif kind == "histogram":
            if prior is None:
                if payload.get("count", 0):
                    delta[name] = dict(payload)
                continue
            if payload.get("buckets") != prior.get("buckets"):
                delta[name] = dict(payload)  # buckets changed: ship whole thing
                continue
            counts = [c - p for c, p in zip(payload.get("counts", []), prior.get("counts", []))]
            count = payload.get("count", 0) - prior.get("count", 0)
            if count <= 0 and not any(counts):
                continue
            entry = dict(payload)
            entry["counts"] = counts
            entry["count"] = count
            entry["sum"] = payload.get("sum", 0.0) - prior.get("sum", 0.0)
            delta[name] = entry
    return delta


def merge_metrics(registry: MetricsRegistry, payload: Dict[str, dict]) -> None:
    """Fold a ``to_dict``/:func:`metrics_delta` payload into ``registry``.

    Counters increment, gauges set, histograms merge element-wise
    (buckets must agree with any existing instrument of the same name —
    the registry raises on mismatch, same as two live call sites would).
    """
    for name in sorted(payload):
        entry = payload[name]
        kind = entry.get("type")
        if kind == "counter":
            registry.counter(name).inc(entry.get("value", 0))
        elif kind == "gauge":
            registry.gauge(name).set(entry.get("value", 0))
        elif kind == "histogram":
            incoming = Histogram(name, entry.get("buckets") or (1,))
            incoming.counts = list(entry.get("counts", incoming.counts))
            incoming.count = entry.get("count", 0)
            incoming.total = entry.get("sum", 0.0)
            incoming.min = entry.get("min")
            incoming.max = entry.get("max")
            registry.histogram(name, incoming.buckets).merge(incoming)


class ObsDelta:
    """One chunk's observability payload: metric deltas plus span trees.

    Built worker-side by :meth:`capture`/:meth:`finish`, shipped as a
    plain dict (picklable), merged parent-side by :func:`merge_obs_delta`.
    """

    __slots__ = ("_before_metrics", "_before_roots", "payload")

    def __init__(self):
        self._before_metrics: Dict[str, dict] = {}
        self._before_roots = 0
        self.payload: Optional[dict] = None

    @classmethod
    def capture(cls, obs) -> "ObsDelta":
        """Snapshot ``obs`` (an :class:`~repro.obs.Observability`) now."""
        snap = cls()
        snap._before_metrics = obs.metrics.to_dict()
        snap._before_roots = len(obs.tracer.finished)
        return snap

    def finish(self, obs) -> dict:
        """The delta accumulated on ``obs`` since :meth:`capture`.

        ``clock_ns`` anchors this process's monotonic span timestamps to
        the wall clock (wall time at the monotonic clock's zero), so the
        receiving process can rebase them onto *its* monotonic timeline
        and interleave worker spans with its own chronologically.
        """
        spans = [span.to_dict() for span in obs.tracer.finished[self._before_roots :]]
        self.payload = {
            "metrics": metrics_delta(self._before_metrics, obs.metrics.to_dict()),
            "spans": spans,
            "clock_ns": time_ns() - perf_counter_ns(),
        }
        return self.payload


def merge_obs_delta(obs, payload: Optional[dict]) -> None:
    """Merge one worker chunk's :class:`ObsDelta` payload into ``obs``.

    When the payload carries the sender's ``clock_ns`` wall anchor, the
    difference against the local anchor rebases adopted span start times
    onto the local monotonic clock (the anchors share the wall-clock
    reference, so their difference is exactly the monotonic offset
    between the two processes).
    """
    if not payload:
        return
    merge_metrics(obs.metrics, payload.get("metrics") or {})
    spans = payload.get("spans") or []
    if spans:
        offset_ns = 0
        clock_ns = payload.get("clock_ns")
        if clock_ns is not None:
            offset_ns = int(clock_ns) - (time_ns() - perf_counter_ns())
        obs.tracer.adopt(spans, offset_ns)
