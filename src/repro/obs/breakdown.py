"""Dimensional breakdown tables over labelled metric payloads.

``repro-cli stats --by engine,k`` answers the paper's evaluation
questions straight from telemetry — "how does search time move with k?"
(Fig. 11(a)), "how do the methods compare on probe volume?" (Table 2) —
by regrouping a registry ``to_dict`` payload (schema v2, from a stats
JSON file or a live ``/debug/metrics`` endpoint) along the requested
label dimensions.

The regrouping is a projection: every labelled series is keyed by its
values of the requested labels and series landing on the same key are
folded together (counters sum, gauges last-write, histograms merge
element-wise).  Asking for ``--by engine`` over series labelled
``{engine, k}`` therefore sums across ``k`` — the same marginalisation a
PromQL ``sum by (engine) (...)`` performs.  Unlabelled series carry no
dimensions to project on and are left out; families with no series
matching any requested label are skipped entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .metrics import histogram_from_payload, iter_series

#: Placeholder shown when a series lacks one of the requested labels.
MISSING = "-"


def parse_by(spec: str) -> List[str]:
    """``"engine,k"`` → ``["engine", "k"]`` (trimmed, empties dropped)."""
    return [part.strip() for part in spec.split(",") if part.strip()]


def breakdown(
    metrics: Dict[str, dict], by: List[str]
) -> Dict[str, Tuple[str, Dict[Tuple[str, ...], dict]]]:
    """Regroup a registry payload along the ``by`` label dimensions.

    Returns ``{family: (kind, {group_values: folded_payload})}`` where
    ``group_values`` has one entry per requested label (:data:`MISSING`
    when the series lacks it).  Only labelled series carrying at least
    one requested label participate.
    """
    out: Dict[str, Tuple[str, Dict[Tuple[str, ...], dict]]] = {}
    for name in sorted(metrics):
        payload = metrics[name]
        kind = payload.get("type", "?")
        groups: Dict[Tuple[str, ...], dict] = {}
        for labels, child in iter_series(payload):
            label_dict = dict(labels)
            if not any(dim in label_dict for dim in by):
                continue
            key = tuple(label_dict.get(dim, MISSING) for dim in by)
            if kind == "histogram":
                merged = groups.get(key)
                incoming = histogram_from_payload(dict(child, name=name))
                if merged is None:
                    groups[key] = incoming.to_dict()
                else:
                    combined = histogram_from_payload(dict(merged, name=name))
                    combined.merge(incoming)
                    groups[key] = combined.to_dict()
            elif kind == "counter":
                entry = groups.setdefault(key, {"type": "counter", "value": 0})
                entry["value"] += child.get("value", 0)
            else:  # gauge: last write wins, same as the instrument itself
                groups[key] = {"type": "gauge", "value": child.get("value", 0)}
        if groups:
            out[name] = (kind, groups)
    return out


def _format_number(value) -> str:
    if value is None:
        return MISSING
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def _render_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def render_breakdown(
    metrics: Dict[str, dict], by: List[str], families: Optional[List[str]] = None
) -> str:
    """Aligned per-family tables of :func:`breakdown` (CLI output).

    ``families`` restricts the report to the named metric families
    (exact match); default is every family with matching series.
    """
    grouped = breakdown(metrics, by)
    if families:
        grouped = {name: grouped[name] for name in families if name in grouped}
    if not grouped:
        dims = ",".join(by)
        return f"(no labelled series matching --by {dims})"
    parts: List[str] = []
    for name, (kind, groups) in grouped.items():
        title = f"{name} ({kind}) by {','.join(by)}"
        rows: List[List[str]] = []
        if kind == "histogram":
            headers = [*by, "count", "sum", "mean", "p50", "p90", "p99"]
            for key in sorted(groups):
                entry = groups[key]
                count = entry.get("count", 0)
                total = entry.get("sum", 0.0)
                rows.append([
                    *key,
                    _format_number(count),
                    _format_number(total),
                    _format_number(total / count if count else 0.0),
                    _format_number(entry.get("p50")),
                    _format_number(entry.get("p90")),
                    _format_number(entry.get("p99")),
                ])
        else:
            headers = [*by, "value"]
            for key in sorted(groups):
                rows.append([*key, _format_number(groups[key].get("value", 0))])
        parts.append(title + "\n" + _render_table(headers, rows))
    return "\n\n".join(parts)
