"""SLO engine: error accounting, declarative objectives, burn-rate alerts.

The metrics layer can *describe* the serving path; this module lets it
*judge* it.  Three pieces:

* **Error accounting** — :func:`record_query_error` classifies a raised
  exception into a bounded ``kind`` (``pattern`` / ``corruption`` /
  ``worker`` / ``internal``) and bumps the ``query.errors{engine,k,kind}``
  counter family.  The facade, the batch executor and the shard router
  all call it wherever a query raises; tagging the exception object
  makes the call idempotent, so layered handlers count one failure once.
  Worker-side errors ride home through the ordinary
  :class:`~repro.obs.export.ObsDelta` payload.

* **Objectives and rules** — :class:`SLORules` holds declarative
  objectives (availability percentage, latency percentile targets,
  optionally scoped to an ``{engine,k}`` family) plus the multi-window
  alert policy, loaded from a TOML or JSON rules file
  (:func:`load_rules`) with in-repo defaults (:func:`default_rules`,
  the parsed form of :data:`DEFAULT_RULES_TOML`).  :func:`lint_rules`
  is the strict schema check — the rules-file sibling of
  :mod:`repro.obs.promlint`, wired into ``repro-cli slo lint``.

* **Evaluation** — :func:`evaluate_objective` judges one objective over
  one metrics payload (a registry ``to_dict`` or a
  :func:`~repro.obs.export.metrics_delta`): bad-event ratio against the
  error budget.  :class:`SLOEngine` runs that over *rolling windows*
  built from metric snapshot deltas — each :meth:`~SLOEngine.tick`
  snapshots the registry, subtracts the snapshot closest to each
  window's left edge, and computes the fast/slow **burn rates** (the
  multiple of the error budget the current bad-ratio would consume if
  sustained; the fast 5m / slow 1h pairing of the SRE workbook, both
  scaled freely for tests via the injectable ``clock``).  An alert
  fires when *both* windows burn past their thresholds — fast-only
  blips and slow-only leftovers do not page — and
  :class:`AlertManager` keeps the firing/resolved state ``/alerts``
  serves.

Everything here is pure stdlib; TOML parsing uses :mod:`tomllib`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    AlphabetError,
    IndexCorruptionError,
    PatternError,
    SerializationError,
)
from .metrics import MetricError, histogram_from_payload, iter_series
from .timeseries import TimeSeriesStore, get_timeseries

#: Counter family bumped once per raised query (labels: engine, k, kind).
QUERY_ERRORS_METRIC = "query.errors"

#: Counter bumped when the batch watchdog declares a pool stalled.
WORKER_STALLED_METRIC = "engine.worker.stalled"

#: Rules-file schema version this build reads.
RULES_VERSION = 1

#: Identifier written into every ``slo report``/``/slo`` document.
SLO_REPORT_FORMAT = "repro-slo-report"

#: Burn rates are capped here so reports stay strict-JSON (no Infinity).
BURN_RATE_CAP = 1e6

#: The default objectives and alert policy shipped in-repo (TOML, so the
#: same text works as a starting rules file).  Availability: at most 1%
#: of queries may raise.  Latency: 95% of queries within 250 ms at the
#: histogram's bucket resolution.  The alert policy is the classic
#: fast-5m/slow-1h multi-window pairing.
DEFAULT_RULES_TOML = """\
version = 1

[windows]
fast_s = 300.0
slow_s = 3600.0
fast_burn = 14.4
slow_burn = 6.0

[[objectives]]
name = "query-availability"
type = "availability"
target = 99.0

[[objectives]]
name = "query-latency-p95-250ms"
type = "latency"
target = 95.0
threshold_ms = 250.0
"""


# -- error accounting ------------------------------------------------------------


def classify_error(exc: BaseException) -> str:
    """The bounded ``kind`` label value for a raised query exception.

    ``pattern``    — bad input (:class:`PatternError`, :class:`AlphabetError`);
    ``corruption`` — the index itself failed a check
    (:class:`IndexCorruptionError`, :class:`SerializationError`);
    ``internal``   — anything else.  Worker deaths are counted by the
    executor directly under ``kind="worker"`` (no exception object
    crosses the process boundary).
    """
    if isinstance(exc, (PatternError, AlphabetError)):
        return "pattern"
    if isinstance(exc, (IndexCorruptionError, SerializationError)):
        return "corruption"
    return "internal"


def count_query_error(engine: str, k: Any, kind: str) -> None:
    """Bump ``query.errors`` (flat total + the ``{engine,k,kind}`` child)."""
    from . import OBS

    if not OBS.enabled:
        return
    OBS.metrics.counter(QUERY_ERRORS_METRIC).inc()
    OBS.metrics.counter(QUERY_ERRORS_METRIC, engine=engine, k=k, kind=kind).inc()


def record_query_error(engine: str, k: Any, exc: BaseException) -> str:
    """Count one raised query exactly once, however many layers see it.

    The facade, the shard router and the batch executor each wrap their
    query paths with this call; the exception object is tagged on first
    count so an error bubbling through all three layers still produces
    one ``query.errors`` increment.  Returns the classified kind.
    """
    kind = classify_error(exc)
    if getattr(exc, "_repro_error_counted", False):
        return kind
    try:
        exc._repro_error_counted = True
    except Exception:  # pragma: no cover - exotic exception with __slots__
        pass
    count_query_error(engine, k, kind)
    from . import OBS

    if OBS.enabled:
        OBS.record_event(
            "error", engine=engine, k=k, kind=kind,
            message=f"{type(exc).__name__}: {exc}"[:300],
        )
    return kind


# -- rules ----------------------------------------------------------------------


@dataclass(frozen=True)
class Objective:
    """One declarative objective.

    ``type`` is ``"availability"`` (``target``% of queries must not
    raise) or ``"latency"`` (``target``% of queries must finish within
    ``threshold_ms``, judged at histogram-bucket resolution).  ``engine``
    / ``k`` optionally scope the objective to one labelled
    ``{engine,k}`` family; unset means the process-wide totals.
    """

    name: str
    type: str
    target: float
    threshold_ms: Optional[float] = None
    engine: Optional[str] = None
    k: Optional[int] = None

    def selector(self) -> Dict[str, str]:
        """The label constraints this objective scopes to (stringified)."""
        out: Dict[str, str] = {}
        if self.engine is not None:
            out["engine"] = str(self.engine)
        if self.k is not None:
            out["k"] = str(self.k)
        return out

    def budget(self) -> float:
        """The error budget: the tolerated bad-event fraction.

        Rounded to 12 places so a target like 90.0 yields exactly 0.1
        rather than 0.09999999999999998 — an exactly-on-budget workload
        must not read as violated through float representation noise.
        """
        return round(max(0.0, 1.0 - self.target / 100.0), 12)


@dataclass(frozen=True)
class AlertPolicy:
    """Multi-window burn-rate thresholds (fast 5m / slow 1h style)."""

    fast_s: float = 300.0
    slow_s: float = 3600.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0


@dataclass(frozen=True)
class SLORules:
    """A parsed, validated rules document: objectives + alert policy."""

    objectives: Tuple[Objective, ...]
    policy: AlertPolicy = field(default_factory=AlertPolicy)
    version: int = RULES_VERSION

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLORules":
        """Build rules from a parsed TOML/JSON document; raises
        :class:`MetricError` naming every schema problem found."""
        problems = lint_rules(data)
        if problems:
            raise MetricError(
                "invalid SLO rules: " + "; ".join(problems)
            )
        windows = data.get("windows") or {}
        policy = AlertPolicy(
            fast_s=float(windows.get("fast_s", AlertPolicy.fast_s)),
            slow_s=float(windows.get("slow_s", AlertPolicy.slow_s)),
            fast_burn=float(windows.get("fast_burn", AlertPolicy.fast_burn)),
            slow_burn=float(windows.get("slow_burn", AlertPolicy.slow_burn)),
        )
        objectives = tuple(
            Objective(
                name=entry["name"],
                type=entry["type"],
                target=float(entry["target"]),
                threshold_ms=(
                    float(entry["threshold_ms"])
                    if entry.get("threshold_ms") is not None else None
                ),
                engine=entry.get("engine"),
                k=int(entry["k"]) if entry.get("k") is not None else None,
            )
            for entry in data.get("objectives", [])
        )
        return cls(objectives=objectives, policy=policy,
                   version=int(data.get("version", RULES_VERSION)))


_TOP_LEVEL_KEYS = {"version", "windows", "objectives"}
_WINDOW_KEYS = {"fast_s", "slow_s", "fast_burn", "slow_burn"}
_OBJECTIVE_KEYS = {"name", "type", "target", "threshold_ms", "engine", "k"}
_OBJECTIVE_TYPES = ("availability", "latency")


def lint_rules(data: Any) -> List[str]:
    """Every schema problem in a parsed rules document (empty = valid).

    The rules-file sibling of :func:`repro.obs.promlint.lint_openmetrics`:
    strict about unknown keys, types, ranges and window ordering, so a
    typo'd objective fails ``repro-cli slo lint`` (and CI) instead of
    silently never firing.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"rules document must be a table/object, got {type(data).__name__}"]
    for key in sorted(set(data) - _TOP_LEVEL_KEYS):
        problems.append(f"unknown top-level key {key!r}")
    version = data.get("version", RULES_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append(f"version must be an integer, got {version!r}")
    elif version > RULES_VERSION:
        problems.append(
            f"version {version} is newer than this build reads ({RULES_VERSION})"
        )
    windows = data.get("windows", {})
    if not isinstance(windows, dict):
        problems.append("windows must be a table/object")
        windows = {}
    for key in sorted(set(windows) - _WINDOW_KEYS):
        problems.append(f"windows: unknown key {key!r}")
    for key in _WINDOW_KEYS & set(windows):
        value = windows[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
            problems.append(f"windows.{key} must be a positive number, got {value!r}")
    fast_s = windows.get("fast_s", AlertPolicy.fast_s)
    slow_s = windows.get("slow_s", AlertPolicy.slow_s)
    if (isinstance(fast_s, (int, float)) and isinstance(slow_s, (int, float))
            and not isinstance(fast_s, bool) and not isinstance(slow_s, bool)
            and fast_s > 0 and slow_s > 0 and fast_s >= slow_s):
        problems.append(
            f"windows: fast_s ({fast_s}) must be shorter than slow_s ({slow_s})"
        )
    objectives = data.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        problems.append("objectives must be a non-empty array of tables")
        objectives = []
    seen_names = set()
    for i, entry in enumerate(objectives):
        where = f"objectives[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be a table/object")
            continue
        for key in sorted(set(entry) - _OBJECTIVE_KEYS):
            problems.append(f"{where}: unknown key {key!r}")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: name must be a non-empty string")
        elif name in seen_names:
            problems.append(f"{where}: duplicate objective name {name!r}")
        else:
            seen_names.add(name)
        obj_type = entry.get("type")
        if obj_type not in _OBJECTIVE_TYPES:
            problems.append(
                f"{where}: type must be one of {_OBJECTIVE_TYPES}, got {obj_type!r}"
            )
        target = entry.get("target")
        if (not isinstance(target, (int, float)) or isinstance(target, bool)
                or not 0 < target <= 100):
            problems.append(f"{where}: target must be in (0, 100], got {target!r}")
        threshold = entry.get("threshold_ms")
        if obj_type == "latency":
            if (not isinstance(threshold, (int, float)) or isinstance(threshold, bool)
                    or threshold <= 0):
                problems.append(
                    f"{where}: latency objectives need threshold_ms > 0, "
                    f"got {threshold!r}"
                )
        elif threshold is not None:
            problems.append(
                f"{where}: threshold_ms only applies to latency objectives"
            )
        engine = entry.get("engine")
        if engine is not None and (not isinstance(engine, str) or not engine):
            problems.append(f"{where}: engine must be a non-empty string")
        k = entry.get("k")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 0):
            problems.append(f"{where}: k must be a non-negative integer, got {k!r}")
    return problems


def parse_rules_text(text: str, fmt: str = "toml") -> Dict[str, Any]:
    """Parse rules source text (``fmt``: ``"toml"`` or ``"json"``)."""
    if fmt == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise MetricError(f"rules are not valid JSON: {exc}") from None
    import tomllib

    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise MetricError(f"rules are not valid TOML: {exc}") from None


def parse_rules_file(path: str) -> Dict[str, Any]:
    """Read and parse a rules file; format by extension (.json = JSON,
    anything else TOML)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    fmt = "json" if str(path).endswith(".json") else "toml"
    return parse_rules_text(text, fmt)


def load_rules(path: Optional[str] = None) -> SLORules:
    """The validated rules from ``path`` (TOML or JSON), or the shipped
    defaults when ``path`` is None/empty.  Raises :class:`MetricError`
    on parse or schema problems."""
    if not path:
        return default_rules()
    return SLORules.from_dict(parse_rules_file(path))


def default_rules() -> SLORules:
    """The in-repo default objectives (parsed :data:`DEFAULT_RULES_TOML`)."""
    return SLORules.from_dict(parse_rules_text(DEFAULT_RULES_TOML))


# -- evaluation ------------------------------------------------------------------


def _matching_children(family: Optional[dict], selector: Dict[str, str],
                       ignore: Tuple[str, ...] = ()) -> List[dict]:
    """Series of one family payload matching ``selector``.

    Empty selector picks the unlabelled child (the flat process-wide
    total — labelled children would double-count against it); a
    non-empty selector picks every labelled child agreeing on the
    selector's keys.  ``ignore`` names label keys that never
    disqualify a child (``kind`` on the error family).
    """
    if family is None:
        return []
    out = []
    for labels, child in iter_series(family):
        label_dict = dict(labels)
        if not selector:
            relevant = {key: value for key, value in label_dict.items()
                        if key not in ignore}
            if not relevant:
                out.append(child)
        elif labels and all(
            label_dict.get(key) == value for key, value in selector.items()
        ):
            out.append(child)
    return out


def _error_totals(metrics: Dict[str, dict],
                  selector: Dict[str, str]) -> Tuple[int, Dict[str, int]]:
    """(total errors, per-kind breakdown) matching ``selector``.

    ``query.errors`` children carry ``{engine,k,kind}``; the flat
    unlabelled child is the all-up total.  With a selector the matching
    labelled children are summed (each error lands in exactly one
    ``kind`` child, so the sum is exact); without one the unlabelled
    total is used and the breakdown still comes from the children.
    """
    family = metrics.get(QUERY_ERRORS_METRIC)
    if family is None:
        return 0, {}
    kinds: Dict[str, int] = {}
    labelled_total = 0
    unlabelled_total = 0
    for labels, child in iter_series(family):
        label_dict = dict(labels)
        value = int(child.get("value", 0))
        if not labels:
            unlabelled_total = value
            continue
        if selector and not all(
            label_dict.get(key) == expected for key, expected in selector.items()
        ):
            continue
        labelled_total += value
        kind = label_dict.get("kind", "unknown")
        kinds[kind] = kinds.get(kind, 0) + value
    total = labelled_total if selector else max(unlabelled_total, labelled_total)
    return total, kinds


def _sum_counter(metrics: Dict[str, dict], name: str,
                 selector: Dict[str, str]) -> int:
    return sum(
        int(child.get("value", 0))
        for child in _matching_children(metrics.get(name), selector)
    )


def _latency_counts(metrics: Dict[str, dict], selector: Dict[str, str],
                    threshold_ms: float):
    """(total, within-threshold, merged Histogram or None) for a latency
    objective.  Scoped objectives read the labelled ``query.search_ms``
    children; unscoped ones read the flat ``query.latency_ms`` series.
    "Within" is judged at bucket resolution: observations in buckets
    whose upper bound is <= threshold are provably within it.
    """
    name = "query.search_ms" if selector else "query.latency_ms"
    merged = None
    for child in _matching_children(metrics.get(name), selector):
        hist = histogram_from_payload(dict(child, name=name))
        if merged is None:
            merged = hist
        elif hist.buckets == merged.buckets:
            merged.merge(hist)
    if merged is None or merged.count == 0:
        return 0, 0, None
    return merged.count, merged.count_le(threshold_ms), merged


def evaluate_objective(objective: Objective,
                       metrics: Dict[str, dict]) -> Dict[str, Any]:
    """Judge one objective over one metrics payload (full registry dump
    or a windowed delta).  Returns a JSON-shaped status:

    ``total``/``bad`` are the event counts seen, ``bad_ratio`` their
    quotient, ``budget`` the tolerated ratio, ``burn_rate`` the multiple
    of the budget the observed ratio consumes (capped at
    :data:`BURN_RATE_CAP` to stay strict-JSON), and ``ok`` whether the
    objective holds.  Zero traffic is vacuously ok (``no_data`` set).
    """
    selector = objective.selector()
    budget = objective.budget()
    extra: Dict[str, Any] = {}
    if objective.type == "availability":
        bad, kinds = _error_totals(metrics, selector)
        good = _sum_counter(metrics, "query.count", selector)
        total = good + bad
        if kinds:
            extra["kinds"] = kinds
    else:
        total, within, hist = _latency_counts(
            metrics, selector, objective.threshold_ms or 0.0
        )
        bad = total - within
        if hist is not None:
            extra["p50_ms"] = hist.percentile(50)
            extra["p99_ms"] = hist.percentile(99)
    bad_ratio = (bad / total) if total else 0.0
    if budget > 0:
        burn = bad_ratio / budget
    else:
        burn = 0.0 if bad_ratio == 0 else BURN_RATE_CAP
    status = {
        "objective": objective.name,
        "type": objective.type,
        "target": objective.target,
        "selector": selector,
        "total": total,
        "bad": bad,
        "bad_ratio": round(bad_ratio, 9),
        "budget": round(budget, 9),
        "burn_rate": round(min(burn, BURN_RATE_CAP), 6),
        "ok": total == 0 or bad_ratio <= budget,
        "no_data": total == 0,
    }
    if objective.threshold_ms is not None:
        status["threshold_ms"] = objective.threshold_ms
    status.update(extra)
    return status


def evaluate_payload(metrics: Dict[str, dict],
                     rules: Optional[SLORules] = None) -> List[Dict[str, Any]]:
    """One-shot (lifetime-window) evaluation of every objective over a
    metrics payload — what ``repro-cli slo check`` runs against a live
    ``/debug/metrics`` scrape or a saved trace document."""
    rules = rules or default_rules()
    return [evaluate_objective(objective, metrics)
            for objective in rules.objectives]


# -- alerting --------------------------------------------------------------------


class AlertManager:
    """Firing/resolved state per objective, fed by :meth:`SLOEngine.tick`.

    States: ``inactive`` (never fired), ``firing``, ``resolved``
    (previously fired, condition cleared).  Transitions are counted and
    timestamped with the engine's (injectable) clock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._alerts: Dict[str, dict] = {}

    def update(self, name: str, firing: bool, now: float,
               burn_fast: float = 0.0, burn_slow: float = 0.0) -> dict:
        with self._lock:
            alert = self._alerts.get(name)
            if alert is None:
                alert = self._alerts[name] = {
                    "objective": name,
                    "state": "inactive",
                    "since": now,
                    "transitions": 0,
                }
            if firing and alert["state"] != "firing":
                alert.update(state="firing", since=now,
                             transitions=alert["transitions"] + 1)
            elif not firing and alert["state"] == "firing":
                alert.update(state="resolved", since=now,
                             transitions=alert["transitions"] + 1)
            alert["burn_fast"] = round(burn_fast, 6)
            alert["burn_slow"] = round(burn_slow, 6)
            alert["updated_at"] = now
            return dict(alert)

    def firing(self) -> List[dict]:
        """Currently-firing alerts, by objective name order."""
        with self._lock:
            return [dict(alert) for name, alert in sorted(self._alerts.items())
                    if alert["state"] == "firing"]

    def to_dict(self) -> dict:
        with self._lock:
            alerts = [dict(self._alerts[name]) for name in sorted(self._alerts)]
        return {
            "alerts": alerts,
            "n_firing": sum(1 for alert in alerts if alert["state"] == "firing"),
        }


# -- the rolling-window engine ---------------------------------------------------


class SLOEngine:
    """Rolling-window objective evaluation over metric snapshot deltas.

    Each :meth:`tick` snapshots the registry, then for every objective
    and both alert windows finds the retained snapshot closest to the
    window's left edge, takes :func:`~repro.obs.export.metrics_delta`
    against it, and judges the objective over just that window's
    increments.  An alert fires when the fast *and* slow windows both
    burn past their thresholds.

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so
    tests — and the windows themselves — scale to any timebase;
    ``registry`` defaults to the process-wide ``OBS.metrics``.  Ticks
    are serialized internally: concurrent ``/slo`` scrapes share one
    consistent snapshot history.

    Snapshot retention lives in a
    :class:`~repro.obs.timeseries.TimeSeriesStore` — pass one (the
    process-wide engine shares :func:`~repro.obs.timeseries.get_timeseries`,
    so burn-rate windows and ``rate``/``percentile_over_time`` queries
    read one substrate) or let the engine build a private store from
    ``registry``/``clock``/``max_snapshots``.  The engine pins the
    store's retention horizon to its slow window.
    """

    def __init__(self, rules: Optional[SLORules] = None, registry=None,
                 clock: Optional[Callable[[], float]] = None,
                 max_snapshots: int = 512,
                 store: Optional[TimeSeriesStore] = None):
        self.rules = rules or default_rules()
        self._registry = registry
        self.clock = clock or time.monotonic
        if store is None:
            store = TimeSeriesStore(registry=registry, clock=self.clock,
                                    capacity=max_snapshots)
        self.store = store
        self.store.retention_s = self.rules.policy.slow_s
        self.alerts = AlertManager()
        self._lock = threading.Lock()
        self.last_report: Optional[dict] = None

    def registry(self):
        if self._registry is not None:
            return self._registry
        return self.store.registry()

    # -- snapshot plumbing ----------------------------------------------------

    @property
    def _snapshots(self) -> List[Tuple[float, Dict[str, dict]]]:
        """The store's retained ring (kept as an attribute-shaped view —
        pre-store callers and tests read it directly)."""
        return self.store._snapshots

    @property
    def max_snapshots(self) -> int:
        return self.store.capacity

    @max_snapshots.setter
    def max_snapshots(self, value: int) -> None:
        self.store.capacity = max(2, int(value))

    def _window_delta(self, window_s: float, now: float,
                      current: Dict[str, dict]):
        """(delta payload, seconds actually covered) for one window, or
        (None, 0.0) before any baseline snapshot exists.  With history
        shorter than the window, the oldest snapshot serves as baseline
        — the window reports what it can actually see."""
        return self.store.window_delta(window_s, now, current)

    # -- evaluation -----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> dict:
        """Snapshot, evaluate every objective over both windows, update
        alert state, and return the report ``/slo`` serves."""
        with self._lock:
            if now is None:
                now = self.clock()
            current = self.registry().to_dict()
            policy = self.rules.policy
            objectives = []
            for objective in self.rules.objectives:
                windows: Dict[str, dict] = {}
                for label, window_s, burn_threshold in (
                    ("fast", policy.fast_s, policy.fast_burn),
                    ("slow", policy.slow_s, policy.slow_burn),
                ):
                    delta, covered = self._window_delta(window_s, now, current)
                    if delta is None:
                        status = {"no_data": True, "total": 0, "bad": 0,
                                  "burn_rate": 0.0, "ok": True}
                    else:
                        status = evaluate_objective(objective, delta)
                    status["window_s"] = window_s
                    status["covered_s"] = round(covered, 3)
                    status["burn_threshold"] = burn_threshold
                    windows[label] = status
                firing = (
                    windows["fast"]["total"] > 0
                    and windows["fast"]["burn_rate"] >= policy.fast_burn
                    and windows["slow"]["burn_rate"] >= policy.slow_burn
                )
                alert = self.alerts.update(
                    objective.name, firing, now,
                    burn_fast=windows["fast"]["burn_rate"],
                    burn_slow=windows["slow"]["burn_rate"],
                )
                objectives.append({
                    "objective": objective.name,
                    "type": objective.type,
                    "target": objective.target,
                    "selector": objective.selector(),
                    "windows": windows,
                    "firing": firing,
                    "alert_state": alert["state"],
                })
            self.store.append(now, current)
            report = {
                "format": SLO_REPORT_FORMAT,
                "version": 1,
                "clock": now,
                "policy": {
                    "fast_s": policy.fast_s, "slow_s": policy.slow_s,
                    "fast_burn": policy.fast_burn, "slow_burn": policy.slow_burn,
                },
                "objectives": objectives,
                "alerts": self.alerts.to_dict()["alerts"],
            }
            self.last_report = report
            return report


# -- the server's engine ---------------------------------------------------------

_default_engine: Optional[SLOEngine] = None
_default_engine_lock = threading.Lock()


def get_slo_engine() -> SLOEngine:
    """The process-wide engine behind ``/slo`` and ``/alerts`` (created
    on first use with the shipped default rules, sharing the
    process-wide time-series store)."""
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = SLOEngine(store=get_timeseries())
        return _default_engine


def configure_slo_engine(rules: Optional[SLORules] = None,
                         clock: Optional[Callable[[], float]] = None,
                         registry=None) -> SLOEngine:
    """Replace the process-wide engine (``serve-metrics --slo-rules``).

    With the default clock and registry the engine keeps sharing the
    process-wide time-series store; overriding either builds a private
    store on the overridden timebase/registry instead."""
    global _default_engine
    with _default_engine_lock:
        store = get_timeseries() if clock is None and registry is None else None
        _default_engine = SLOEngine(rules=rules, clock=clock,
                                    registry=registry, store=store)
        return _default_engine


__all__ = [
    "QUERY_ERRORS_METRIC",
    "WORKER_STALLED_METRIC",
    "DEFAULT_RULES_TOML",
    "SLO_REPORT_FORMAT",
    "classify_error",
    "count_query_error",
    "record_query_error",
    "Objective",
    "AlertPolicy",
    "SLORules",
    "lint_rules",
    "parse_rules_text",
    "parse_rules_file",
    "load_rules",
    "default_rules",
    "evaluate_objective",
    "evaluate_payload",
    "AlertManager",
    "SLOEngine",
    "get_slo_engine",
    "configure_slo_engine",
]
