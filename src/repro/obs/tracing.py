"""Span-based tracing for the k-mismatch engine.

A **span** is one timed region of a query or build — "construct the
suffix array", "run Algorithm A over this read" — with a name, free-form
attributes, and nanosecond timestamps from :func:`time.perf_counter_ns`.
Spans nest: entering a span while another is active makes it a child, so
one ``repro-cli search --trace`` run produces a tree like::

    kmismatch.build                     41.2ms
      fmindex.build                     40.9ms
        fmindex.suffix_array            22.1ms
        fmindex.bwt                      1.4ms
        fmindex.rank_tables             13.9ms
          rankall.build                 13.8ms
    kmismatch.search                     3.1ms
      algorithm_a.search                 3.0ms

Design constraints (in priority order):

1. **Disabled must be (near) free.**  The hot paths of the engine —
   rankall probes, S-tree expansion — run millions of times per query;
   they guard every touch with a single ``if OBS.enabled:`` attribute
   read, and :meth:`Tracer.span` returns a shared no-op singleton when
   the tracer is off, so a ``with`` block costs two empty method calls.
   ``tests/test_obs.py`` pins the end-to-end overhead.
2. **Thread safety.**  The active-span stack is per-thread (a dict keyed
   by :func:`threading.get_ident`, every operation a single dict op under
   the GIL), so concurrent searches (a future batching/sharding layer)
   each get their own span tree; finished roots are appended to a shared
   list under the GIL.  Keying by thread id rather than a
   ``threading.local`` lets the sampling profiler
   (:mod:`repro.obs.profiling`) read *another* thread's innermost span —
   ``sys._current_frames()`` hands out frames per thread id, and
   :meth:`Tracer.active_stack` answers "what span is that thread in".
3. **Bounded memory.**  At most :data:`Tracer.max_roots` finished root
   spans are retained; older roots are dropped oldest-first.

The module is dependency-free and importable from anywhere in the
package without cycles (it imports nothing from :mod:`repro`).
"""

from __future__ import annotations

import threading
from time import perf_counter, perf_counter_ns
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed region of execution.

    Create spans through :meth:`Tracer.span`; using the class directly
    skips the tracer's enabled check and parent bookkeeping.

    Attributes are free-form key/value pairs; :meth:`set` adds more after
    entry (e.g. result counts known only at the end of the region).
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "_tracer")

    def __init__(self, name: str, attrs: Dict[str, Any], tracer: "Tracer"):
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns = 0
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = perf_counter_ns()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # -- API ----------------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach more attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        return max(0, self.end_ns - self.start_ns)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        """JSON-compatible representation (children nested).

        ``start_ns`` is this process's :func:`time.perf_counter_ns`
        reading — only meaningful relative to other spans from the same
        process unless rebased (see :meth:`from_dict`'s ``offset_ns``).
        """
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def iter_spans(self) -> Iterator["Span"]:
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    @classmethod
    def from_dict(
        cls, payload: dict, tracer: Optional["Tracer"] = None, offset_ns: int = 0
    ) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        ``offset_ns`` rebases the recorded ``start_ns`` onto another
        process's monotonic timeline: pass the difference between the
        recording process's wall-clock anchor and the local one (see
        :func:`repro.obs.export.merge_obs_delta`) and adopted worker
        spans interleave chronologically with locally recorded ones —
        that is what ``/debug/queries`` sorts on.
        """
        span = cls(str(payload.get("name", "?")), dict(payload.get("attrs") or {}), tracer)
        span.start_ns = int(payload.get("start_ns", 0)) + offset_ns
        span.end_ns = span.start_ns + int(payload.get("duration_ns", 0))
        span.children = [
            cls.from_dict(child, tracer, offset_ns) for child in payload.get("children") or []
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ns}ns, {len(self.children)} children)"


class _NullSpan:
    """Shared no-op span returned while tracing is disabled.

    Every method is an empty stub so instrumented code never needs to
    branch on the tracer state itself.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    duration_ns = 0
    duration_s = 0.0

    def to_dict(self) -> dict:
        return {"name": "", "start_ns": 0, "duration_ns": 0, "attrs": {}, "children": []}


#: The singleton no-op span (safe to share: it holds no state).
NULL_SPAN = _NullSpan()


class Timer:
    """A context-manager stopwatch that *always* measures.

    Unlike spans, timers are for wall-times the program itself reports
    (CLI "indexed N bp in ..." lines) — they must work with tracing off.
    When the owning tracer is enabled the timer also opens a span of the
    same name, so CLI wall-times and traces agree by construction.
    """

    __slots__ = ("seconds", "_start", "_span")

    def __init__(self, span: Any):
        self.seconds = 0.0
        self._start = 0.0
        self._span = span

    def __enter__(self) -> "Timer":
        self._span.__enter__()
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = perf_counter() - self._start
        self._span.__exit__(exc_type, exc, tb)
        return False

    def set(self, **attrs: Any) -> "Timer":
        """Forward attributes to the underlying span (no-op when disabled)."""
        self._span.set(**attrs)
        return self


class Tracer:
    """Factory and collector for spans.

    >>> tracer = Tracer(enabled=True)
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", step=1):
    ...         pass
    >>> [s.name for s in tracer.finished[0].iter_spans()]
    ['outer', 'inner']
    """

    #: Retain at most this many finished root spans (oldest dropped).
    max_roots = 10_000

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.finished: List[Span] = []
        #: thread id -> open-span stack.  Entries are removed when a
        #: thread's last span closes, so dead threads leave nothing behind.
        self._stacks: Dict[int, List[Span]] = {}

    # -- span lifecycle (called by Span) -------------------------------------

    def _stack(self) -> List[Span]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = []
        # Tolerate exotic unwinding (generator GC, re-entrancy): pop back
        # to this span rather than asserting perfect nesting.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            self._stacks.pop(ident, None)
            self.finished.append(span)
            if len(self.finished) > self.max_roots:
                del self.finished[: len(self.finished) - self.max_roots]

    # -- public API ----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context-manager span, or the no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs, self)

    def timed(self, name: str, **attrs: Any) -> Timer:
        """A :class:`Timer` that doubles as a span when tracing is on."""
        return Timer(self.span(name, **attrs))

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stacks.get(threading.get_ident())
        return stack[-1] if stack else None

    def active_stack(self, thread_id: Optional[int] = None) -> List[Span]:
        """A copy of the open-span stack of ``thread_id`` (default: this
        thread), outermost first; empty when that thread has no open span.

        This is the profiler's span-attribution hook: the sampler thread
        passes the ids from :func:`sys._current_frames` and learns which
        phase each sampled thread was in.  The copy is one C-level list
        construction under the GIL, so a concurrent push/pop on the owner
        thread cannot corrupt the read.
        """
        if thread_id is None:
            thread_id = threading.get_ident()
        stack = self._stacks.get(thread_id)
        return list(stack) if stack else []

    def reset(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        self.finished = []

    def clear_stack(self) -> None:
        """Forget any open spans (fork hygiene).

        A pool worker forked while the parent held an open span would
        otherwise attach every span it records as a child of that
        inherited — and in the worker never-finishing — parent, so they
        would never reach :attr:`finished` and the chunk's telemetry
        delta would ship no span trees.
        """
        self._stacks = {}

    def adopt(self, payloads: List[dict], offset_ns: int = 0) -> None:
        """Append span trees recorded elsewhere (worker processes).

        ``payloads`` is :meth:`to_dicts` output from another tracer; the
        reconstructed roots join ``finished`` under the same
        :data:`max_roots` bound as locally recorded spans.  ``offset_ns``
        rebases their ``start_ns`` onto this process's monotonic clock
        (see :meth:`Span.from_dict`).
        """
        for payload in payloads:
            self.finished.append(Span.from_dict(payload, self, offset_ns))
        if len(self.finished) > self.max_roots:
            del self.finished[: len(self.finished) - self.max_roots]

    def to_dicts(self) -> List[dict]:
        """All finished root spans as JSON-compatible dictionaries."""
        return [span.to_dict() for span in self.finished]

    def iter_finished(self) -> Iterator[Span]:
        """Every finished span, roots and descendants, pre-order."""
        for root in self.finished:
            yield from root.iter_spans()


def render_span_tree(spans: List[dict], indent: str = "  ") -> str:
    """Plain-text rendering of :meth:`Tracer.to_dicts` output.

    Accepts the JSON form (not Span objects) so the CLI ``stats``
    subcommand can replay a saved trace file.
    """
    lines: List[str] = []

    def fmt_duration(ns: int) -> str:
        if ns < 1_000_000:
            return f"{ns / 1e3:.1f}us"
        if ns < 1_000_000_000:
            return f"{ns / 1e6:.1f}ms"
        return f"{ns / 1e9:.2f}s"

    def walk(node: dict, depth: int) -> None:
        attrs = node.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        label = f"{indent * depth}{node.get('name', '?')}"
        duration = fmt_duration(int(node.get("duration_ns", 0)))
        lines.append(f"{label:<48} {duration:>10}" + (f"  {attr_text}" if attr_text else ""))
        for child in node.get("children", []):
            walk(child, depth + 1)

    for root in spans:
        walk(root, 0)
    return "\n".join(lines)
