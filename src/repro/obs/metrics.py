"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the machine-readable side of the observability layer —
the paper's own evaluation quantities (n′ leaf counts, reuse rates,
rank-probe totals) become named metrics that every benchmark and the CLI
export the same way, instead of each harness hand-rolling its counters.

Three instrument kinds, in the Prometheus tradition but with no external
dependency:

* :class:`Counter` — a monotonically increasing total (rank probes,
  LF-walk steps, queries served);
* :class:`Gauge` — a last-write-wins level (index payload bytes,
  hash-table size after a search);
* :class:`Histogram` — fixed upper-bound buckets with count/sum/min/max,
  percentile estimation, and a compact ASCII rendering (per-query
  latency, S-tree depth, M-tree leaf count distributions).

Export paths: :meth:`MetricsRegistry.to_dict` (one JSON document),
:meth:`MetricsRegistry.write_jsonl` (one JSON object per line, for
appending across runs), and :meth:`MetricsRegistry.render_summary`
(aligned plain text for terminals).

Updates are single attribute mutations under the GIL — safe for the
threaded batch layers this instrumentation is built to measure.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError


class MetricError(ReproError):
    """Raised on metric type conflicts or malformed histogram buckets."""


#: Default latency buckets in milliseconds (sub-0.1ms to 10s).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 10_000,
)

#: Default buckets for tree-size style counts (leaves, nodes, depth).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
    50_000, 250_000, 1_000_000,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the total."""
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and percentiles.

    ``buckets`` are sorted upper bounds; an implicit +inf bucket catches
    the overflow.  ``counts[i]`` is the number of observations ``v``
    with ``v <= buckets[i]`` (and for the last slot, everything larger)
    — cumulative-free storage so merging histograms is element-wise.

    >>> h = Histogram("latency_ms", (1, 10, 100))
    >>> for v in (0.5, 3, 3, 250): h.observe(v)
    >>> h.counts
    [1, 2, 0, 1]
    >>> h.percentile(50)
    10.0
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_MS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(f"histogram buckets must be sorted and unique: {buckets!r}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper-bound estimate of the ``p``-th percentile (0 < p <= 100).

        Returns the upper bound of the bucket containing the percentile
        rank; observations above the largest bound report the observed
        maximum.  Bucket-resolution accuracy, like any fixed-bucket
        histogram.
        """
        if not 0 < p <= 100:
            raise MetricError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= rank:
                if i < len(self.buckets):
                    return self.buckets[i]
                return float(self.max if self.max is not None else 0.0)
        return float(self.max if self.max is not None else 0.0)

    def merge(self, other: "Histogram") -> "Histogram":
        """Element-wise merge of another histogram with identical buckets."""
        if other.buckets != self.buckets:
            raise MetricError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def render(self, width: int = 40) -> str:
        """Compact ASCII bar rendering, one line per non-empty bucket."""
        peak = max(self.counts) if self.count else 0
        lines = [
            f"{self.name}: count={self.count} mean={self.mean:.3g} "
            f"min={self.min if self.min is not None else '-'} "
            f"max={self.max if self.max is not None else '-'} "
            f"p50={self.percentile(50):g} p90={self.percentile(90):g} "
            f"p99={self.percentile(99):g}" if self.count else f"{self.name}: count=0"
        ]
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            bound = f"<= {self.buckets[i]:g}" if i < len(self.buckets) else "> max bucket"
            bar = "#" * max(1, round(width * c / peak))
            lines.append(f"  {bound:>14} {c:>8} {bar}")
        return "\n".join(lines)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-keyed store of counters, gauges, and histograms.

    Accessors create on first use and return the existing instrument on
    later calls; asking for an existing name with a different kind (or a
    histogram with different buckets) raises :class:`MetricError` so two
    call sites can never silently split one metric.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: str) -> Optional[Metric]:
        metric = self._metrics.get(name)
        if metric is not None and metric.kind != kind:
            raise MetricError(f"metric {name!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        metric = self._get(name, "counter")
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        metric = self._get(name, "gauge")
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        return metric

    def histogram(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_MS) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        metric = self._get(name, "histogram")
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets)
        elif tuple(float(b) for b in buckets) != metric.buckets:
            raise MetricError(f"histogram {name!r} already exists with different buckets")
        return metric

    # -- introspection / export ----------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        """The instrument called ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every registered instrument."""
        self._metrics = {}

    def to_dict(self) -> dict:
        """All metrics keyed by name, JSON-compatible."""
        return {name: self._metrics[name].to_dict() for name in sorted(self._metrics)}

    def write_jsonl(self, out: Union[str, IO[str]], extra: Optional[dict] = None) -> int:
        """Append one JSON line per metric to ``out`` (path or file object).

        ``extra`` keys (run id, timestamp, configuration) are merged into
        every line.  Returns the number of lines written.
        """
        payloads = [self._metrics[name].to_dict() for name in sorted(self._metrics)]
        if extra:
            for payload in payloads:
                payload.update(extra)
        if isinstance(out, str):
            with open(out, "a") as handle:
                for payload in payloads:
                    handle.write(json.dumps(payload) + "\n")
        else:
            for payload in payloads:
                out.write(json.dumps(payload) + "\n")
        return len(payloads)

    def render_summary(self) -> str:
        """Aligned plain-text summary of every registered metric."""
        return render_metrics(self.to_dict())


def render_metrics(metrics: Dict[str, dict]) -> str:
    """Plain-text rendering of a :meth:`MetricsRegistry.to_dict` payload.

    Takes the JSON form so the CLI ``stats`` subcommand can replay saved
    files; live registries go through :meth:`MetricsRegistry.render_summary`.
    """
    scalars: List[Tuple[str, str, Any]] = []
    histograms: List[dict] = []
    for name in sorted(metrics):
        payload = metrics[name]
        if payload.get("type") == "histogram":
            histograms.append(payload)
        else:
            scalars.append((name, payload.get("type", "?"), payload.get("value")))
    lines: List[str] = []
    if scalars:
        width = max(len(name) for name, _, _ in scalars)
        for name, kind, value in scalars:
            lines.append(f"{name:<{width}}  {kind:<7}  {value}")
    for payload in histograms:
        if lines:
            lines.append("")
        h = Histogram(payload["name"], payload["buckets"])
        h.counts = list(payload["counts"])
        h.count = payload["count"]
        h.total = payload.get("sum", 0.0)
        h.min = payload.get("min")
        h.max = payload.get("max")
        lines.append(h.render())
    return "\n".join(lines)
