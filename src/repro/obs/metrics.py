"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the machine-readable side of the observability layer —
the paper's own evaluation quantities (n′ leaf counts, reuse rates,
rank-probe totals) become named metrics that every benchmark and the CLI
export the same way, instead of each harness hand-rolling its counters.

Three instrument kinds, in the Prometheus tradition but with no external
dependency:

* :class:`Counter` — a monotonically increasing total (rank probes,
  LF-walk steps, queries served);
* :class:`Gauge` — a last-write-wins level (index payload bytes,
  hash-table size after a search);
* :class:`Histogram` — fixed upper-bound buckets with count/sum/min/max,
  percentile estimation, optional per-bucket exemplars, and a compact
  ASCII rendering (per-query latency, S-tree depth, M-tree leaf count
  distributions).

Every name is a **metric family**: asking for the bare name returns the
unlabelled instrument (exactly the pre-label behaviour), while passing
label keywords returns the child for that label set::

    OBS.metrics.counter("query.count").inc()                        # total
    OBS.metrics.histogram("query.search_ms", engine="stree", k=2)   # series

Children are keyed by a frozen, sorted ``(key, value)`` tuple (values
stringified, the Prometheus model), so the same labels in any keyword
order hit the same child.  The paper's evaluation is dimensional —
Fig. 11(a) is time *as a function of k*, Table 2 compares leaf counts
*per method* — and label sets are what let one live registry reproduce
those cuts.

A per-family **cardinality cap** (:attr:`MetricsRegistry.max_label_sets`,
default :data:`DEFAULT_MAX_LABEL_SETS`, env
``REPRO_OBS_MAX_LABEL_SETS``) bounds distinct label sets: overflow
updates land in a detached per-family sink (so call sites never break)
and each dropped label set bumps the ``obs.labels.dropped`` counter —
the loss is counted, never silent.

Export paths: :meth:`MetricsRegistry.to_dict` (one JSON document, schema
v2 — see below), :meth:`MetricsRegistry.write_jsonl` (one JSON object
per series per line), and :meth:`MetricsRegistry.render_summary`
(aligned plain text for terminals).

Schema v2: a family with only the unlabelled child serializes exactly as
the historical v1 flat payload; labelled children ride in a ``"series"``
list of child payloads, each carrying its ``"labels"`` dict.  v1
payloads therefore parse as v2 with no series, and v2 payloads of
unlabelled-only registries are byte-identical to v1 — both directions of
the round-trip hold.

Updates are single attribute mutations under the GIL — safe for the
threaded batch layers this instrumentation is built to measure.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left
from time import time
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError


class MetricError(ReproError):
    """Raised on metric type conflicts or malformed histogram buckets."""


#: Default latency buckets in milliseconds (sub-0.1ms to 10s).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 10_000,
)

#: Default buckets for tree-size style counts (leaves, nodes, depth).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
    50_000, 250_000, 1_000_000,
)

#: Default per-family bound on distinct label sets —
#: override via REPRO_OBS_MAX_LABEL_SETS.
DEFAULT_MAX_LABEL_SETS = int(os.environ.get("REPRO_OBS_MAX_LABEL_SETS", "64"))

#: Counter bumped once per label set dropped by the cardinality cap.
LABELS_DROPPED_METRIC = "obs.labels.dropped"

#: A frozen label set: sorted ``(key, value)`` string pairs.
LabelTuple = Tuple[Tuple[str, str], ...]


def freeze_labels(labels: Dict[str, Any]) -> LabelTuple:
    """The canonical frozen form of a label dict (sorted, stringified).

    >>> freeze_labels({"k": 2, "engine": "stree"})
    (('engine', 'stree'), ('k', '2'))
    """
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _label_suffix(labels: LabelTuple) -> str:
    """Human-readable ``{k=v,...}`` suffix for renderings ('' when unlabelled)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{key}={value}" for key, value in labels) + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value", "labels")
    kind = "counter"

    def __init__(self, name: str, labels: LabelTuple = ()):
        self.name = name
        self.value = 0
        self.labels = labels

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the total."""
        self.value += n

    def to_dict(self) -> dict:
        payload = {"type": "counter", "name": self.name, "value": self.value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "value", "labels")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelTuple = ()):
        self.name = name
        self.value: float = 0
        self.labels = labels

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        payload = {"type": "gauge", "name": self.name, "value": self.value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and percentiles.

    ``buckets`` are sorted upper bounds; an implicit +inf bucket catches
    the overflow.  ``counts[i]`` is the number of observations ``v``
    with ``v <= buckets[i]`` (and for the last slot, everything larger)
    — cumulative-free storage so merging histograms is element-wise.

    Passing ``trace_id`` to :meth:`observe` attaches an **exemplar** to
    the observation's bucket (last write wins per bucket): a pointer
    from the aggregate to one concrete event — the flight-recorder
    record holding that query's full span tree — which
    :func:`~repro.obs.export.render_openmetrics` emits in OpenMetrics
    ``# {trace_id="..."}`` syntax.

    >>> h = Histogram("latency_ms", (1, 10, 100))
    >>> for v in (0.5, 3, 3, 250): h.observe(v)
    >>> h.counts
    [1, 2, 0, 1]
    >>> h.percentile(50)
    10.0
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max",
                 "labels", "exemplars")
    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_MS,
                 labels: LabelTuple = ()):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(f"histogram buckets must be sorted and unique: {buckets!r}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.labels = labels
        #: bucket index -> {"trace_id", "value", "ts"} (last write wins).
        self.exemplars: Dict[int, dict] = {}

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        """Record one observation, optionally tagged with an exemplar."""
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if trace_id is not None:
            self.exemplars[index] = {
                "trace_id": trace_id, "value": value, "ts": time(),
            }

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper-bound estimate of the ``p``-th percentile (0 < p <= 100).

        Returns the upper bound of the bucket containing the percentile
        rank; observations above the largest bound report the observed
        maximum.  Bucket-resolution accuracy, like any fixed-bucket
        histogram.
        """
        if not 0 < p <= 100:
            raise MetricError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= rank:
                if i < len(self.buckets):
                    return self.buckets[i]
                return float(self.max if self.max is not None else 0.0)
        return float(self.max if self.max is not None else 0.0)

    def count_le(self, bound: float) -> int:
        """Observations provably ``<= bound``: the summed counts of every
        bucket whose upper bound is within it.  Bucket-resolution, like
        :meth:`percentile` — observations in a straddling bucket are not
        counted (they cannot be proven within the bound).  This is the
        "good events" side of latency SLO evaluation.

        >>> h = Histogram("x", (1, 10, 100))
        >>> for v in (0.5, 3, 3, 250): h.observe(v)
        >>> h.count_le(10)
        3
        """
        total = 0
        for i, b in enumerate(self.buckets):
            if b <= bound:
                total += self.counts[i]
            else:
                break
        return total

    def merge(self, other: "Histogram") -> "Histogram":
        """Element-wise merge of another histogram with identical buckets."""
        if other.buckets != self.buckets:
            raise MetricError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        # Incoming exemplars are the newer events (worker deltas, fresh
        # batches): they take the bucket slot.
        self.exemplars.update(other.exemplars)
        return self

    def to_dict(self) -> dict:
        payload = {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
        if self.labels:
            payload["labels"] = dict(self.labels)
        if self.exemplars:
            payload["exemplars"] = {
                str(index): dict(exemplar)
                for index, exemplar in sorted(self.exemplars.items())
            }
        return payload

    def render(self, width: int = 40) -> str:
        """Compact ASCII bar rendering, one line per non-empty bucket."""
        peak = max(self.counts) if self.count else 0
        title = self.name + _label_suffix(self.labels)
        lines = [
            f"{title}: count={self.count} mean={self.mean:.3g} "
            f"min={self.min if self.min is not None else '-'} "
            f"max={self.max if self.max is not None else '-'} "
            f"p50={self.percentile(50):g} p90={self.percentile(90):g} "
            f"p99={self.percentile(99):g}" if self.count else f"{title}: count=0"
        ]
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            bound = f"<= {self.buckets[i]:g}" if i < len(self.buckets) else "> max bucket"
            bar = "#" * max(1, round(width * c / peak))
            lines.append(f"  {bound:>14} {c:>8} {bar}")
        return "\n".join(lines)


Metric = Union[Counter, Gauge, Histogram]

_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All the series sharing one metric name.

    ``children`` maps frozen label tuples to instruments; the empty tuple
    is the unlabelled child (the historical flat metric).  ``overflow``
    is the detached sink instrument updates land in once the cardinality
    cap rejects a new label set — it is never exported.
    """

    __slots__ = ("name", "kind", "buckets", "children", "default", "overflow")

    def __init__(self, name: str, kind: str, buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.kind = kind
        self.buckets = buckets
        self.children: Dict[LabelTuple, Metric] = {}
        #: Fast-path alias for ``children[()]`` (None until first use).
        self.default: Optional[Metric] = None
        self.overflow: Optional[Metric] = None

    def _make(self, labels: LabelTuple) -> Metric:
        if self.kind == "histogram":
            return Histogram(self.name, self.buckets, labels=labels)
        return _KIND_CLASSES[self.kind](self.name, labels=labels)

    def n_label_sets(self) -> int:
        """How many *labelled* children exist (the cap's denominator)."""
        return len(self.children) - (1 if () in self.children else 0)

    def labelled(self) -> List[Metric]:
        """Labelled children, sorted by frozen label tuple."""
        return [self.children[key] for key in sorted(self.children) if key]

    def to_dict(self) -> dict:
        """Schema-v2 family payload.

        Unlabelled-only families serialize exactly as the v1 flat
        payload; labelled children ride in ``"series"``.
        """
        if self.default is not None:
            payload = self.default.to_dict()
        else:
            payload = {"type": self.kind, "name": self.name}
            if self.kind == "histogram" and self.buckets:
                payload["buckets"] = list(self.buckets)
        series = [child.to_dict() for child in self.labelled()]
        if series:
            payload["series"] = series
        return payload


class MetricsRegistry:
    """Name-keyed store of counter/gauge/histogram families.

    Accessors create on first use and return the existing instrument on
    later calls; asking for an existing name with a different kind (or a
    histogram with different buckets) raises :class:`MetricError` so two
    call sites can never silently split one metric.  Label keywords
    select (or create) the child series for that label set.
    """

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        self._families: Dict[str, MetricFamily] = {}
        #: Per-family bound on distinct label sets; overflow is counted
        #: in ``obs.labels.dropped`` and routed to a detached sink.
        self.max_label_sets = max_label_sets

    # -- family plumbing -----------------------------------------------------

    def _family(self, name: str, kind: str,
                buckets: Optional[Tuple[float, ...]] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(name, kind, buckets)
        elif family.kind != kind:
            raise MetricError(f"metric {name!r} is a {family.kind}, not a {kind}")
        elif kind == "histogram" and buckets != family.buckets:
            raise MetricError(f"histogram {name!r} already exists with different buckets")
        return family

    def _child(self, family: MetricFamily, labels: Dict[str, Any]) -> Metric:
        if not labels:
            child = family.default
            if child is None:
                child = family.default = family.children[()] = family._make(())
            return child
        key = freeze_labels(labels)
        child = family.children.get(key)
        if child is None:
            if family.n_label_sets() >= self.max_label_sets:
                # Cap hit: count the drop and absorb updates in the
                # detached per-family sink so call sites never break.
                self.counter(LABELS_DROPPED_METRIC).inc()
                if family.overflow is None:
                    family.overflow = family._make(())
                return family.overflow
            child = family.children[key] = family._make(key)
        return child

    # -- accessors -----------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series called ``name`` (+ labels), created on first use."""
        return self._child(self._family(name, "counter"), labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series called ``name`` (+ labels), created on first use."""
        return self._child(self._family(name, "gauge"), labels)

    def histogram(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_MS,
                  **labels: Any) -> Histogram:
        """The histogram series called ``name`` (+ labels), created on first use."""
        bounds = tuple(float(b) for b in buckets)
        return self._child(self._family(name, "histogram", bounds), labels)

    def series(self, kind: str, name: str, labels: Optional[Dict[str, Any]] = None,
               buckets: Optional[Sequence[float]] = None) -> Metric:
        """The series addressed by ``(kind, name, labels)`` — dict-driven
        form of the accessors, for merge/replay paths that carry labels
        as data rather than keywords."""
        if kind not in _KIND_CLASSES:
            raise MetricError(f"unknown metric kind {kind!r}")
        if kind == "histogram":
            bounds = tuple(float(b) for b in (buckets or LATENCY_BUCKETS_MS))
            return self._child(self._family(name, kind, bounds), labels or {})
        return self._child(self._family(name, kind), labels or {})

    # -- introspection / export ----------------------------------------------

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> Optional[Metric]:
        """The unlabelled instrument called ``name``, or None.

        Label-only families return None here; use :meth:`family` to
        inspect their children.
        """
        family = self._families.get(name)
        return family.default if family is not None else None

    def family(self, name: str) -> Optional[MetricFamily]:
        """The :class:`MetricFamily` called ``name``, or None."""
        return self._families.get(name)

    def names(self) -> List[str]:
        """All registered family names, sorted."""
        return sorted(self._families)

    def reset(self) -> None:
        """Drop every registered family."""
        self._families = {}

    def to_dict(self) -> dict:
        """All families keyed by name, JSON-compatible (schema v2)."""
        return {name: self._families[name].to_dict() for name in sorted(self._families)}

    def write_jsonl(self, out: Union[str, IO[str]], extra: Optional[dict] = None) -> int:
        """Append one JSON line per series to ``out`` (path or file object).

        Labelled children each get their own line (carrying their
        ``labels`` dict); ``extra`` keys (run id, timestamp,
        configuration) are merged into every line.  Returns the number
        of lines written.
        """
        payloads: List[dict] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.default is not None:
                payloads.append(family.default.to_dict())
            payloads.extend(child.to_dict() for child in family.labelled())
        if extra:
            for payload in payloads:
                payload.update(extra)
        if isinstance(out, str):
            with open(out, "a") as handle:
                for payload in payloads:
                    handle.write(json.dumps(payload) + "\n")
        else:
            for payload in payloads:
                out.write(json.dumps(payload) + "\n")
        return len(payloads)

    def render_summary(self) -> str:
        """Aligned plain-text summary of every registered metric."""
        return render_metrics(self.to_dict())


def iter_series(payload: dict) -> List[Tuple[LabelTuple, dict]]:
    """Every series of one family payload as ``(label_tuple, child)`` pairs.

    Accepts both the v1 flat shape (one unlabelled series) and the v2
    family shape (optional unlabelled base + ``"series"`` children), so
    consumers — delta, merge, rendering — need no version branch.  A
    label-only family payload yields no ``()`` entry: the base dict is
    recognised as a series only when it carries its value fields.
    """
    kind = payload.get("type")
    out: List[Tuple[LabelTuple, dict]] = []
    base = {key: value for key, value in payload.items() if key != "series"}
    has_base = ("counts" in base) if kind == "histogram" else ("value" in base)
    if has_base:
        out.append(((), base))
    for child in payload.get("series") or []:
        out.append((freeze_labels(child.get("labels") or {}), child))
    return out


def family_payload(kind: str, name: str,
                   series: Dict[LabelTuple, dict]) -> Optional[dict]:
    """Reassemble ``(label_tuple -> child)`` series into one v2 payload.

    The inverse of :func:`iter_series`: an unlabelled-only input yields
    the flat v1 shape, anything labelled rides in ``"series"``.  Returns
    None when ``series`` is empty.
    """
    if not series:
        return None
    base = series.get(())
    if base is not None:
        payload = dict(base)
    else:
        payload = {"type": kind, "name": name}
    labelled = [
        dict(series[key], labels=dict(key)) for key in sorted(series) if key
    ]
    if labelled:
        payload["series"] = labelled
    return payload


def histogram_from_payload(payload: dict) -> Histogram:
    """A detached Histogram rebuilt from one series payload (for rendering)."""
    h = Histogram(
        payload.get("name", "?"),
        payload.get("buckets") or (1,),
        labels=freeze_labels(payload.get("labels") or {}),
    )
    h.counts = list(payload.get("counts", h.counts))
    h.count = payload.get("count", 0)
    h.total = payload.get("sum", 0.0)
    h.min = payload.get("min")
    h.max = payload.get("max")
    for index, exemplar in (payload.get("exemplars") or {}).items():
        h.exemplars[int(index)] = dict(exemplar)
    return h


def render_metrics(metrics: Dict[str, dict]) -> str:
    """Plain-text rendering of a :meth:`MetricsRegistry.to_dict` payload.

    Takes the JSON form so the CLI ``stats`` subcommand can replay saved
    files; live registries go through :meth:`MetricsRegistry.render_summary`.
    Accepts v1 flat payloads and v2 family payloads — labelled series
    render as ``name{k=v,...}`` lines after their family's unlabelled
    total.
    """
    scalars: List[Tuple[str, str, Any]] = []
    histograms: List[dict] = []
    for name in sorted(metrics):
        payload = metrics[name]
        kind = payload.get("type")
        for labels, series in iter_series(payload):
            title = name + _label_suffix(labels)
            if kind == "histogram":
                histograms.append(series)
            else:
                scalars.append((title, kind or "?", series.get("value")))
    lines: List[str] = []
    if scalars:
        width = max(len(name) for name, _, _ in scalars)
        for name, kind, value in scalars:
            lines.append(f"{name:<{width}}  {kind:<7}  {value}")
    for payload in histograms:
        if lines:
            lines.append("")
        lines.append(histogram_from_payload(payload).render())
    return "\n".join(lines)
