"""Wide-event query log: one structured JSONL event per query.

The flight recorder retains a bounded in-memory ring; the metrics
registry keeps aggregates.  This module is the durable, per-event
middle ground — the "wide event" of structured-logging practice: one
flat JSON object per query/batch carrying *every* dimension an operator
might later group by (engine, ``k``, pattern length, occurrence count,
shard fan-out, latency, return path, trace id), so ad-hoc questions —
"p99 by engine for k=3 queries that fanned out to 4 shards" — are a
``jq``/``events summarize`` pass over one file instead of a new metric.

Three production concerns are handled here rather than by call sites:

* **Head-based sampling** — ``REPRO_EVENT_SAMPLE`` (0..1, default 1.0)
  keeps that fraction of events, decided *deterministically* from the
  event's ``trace_id`` hash: every layer's events for one query (the
  matcher's, the router's, the executor's) share the trace id, so a
  sampled query keeps its whole story and a dropped one vanishes
  entirely — no half-traces.  Events without a trace id fall back to a
  per-log counter so the kept fraction still converges.
* **Size-based rotation** — ``REPRO_EVENT_MAX_BYTES`` (default 64 MiB)
  rolls ``path`` to ``path.1`` (older generations shifting to ``.2``,
  ``.3``, ... up to ``REPRO_EVENT_BACKUPS``) before a write would cross
  the bound, so a long-lived server cannot fill a disk.
* **Loss accounting** — sampled-out and rotated-away lines are counted
  on the log object (and surfaced by ``events summarize``), never
  silently gone.

``repro-cli events {tail,summarize}`` is the reading surface; the
schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from typing import Any, Dict, IO, List, Optional

#: Format tag written into every wide event.
WIDE_EVENT_FORMAT = "repro-wide-event"

#: Wide-event schema version.
WIDE_EVENT_VERSION = 1

#: Default kept fraction (head-based sampling) — env REPRO_EVENT_SAMPLE.
DEFAULT_EVENT_SAMPLE = float(os.environ.get("REPRO_EVENT_SAMPLE", "1.0"))

#: Default rotation bound in bytes — env REPRO_EVENT_MAX_BYTES.
DEFAULT_EVENT_MAX_BYTES = int(
    os.environ.get("REPRO_EVENT_MAX_BYTES", str(64 * 1024 * 1024))
)

#: Default rotated-generation count — env REPRO_EVENT_BACKUPS.
DEFAULT_EVENT_BACKUPS = int(os.environ.get("REPRO_EVENT_BACKUPS", "3"))


def sample_keep(trace_id: Optional[str], sample: float,
                fallback_seq: int = 0) -> bool:
    """Whether an event with ``trace_id`` survives head sampling.

    Deterministic in the trace id (a stable hash scaled to [0, 1)), so
    multi-layer events of one query are kept or dropped together across
    processes.  ``fallback_seq`` drives a modular decision for events
    without a trace id.
    """
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    if not trace_id:
        period = max(1, round(1.0 / sample))
        return fallback_seq % period == 0
    digest = hashlib.sha256(trace_id.encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return fraction < sample


def make_wide_event(
    event: str,
    *,
    engine: str = "",
    k: int = 0,
    m: int = 0,
    duration_ms: float = 0.0,
    occurrences: int = 0,
    shards: int = 0,
    return_path: str = "",
    trace_id: Optional[str] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """One flat wide event (JSON-compatible, every field top-level).

    ``event`` is ``"query"`` (one search, matcher- or router-level),
    ``"batch"`` (one executor run) or ``"error"``; ``shards`` is the
    router fan-out (0 = unsharded); ``return_path`` is the executor's
    result transport (``arena``/``queue``/``mixed``, '' elsewhere).
    """
    record: Dict[str, Any] = {
        "format": WIDE_EVENT_FORMAT,
        "version": WIDE_EVENT_VERSION,
        "event": event,
        "ts": round(time.time(), 6),
        "engine": engine,
        "k": k,
        "m": m,
        "duration_ms": round(float(duration_ms), 6),
        "occurrences": occurrences,
        "shards": shards,
    }
    if return_path:
        record["return_path"] = return_path
    if trace_id:
        record["trace_id"] = trace_id
    record.update(extra)
    return record


class WideEventLog:
    """Sampling, rotating JSONL sink for wide events.  Thread-safe.

    Rotation happens *before* the write that would cross ``max_bytes``:
    ``path`` moves to ``path.1`` (existing generations shifting up, the
    oldest beyond ``backups`` deleted) and a fresh ``path`` is opened —
    the live file is always the newest data, like logrotate.
    """

    def __init__(self, path: str, sample: Optional[float] = None,
                 max_bytes: Optional[int] = None,
                 backups: Optional[int] = None):
        self.path = path
        self.sample = float(DEFAULT_EVENT_SAMPLE if sample is None else sample)
        self.max_bytes = int(
            DEFAULT_EVENT_MAX_BYTES if max_bytes is None else max_bytes
        )
        self.backups = max(0, int(
            DEFAULT_EVENT_BACKUPS if backups is None else backups
        ))
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = open(path, "a")
        self._size = self._handle.tell()
        self.lines_written = 0
        self.lines_sampled_out = 0
        self.rotations = 0
        self._seq = 0

    def emit(self, record: Dict[str, Any]) -> bool:
        """Append one event (returns False when sampled out or closed)."""
        with self._lock:
            if self._handle is None:
                return False
            self._seq += 1
            if not sample_keep(record.get("trace_id"), self.sample, self._seq):
                self.lines_sampled_out += 1
                return False
            line = json.dumps(record) + "\n"
            if self.max_bytes > 0 and self._size + len(line) > self.max_bytes \
                    and self._size > 0:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)
            self.lines_written += 1
            return True

    def _rotate(self) -> None:
        """Shift generations and reopen ``path`` (lock held by caller)."""
        self._handle.close()
        if self.backups > 0:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for i in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._handle = open(self.path, "a")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def to_dict(self) -> dict:
        """Sink state (for shutdown summaries and debug surfaces)."""
        with self._lock:
            return {
                "path": self.path,
                "sample": self.sample,
                "max_bytes": self.max_bytes,
                "backups": self.backups,
                "lines_written": self.lines_written,
                "lines_sampled_out": self.lines_sampled_out,
                "rotations": self.rotations,
            }


def load_wide_events(path: str,
                     include_backups: bool = True) -> List[Dict[str, Any]]:
    """Parse a wide-event JSONL file, rotated generations included
    (oldest first), blank lines skipped."""
    paths: List[str] = []
    if include_backups:
        generation = 1
        backups = []
        while os.path.exists(f"{path}.{generation}"):
            backups.append(f"{path}.{generation}")
            generation += 1
        paths.extend(reversed(backups))
    paths.append(path)
    records: List[Dict[str, Any]] = []
    for name in paths:
        with open(name) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def tail_events(path: str, n: int = 20) -> List[Dict[str, Any]]:
    """The newest ``n`` events of the live file (no backups)."""
    return load_wide_events(path, include_backups=False)[-max(0, n):]


def _exact_percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of raw values (exact, unlike histogram
    bucket resolution — wide events carry the raw durations)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def summarize_events(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a wide-event list into the ``events summarize`` report.

    Groups query events by ``(engine, k)`` with exact (nearest-rank)
    latency percentiles from the raw durations, counts batch events by
    return path, and reports the overall event span and rate.
    """
    queries = [r for r in records if r.get("event") == "query"]
    batches = [r for r in records if r.get("event") == "batch"]
    errors = [r for r in records if r.get("event") == "error"]
    timestamps = [r.get("ts", 0.0) for r in records if r.get("ts")]
    span_s = (max(timestamps) - min(timestamps)) if len(timestamps) > 1 else 0.0

    by_engine: Dict[str, Dict[str, Any]] = {}
    for record in queries:
        key = f"{record.get('engine') or '?'}|k={record.get('k', 0)}"
        group = by_engine.setdefault(key, {
            "engine": record.get("engine") or "?",
            "k": record.get("k", 0),
            "queries": 0,
            "occurrences": 0,
            "durations": [],
            "max_shards": 0,
        })
        group["queries"] += 1
        group["occurrences"] += int(record.get("occurrences", 0))
        group["durations"].append(float(record.get("duration_ms", 0.0)))
        group["max_shards"] = max(group["max_shards"],
                                  int(record.get("shards", 0)))
    groups = []
    for key in sorted(by_engine):
        group = by_engine[key]
        durations = group.pop("durations")
        group["p50_ms"] = round(_exact_percentile(durations, 50), 3)
        group["p95_ms"] = round(_exact_percentile(durations, 95), 3)
        group["p99_ms"] = round(_exact_percentile(durations, 99), 3)
        groups.append(group)

    return_paths: Dict[str, int] = {}
    for record in batches:
        path = record.get("return_path") or "-"
        return_paths[path] = return_paths.get(path, 0) + 1

    return {
        "format": "repro-wide-event-summary",
        "version": 1,
        "n_events": len(records),
        "n_queries": len(queries),
        "n_batches": len(batches),
        "n_errors": len(errors),
        "span_s": round(span_s, 3),
        "events_per_s": round(len(records) / span_s, 3) if span_s > 0 else 0.0,
        "by_engine": groups,
        "batch_return_paths": return_paths,
    }


def render_event_summary(summary: Dict[str, Any]) -> str:
    """Aligned plain-text rendering of :func:`summarize_events`."""
    lines = [
        f"{summary['n_events']} event(s): {summary['n_queries']} query, "
        f"{summary['n_batches']} batch, {summary['n_errors']} error "
        f"over {summary['span_s']:g} s"
        + (f" ({summary['events_per_s']:g}/s)" if summary["span_s"] else ""),
    ]
    if summary["by_engine"]:
        header = (f"{'engine':<18} {'k':>2} {'queries':>8} {'occ':>8} "
                  f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'shards':>6}")
        lines += ["", header, "-" * len(header)]
        for group in summary["by_engine"]:
            lines.append(
                f"{group['engine']:<18} {group['k']:>2} {group['queries']:>8} "
                f"{group['occurrences']:>8} {group['p50_ms']:>9.3f} "
                f"{group['p95_ms']:>9.3f} {group['p99_ms']:>9.3f} "
                f"{group['max_shards']:>6}"
            )
    if summary["batch_return_paths"]:
        paths = ", ".join(f"{path}={count}" for path, count
                          in sorted(summary["batch_return_paths"].items()))
        lines += ["", f"batch return paths: {paths}"]
    return "\n".join(lines)


def render_event_lines(records: List[Dict[str, Any]]) -> str:
    """One aligned line per event for ``events tail``."""
    if not records:
        return "(no events)"
    lines = []
    for record in records:
        trace = record.get("trace_id", "-")
        extra = ""
        if record.get("shards"):
            extra += f" shards={record['shards']}"
        if record.get("return_path"):
            extra += f" path={record['return_path']}"
        lines.append(
            f"{record.get('ts', 0):.3f} {record.get('event', '?'):<6} "
            f"{record.get('engine', '?'):<18} k={record.get('k', 0):<2} "
            f"m={record.get('m', 0):<4} {record.get('duration_ms', 0):>9.3f}ms "
            f"occ={record.get('occurrences', 0):<6} trace={trace}{extra}"
        )
    return "\n".join(lines)


__all__ = [
    "WIDE_EVENT_FORMAT",
    "WIDE_EVENT_VERSION",
    "DEFAULT_EVENT_SAMPLE",
    "DEFAULT_EVENT_MAX_BYTES",
    "DEFAULT_EVENT_BACKUPS",
    "sample_keep",
    "make_wide_event",
    "WideEventLog",
    "load_wide_events",
    "tail_events",
    "summarize_events",
    "render_event_summary",
    "render_event_lines",
]
