"""Multi-sequence collections: k-mismatch search across many records.

Real genomes ship as multi-record FASTA (one record per chromosome or
contig).  :class:`SequenceCollection` indexes each record independently —
occurrences never span record boundaries, matching aligner semantics —
and reports hits as ``(record name, occurrence)`` pairs.

>>> collection = SequenceCollection({"chr1": "acagaca", "chr2": "ttacat"})
>>> [(name, occ.start) for name, occ in collection.search("aca", 0)]
[('chr1', 0), ('chr1', 4), ('chr2', 2)]
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .alphabet import Alphabet
from .core.matcher import KMismatchIndex, ReadHit
from .core.types import Occurrence
from .errors import PatternError


class SequenceCollection:
    """A set of named, independently indexed target sequences.

    Parameters
    ----------
    records:
        Mapping from record name to sequence; insertion order is the
        report order.
    alphabet:
        Shared alphabet; defaults per record like
        :class:`~repro.core.matcher.KMismatchIndex`.
    """

    def __init__(self, records: Mapping[str, str], alphabet: Optional[Alphabet] = None):
        if not records:
            raise PatternError("a collection needs at least one record")
        self._indexes: Dict[str, KMismatchIndex] = {}
        for name, sequence in records.items():
            if not sequence:
                raise PatternError(f"record {name!r} is empty")
            self._indexes[name] = KMismatchIndex(sequence, alphabet=alphabet)

    # -- introspection ------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Record names in report order."""
        return list(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def record(self, name: str) -> KMismatchIndex:
        """The per-record index (raises ``KeyError`` for unknown names)."""
        return self._indexes[name]

    def total_length(self) -> int:
        """Sum of record lengths."""
        return sum(len(idx.text) for idx in self._indexes.values())

    # -- queries ---------------------------------------------------------------------

    def search(self, pattern: str, k: int, method: str = "algorithm_a") -> List[Tuple[str, Occurrence]]:
        """All k-mismatch occurrences across every record.

        Results are ordered by record (insertion order), then position.
        """
        out: List[Tuple[str, Occurrence]] = []
        for name, index in self._indexes.items():
            if len(pattern) > len(index.text):
                continue
            out.extend((name, occ) for occ in index.search(pattern, k, method=method))
        return out

    def count(self, pattern: str, k: int = 0) -> int:
        """Total occurrence count across records."""
        return sum(
            index.count(pattern, k)
            for index in self._indexes.values()
            if len(pattern) <= len(index.text)
        )

    def map_read(self, read: str, k: int) -> List[Tuple[str, ReadHit]]:
        """Strand-aware read mapping across every record (DNA only)."""
        out: List[Tuple[str, ReadHit]] = []
        for name, index in self._indexes.items():
            if len(read) > len(index.text):
                continue
            out.extend((name, hit) for hit in index.map_read(read, k))
        return out

    # -- batch queries -------------------------------------------------------------

    def search_batch(
        self,
        patterns: Iterable[str],
        k: int,
        method: str = "algorithm_a",
        workers: int = 0,
        mode: str = "thread",
    ) -> Dict[str, List[Tuple[str, Occurrence]]]:
        """Search many patterns across every record; results keyed by pattern.

        Each record's batch runs through its index's
        :meth:`~repro.core.matcher.KMismatchIndex.search_batch` — the
        cached engine (and, with ``workers > 1``, the parallel batch
        executor) per record.  Result lists are ordered by record, then
        position, like :meth:`search`.
        """
        patterns = list(patterns)
        out: Dict[str, List[Tuple[str, Occurrence]]] = {p: [] for p in patterns}
        for name, index in self._indexes.items():
            fitting = [p for p in patterns if len(p) <= len(index.text)]
            if not fitting:
                continue
            per_record = index.search_batch(
                fitting, k, method=method, workers=workers, mode=mode
            )
            for pattern in fitting:
                out[pattern].extend((name, occ) for occ in per_record[pattern])
        return out

    def map_reads(
        self,
        reads: Sequence[str],
        k: int,
        workers: int = 0,
        mode: str = "thread",
    ) -> List[List[Tuple[str, ReadHit]]]:
        """Map a read batch across every record; ``result[i]`` lists read ``i``'s
        ``(record, hit)`` pairs ordered by record then hit."""
        reads = list(reads)
        out: List[List[Tuple[str, ReadHit]]] = [[] for _ in reads]
        for name, index in self._indexes.items():
            fitting = [
                (i, read) for i, read in enumerate(reads) if len(read) <= len(index.text)
            ]
            if not fitting:
                continue
            hit_lists = index.map_reads(
                [read for _, read in fitting], k, workers=workers, mode=mode
            )
            for (i, _), hits in zip(fitting, hit_lists):
                out[i].extend((name, hit) for hit in hits)
        return out

    # -- construction helpers ------------------------------------------------------------

    @classmethod
    def from_fasta_text(cls, text: str, alphabet: Optional[Alphabet] = None) -> "SequenceCollection":
        """Parse multi-record FASTA content into a collection.

        Record names are the first whitespace-delimited token of each
        header; sequences are lower-cased.
        """
        records: Dict[str, str] = {}
        name: Optional[str] = None
        parts: List[str] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records[name] = "".join(parts)
                name = line[1:].split()[0] if len(line) > 1 else f"record{len(records)}"
                parts = []
            else:
                parts.append(line.lower())
        if name is not None:
            records[name] = "".join(parts)
        if not records:
            raise PatternError("no FASTA records found")
        return cls(records, alphabet=alphabet)

    def iter_records(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(name, sequence)`` pairs."""
        for name, index in self._indexes.items():
            yield name, index.text
