"""Pair-aware read mapping on top of :class:`~repro.core.matcher.KMismatchIndex`.

Single-mate hits are often ambiguous in repeat regions; a mate pair is
rescued by its partner: the two mates must land on opposite strands in
FR orientation within an insert-size window.  :func:`map_pair` scores
every concordant combination and returns them best-first — the standard
aligner recipe, built entirely from the library's k-mismatch primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .core.matcher import KMismatchIndex, ReadHit
from .errors import PatternError


@dataclass(frozen=True, order=True)
class PairAlignment:
    """One concordant placement of a read pair.

    ``fragment_length`` is the implied outer fragment span;
    ``total_mismatches`` the two mates' combined mismatch count.
    """

    total_mismatches: int
    fragment_length: int
    hit1: ReadHit
    hit2: ReadHit

    @property
    def start(self) -> int:
        """Forward-strand start of the leftmost mate."""
        return min(self.hit1.occurrence.start, self.hit2.occurrence.start)


def _is_concordant(
    hit1: ReadHit,
    hit2: ReadHit,
    read_length: int,
    min_fragment: int,
    max_fragment: int,
) -> Optional[int]:
    """Fragment length when the two hits form an FR pair, else ``None``."""
    if hit1.strand == hit2.strand:
        return None
    forward, reverse = (hit1, hit2) if hit1.strand == "+" else (hit2, hit1)
    left = forward.occurrence.start
    right = reverse.occurrence.start
    if right < left:
        return None
    fragment = right + read_length - left
    if not min_fragment <= fragment <= max_fragment:
        return None
    return fragment


def map_pair(
    index: KMismatchIndex,
    read1: str,
    read2: str,
    k: int,
    min_fragment: int = 0,
    max_fragment: int = 2_000,
) -> List[PairAlignment]:
    """All concordant placements of ``(read1, read2)``, best first.

    Both mates are mapped on both strands with up to ``k`` mismatches
    each; combinations on opposite strands in FR orientation with an
    implied fragment in ``[min_fragment, max_fragment]`` are kept, sorted
    by combined mismatch count then fragment length.
    """
    if len(read1) != len(read2):
        raise PatternError("mates must have equal length")
    if min_fragment > max_fragment:
        raise PatternError("min_fragment must not exceed max_fragment")
    hits1 = index.map_read(read1, k)
    hits2 = index.map_read(read2, k)
    return _concordant_alignments(hits1, hits2, len(read1), min_fragment, max_fragment)


def _concordant_alignments(
    hits1: List[ReadHit],
    hits2: List[ReadHit],
    read_length: int,
    min_fragment: int,
    max_fragment: int,
) -> List[PairAlignment]:
    """Score every concordant hit combination, best first."""
    out: List[PairAlignment] = []
    for h1 in hits1:
        for h2 in hits2:
            fragment = _is_concordant(h1, h2, read_length, min_fragment, max_fragment)
            if fragment is not None:
                out.append(
                    PairAlignment(
                        total_mismatches=h1.occurrence.n_mismatches
                        + h2.occurrence.n_mismatches,
                        fragment_length=fragment,
                        hit1=h1,
                        hit2=h2,
                    )
                )
    return sorted(out)


def map_pairs(
    index: KMismatchIndex,
    pairs: Sequence[Tuple[str, str]],
    k: int,
    min_fragment: int = 0,
    max_fragment: int = 2_000,
    workers: int = 0,
    mode: str = "thread",
) -> List[List[PairAlignment]]:
    """Batch :func:`map_pair`: ``result[i]`` are pair ``i``'s placements.

    All mates are mapped in one batch through
    :meth:`~repro.core.matcher.KMismatchIndex.map_reads`, so Algorithm A's
    cross-query memo (serial) or the worker pool (``workers > 1``) serves
    the whole pair set; the concordance pass then runs per pair.  Results
    match calling :func:`map_pair` pair-by-pair exactly.
    """
    for read1, read2 in pairs:
        if len(read1) != len(read2):
            raise PatternError("mates must have equal length")
    if min_fragment > max_fragment:
        raise PatternError("min_fragment must not exceed max_fragment")
    mates = [read for pair in pairs for read in pair]
    hit_lists = index.map_reads(mates, k, workers=workers, mode=mode)
    out: List[List[PairAlignment]] = []
    for i, (read1, _) in enumerate(pairs):
        hits1, hits2 = hit_lists[2 * i], hit_lists[2 * i + 1]
        out.append(
            _concordant_alignments(hits1, hits2, len(read1), min_fragment, max_fragment)
        )
    return out


def best_pair(
    index: KMismatchIndex,
    read1: str,
    read2: str,
    k_max: int,
    min_fragment: int = 0,
    max_fragment: int = 2_000,
) -> Optional[PairAlignment]:
    """The best concordant placement within ``k_max`` per mate, or ``None``.

    Tries increasing k (cheapest first) and stops at the first budget
    that yields any concordant pair.
    """
    for k in range(k_max + 1):
        alignments = map_pair(index, read1, read2, k,
                              min_fragment=min_fragment, max_fragment=max_fragment)
        if alignments:
            return alignments[0]
    return None
