"""Small DNA-specific utilities shared across the package."""

from __future__ import annotations

_COMPLEMENT = {"a": "t", "c": "g", "g": "c", "t": "a", "n": "n"}


def complement(base: str) -> str:
    """Complement of one (lower-case) base; ``n`` maps to ``n``.

    >>> complement("a")
    't'
    """
    return _COMPLEMENT[base]


def reverse_complement(seq: str) -> str:
    """Reverse complement of a DNA string (lower-case acgt[n]).

    >>> reverse_complement("acag")
    'ctgt'
    """
    return "".join(_COMPLEMENT[ch] for ch in reversed(seq))
