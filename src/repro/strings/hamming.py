"""Hamming-distance primitives.

The k-mismatch problem is string matching under Hamming distance (paper
Sec. II).  Every matcher in the package shares these small, well-tested
primitives; the naive baseline and all verification stages are built on
them.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import PatternError


def hamming_distance(a: Sequence, b: Sequence) -> int:
    """Number of positions where equal-length ``a`` and ``b`` differ.

    >>> hamming_distance("aaaaacaaac", "acacagaagc")
    4
    """
    if len(a) != len(b):
        raise PatternError(f"length mismatch: {len(a)} vs {len(b)}")
    return sum(1 for x, y in zip(a, b) if x != y)


def count_mismatches_capped(a: Sequence, b: Sequence, cap: int) -> int:
    """Count mismatches between equal-length ``a``/``b``, stopping at ``cap+1``.

    Returns ``cap + 1`` as soon as the count exceeds ``cap`` — the early
    exit that makes naive k-mismatch scanning O(kn) in the common case.
    """
    if len(a) != len(b):
        raise PatternError(f"length mismatch: {len(a)} vs {len(b)}")
    count = 0
    for x, y in zip(a, b):
        if x != y:
            count += 1
            if count > cap:
                return count
    return count


def hamming_within(a: Sequence, b: Sequence, k: int) -> bool:
    """True when ``hamming_distance(a, b) <= k`` (with early exit)."""
    return count_mismatches_capped(a, b, k) <= k


def mismatch_positions(a: Sequence, b: Sequence, limit: int = -1) -> List[int]:
    """0-based positions where ``a`` and ``b`` differ.

    With ``limit >= 0``, at most ``limit`` positions are returned — the
    shape of the paper's mismatch arrays ``B_l`` (Sec. IV-A), which hold the
    first ``k + 1`` mismatches of a path.

    >>> mismatch_positions("tcaca", "acaga")
    [0, 3]
    """
    if len(a) != len(b):
        raise PatternError(f"length mismatch: {len(a)} vs {len(b)}")
    out: List[int] = []
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            out.append(i)
            if limit >= 0 and len(out) >= limit:
                break
    return out
