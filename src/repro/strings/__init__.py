"""Classical string-matching substrate.

These are the exact-matching building blocks the paper's related-work
section is built on (Sec. II): Knuth–Morris–Pratt, Boyer–Moore, the
Aho–Corasick automaton (used by the Amir baseline's marking stage), the
Z-function (used to derive the pattern's self-mismatch structure) and
Hamming-distance primitives shared by every k-mismatch matcher.
"""

from .zfunc import z_array, prefix_mismatch_positions
from .kmp import kmp_failure, kmp_search
from .boyer_moore import boyer_moore_search
from .aho_corasick import AhoCorasick
from .hamming import (
    hamming_distance,
    hamming_within,
    mismatch_positions,
    count_mismatches_capped,
)

__all__ = [
    "z_array",
    "prefix_mismatch_positions",
    "kmp_failure",
    "kmp_search",
    "boyer_moore_search",
    "AhoCorasick",
    "hamming_distance",
    "hamming_within",
    "mismatch_positions",
    "count_mismatches_capped",
]
