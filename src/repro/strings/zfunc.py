"""Z-function and self-overlap analysis.

The Z-array underpins two pieces of the reproduction:

* the pattern self-mismatch tables ``R_1 .. R_{m-1}`` (paper Sec. IV-B) can
  be enumerated with longest-common-prefix jumps, and the Z-array of the
  pattern gives those LCPs between the pattern and each of its own suffixes
  in O(m) total;
* the Amir baseline's periodicity analysis (breaks vs. periodic stretches)
  needs the pattern's self-overlap structure.
"""

from __future__ import annotations

from typing import List, Sequence


def z_array(text: Sequence) -> List[int]:
    """Compute the Z-array of ``text``.

    ``z[i]`` is the length of the longest common prefix of ``text`` and
    ``text[i:]``; ``z[0]`` is defined as ``len(text)``.

    Runs in O(n) using the classic two-pointer window.

    >>> z_array("aabaab")
    [6, 1, 0, 3, 1, 0]
    """
    n = len(text)
    if n == 0:
        return []
    z = [0] * n
    z[0] = n
    left, right = 0, 0
    for i in range(1, n):
        if i < right:
            z[i] = min(right - i, z[i - left])
        while i + z[i] < n and text[z[i]] == text[i + z[i]]:
            z[i] += 1
        if i + z[i] > right:
            left, right = i, i + z[i]
    return z


def prefix_mismatch_positions(pattern: Sequence, shift: int, limit: int) -> List[int]:
    """First ``limit`` mismatch positions between ``pattern`` and its shift.

    Compares ``pattern[0 .. m-shift-1]`` with ``pattern[shift .. m-1]``
    (the overlapping portions of two copies of the pattern at relative
    shift ``shift``, exactly the alignment behind the paper's ``R_i``
    tables) and returns the 0-based offsets, within the overlap, of up to
    ``limit`` mismatching positions.

    This reference implementation is the direct O(overlap) scan; the
    production path in :mod:`repro.mismatch.tables` uses LCP jumps and is
    tested against this.

    >>> prefix_mismatch_positions("tcacg", 1, 3)
    [0, 1, 2]
    """
    m = len(pattern)
    if not 0 < shift < m:
        return []
    out: List[int] = []
    overlap = m - shift
    for off in range(overlap):
        if pattern[off] != pattern[shift + off]:
            out.append(off)
            if len(out) >= limit:
                break
    return out
