"""Boyer–Moore exact matching.

Implements the full algorithm with both the bad-character and the strong
good-suffix rules (paper Sec. II, [9]).  Sub-linear on average for large
alphabets; included as a related-work baseline and exercised by the exact
(k = 0) test axis shared with every k-mismatch matcher.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _bad_character_table(pattern: Sequence) -> Dict[object, int]:
    """Rightmost index of each character in the pattern."""
    return {ch: i for i, ch in enumerate(pattern)}


def _good_suffix_tables(pattern: Sequence) -> List[int]:
    """Strong good-suffix shift table.

    ``shift[i]`` is how far the pattern may slide when a mismatch occurs
    with ``pattern[i:]`` already matched.  Classic two-phase construction
    (Gusfield's formulation of the strong rule).
    """
    m = len(pattern)
    shift = [0] * (m + 1)
    border = [0] * (m + 1)

    # Phase 1: borders of suffixes (case: matched suffix reoccurs preceded
    # by a different character).
    i, j = m, m + 1
    border[i] = j
    while i > 0:
        while j <= m and pattern[i - 1] != pattern[j - 1]:
            if shift[j] == 0:
                shift[j] = j - i
            j = border[j]
        i -= 1
        j -= 1
        border[i] = j

    # Phase 2: case where only a prefix of the pattern matches a suffix of
    # the matched part.
    j = border[0]
    for i in range(m + 1):
        if shift[i] == 0:
            shift[i] = j
        if i == j:
            j = border[j]
    return shift


def boyer_moore_search(text: Sequence, pattern: Sequence) -> List[int]:
    """All 0-based occurrence starts of ``pattern`` in ``text``.

    >>> boyer_moore_search("acagaca", "aca")
    [0, 4]
    """
    n, m = len(text), len(pattern)
    if m == 0 or m > n:
        return []
    bad = _bad_character_table(pattern)
    good = _good_suffix_tables(pattern)
    out: List[int] = []
    s = 0
    while s <= n - m:
        j = m - 1
        while j >= 0 and pattern[j] == text[s + j]:
            j -= 1
        if j < 0:
            out.append(s)
            s += good[0]
        else:
            bc_shift = j - bad.get(text[s + j], -1)
            s += max(good[j + 1], bc_shift, 1)
    return out
