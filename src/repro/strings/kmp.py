"""Knuth–Morris–Pratt exact matching.

The first O(m + n) exact matcher (paper Sec. II, [26]).  Included both as a
related-work baseline and as the verification scanner inside the Amir
baseline, where exact occurrences of each *break* substring must be found
in the target.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def kmp_failure(pattern: Sequence) -> List[int]:
    """Failure function (border array) of ``pattern``.

    ``fail[i]`` is the length of the longest proper border of
    ``pattern[:i+1]`` — the "shift information" of the paper's related-work
    discussion.

    >>> kmp_failure("ababaa")
    [0, 0, 1, 2, 3, 1]
    """
    m = len(pattern)
    fail = [0] * m
    k = 0
    for i in range(1, m):
        while k > 0 and pattern[k] != pattern[i]:
            k = fail[k - 1]
        if pattern[k] == pattern[i]:
            k += 1
        fail[i] = k
    return fail


def kmp_iter(text: Sequence, pattern: Sequence) -> Iterator[int]:
    """Yield the 0-based start of every occurrence of ``pattern`` in ``text``."""
    m = len(pattern)
    if m == 0:
        return
    fail = kmp_failure(pattern)
    k = 0
    for i, ch in enumerate(text):
        while k > 0 and pattern[k] != ch:
            k = fail[k - 1]
        if pattern[k] == ch:
            k += 1
        if k == m:
            yield i - m + 1
            k = fail[k - 1]


def kmp_search(text: Sequence, pattern: Sequence) -> List[int]:
    """All 0-based occurrence starts of ``pattern`` in ``text``.

    >>> kmp_search("acagaca", "aca")
    [0, 4]
    """
    return list(kmp_iter(text, pattern))
