"""Aho–Corasick multi-pattern automaton.

Paper Sec. II credits Aho & Corasick [2] with extending KMP's shift idea to
sets of patterns in O(Σ|r_i| + n) time.  In this reproduction the automaton
is the engine of the Amir baseline's *marking* stage: all 2k break
substrings of the pattern are located in the target in a single pass.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class AhoCorasick:
    """A goto/fail/output automaton over an arbitrary character set.

    Build once from a collection of patterns, then stream a text through
    :meth:`iter_matches`.

    >>> ac = AhoCorasick(["he", "she", "his", "hers"])
    >>> sorted(ac.search("ushers"))
    [(1, 'she'), (2, 'he'), (2, 'hers')]
    """

    def __init__(self, patterns: Iterable[Sequence] = ()):
        self._goto: List[Dict[object, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[List[int]] = [[]]
        self._patterns: List[Sequence] = []
        self._built = False
        for p in patterns:
            self.add(p)
        self.build()

    # -- construction -------------------------------------------------------

    def add(self, pattern: Sequence) -> int:
        """Insert ``pattern``; returns its integer id.

        Must be called before :meth:`build` (adding after a build resets
        the failure links, which :meth:`build` recomputes).
        """
        if len(pattern) == 0:
            raise ValueError("empty patterns are not allowed")
        self._built = False
        state = 0
        for ch in pattern:
            nxt = self._goto[state].get(ch)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._fail.append(0)
                self._output.append([])
                self._goto[state][ch] = nxt
            state = nxt
        pid = len(self._patterns)
        self._patterns.append(pattern)
        self._output[state].append(pid)
        return pid

    def build(self) -> None:
        """Compute failure links and propagate outputs (BFS)."""
        queue: deque = deque()
        for child in self._goto[0].values():
            self._fail[child] = 0
            queue.append(child)
        while queue:
            state = queue.popleft()
            for ch, child in self._goto[state].items():
                queue.append(child)
                f = self._fail[state]
                while f and ch not in self._goto[f]:
                    f = self._fail[f]
                self._fail[child] = self._goto[f].get(ch, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
                self._output[child] = self._output[child] + self._output[self._fail[child]]
        self._built = True

    # -- querying -------------------------------------------------------------

    @property
    def n_patterns(self) -> int:
        """Number of patterns in the automaton."""
        return len(self._patterns)

    def iter_matches(self, text: Sequence) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, pattern_id)`` for every occurrence in ``text``."""
        if not self._built:
            self.build()
        state = 0
        for i, ch in enumerate(text):
            while state and ch not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(ch, 0)
            for pid in self._output[state]:
                yield i - len(self._patterns[pid]) + 1, pid

    def search(self, text: Sequence) -> List[Tuple[int, Sequence]]:
        """All ``(start, pattern)`` matches in ``text``."""
        return [(pos, self._patterns[pid]) for pos, pid in self.iter_matches(text)]
