"""repro — BWT arrays and mismatching trees for k-mismatch string matching.

A from-scratch reproduction of Chen & Wu, *BWT Arrays and Mismatching
Trees: A New Way for String Matching with k Mismatches* (ICDE 2017).

Quickstart
----------
>>> from repro import KMismatchIndex
>>> index = KMismatchIndex("ccacacagaagcc")
>>> occs = index.search("aaaaacaaac", k=4)   # the paper's Sec. I example
>>> [(o.start, o.n_mismatches) for o in occs]
[(2, 4)]

Package map
-----------
``repro.core``       — Algorithm A, the S-tree baseline, M-trees, facade
``repro.bwt``        — BWT transform, rankall structure, FM-index
``repro.suffix``     — suffix arrays (SA-IS), LCP/RMQ/LCE, suffix tree
``repro.mismatch``   — R tables, merge(), kangaroo oracles
``repro.strings``    — KMP, Boyer–Moore, Aho–Corasick, Hamming primitives
``repro.baselines``  — naive, Landau–Vishkin, Amir, Cole comparators
``repro.simulate``   — synthetic genomes and wgsim-style reads
``repro.bench``      — workload/reporting harness for the experiments
``repro.engine``     — engine registry + batch executor (``docs/ENGINES.md``)
``repro.shard``      — sharded indexes + query router (``docs/SHARDING.md``)
``repro.obs``        — tracing/metrics layer (``repro.obs.OBS``)
"""

from .alphabet import DNA, PROTEIN, Alphabet, infer_alphabet
from .errors import (
    AlphabetError,
    IndexBuildError,
    IndexCorruptionError,
    IndexFormatError,
    PatternError,
    ReproError,
    SerializationError,
)
from .bwt.fmindex import FMIndex, Range
from .bwt.transform import bwt_transform, inverse_bwt
from .core.algorithm_a import AlgorithmASearcher
from .core.kerrors import EditOccurrence, KErrorsSearcher
from .core.matcher import KMismatchIndex, ReadHit
from .core.mtree import MTree
from .core.stree import STreeSearcher
from .core.types import Occurrence, SearchStats
from .core.wildcard import WildcardSearcher
from .collection import SequenceCollection
from .dna import reverse_complement
from .engine import REGISTRY, BatchExecutor, EngineRegistry, EngineSpec
from .obs import OBS
from .shard import QueryRouter, ShardManifest, ShardedIndex

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "DNA",
    "PROTEIN",
    "infer_alphabet",
    "ReproError",
    "AlphabetError",
    "PatternError",
    "IndexBuildError",
    "IndexCorruptionError",
    "IndexFormatError",
    "SerializationError",
    "FMIndex",
    "Range",
    "bwt_transform",
    "inverse_bwt",
    "KMismatchIndex",
    "ReadHit",
    "AlgorithmASearcher",
    "STreeSearcher",
    "KErrorsSearcher",
    "EditOccurrence",
    "WildcardSearcher",
    "MTree",
    "Occurrence",
    "SearchStats",
    "SequenceCollection",
    "reverse_complement",
    "REGISTRY",
    "EngineRegistry",
    "EngineSpec",
    "BatchExecutor",
    "OBS",
    "ShardedIndex",
    "ShardManifest",
    "QueryRouter",
    "__version__",
]
