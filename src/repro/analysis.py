"""Analytical models for k-mismatch search behaviour.

Used by the evaluation harness to sanity-check measurements and choose
workload parameters:

* :func:`match_probability` / :func:`expected_occurrences` — how many
  k-mismatch hits a random pattern has in a random i.i.d. target.  This
  is the quantity that separates the "needle" regime (k small, searches
  cheap) from the "everything matches" regime (k near m) that makes the
  paper's Table 2 configurations explode.
* :func:`expected_stree_nodes` — a first-order model of the S-tree size:
  level d of the unpruned tree holds at most ``min(W(d), n)`` nodes,
  where ``W(d)`` counts length-d strings within the mismatch budget of
  the pattern prefix.  Useful for predicting when a configuration is
  affordable at a given scale.

All functions are exact combinatorics (no simulation) over the uniform
i.i.d. model; real genomes deviate through repeat structure, which is
precisely what the simulator's knobs re-introduce.
"""

from __future__ import annotations

from math import comb
from typing import List

from .errors import PatternError


def match_probability(m: int, k: int, sigma: int = 4) -> float:
    """P(Hamming(window, pattern) <= k) for uniform i.i.d. strings.

    Each position matches with probability ``1/sigma``; the distance is
    Binomial(m, 1 - 1/sigma).

    >>> round(match_probability(4, 4), 6)   # k = m: always within budget
    1.0
    >>> match_probability(2, 0, sigma=4) == 1 / 16
    True
    """
    if m <= 0:
        raise PatternError("m must be positive")
    if k < 0:
        raise PatternError("k must be non-negative")
    if sigma < 2:
        raise PatternError("alphabet size must be at least 2")
    if k >= m:
        return 1.0
    p_match = 1.0 / sigma
    p_mismatch = 1.0 - p_match
    total = 0.0
    for d in range(k + 1):
        total += comb(m, d) * (p_mismatch ** d) * (p_match ** (m - d))
    return total


def expected_occurrences(n: int, m: int, k: int, sigma: int = 4) -> float:
    """Expected number of k-mismatch occurrences in a random length-n target.

    ``(n - m + 1) * match_probability(m, k, sigma)``; 0 when the pattern
    does not fit.

    >>> expected_occurrences(10, 20, 1) == 0.0
    True
    """
    if n < m:
        return 0.0
    return (n - m + 1) * match_probability(m, k, sigma)


def _within_budget_strings(d: int, k: int, sigma: int) -> float:
    """Number of length-d strings within Hamming distance k of a fixed one."""
    total = 0.0
    for j in range(min(d, k) + 1):
        total += comb(d, j) * (sigma - 1) ** j
    return total


def expected_stree_nodes(n: int, m: int, k: int, sigma: int = 4) -> float:
    """First-order S-tree size model (no φ pruning).

    Level d holds at most ``min(B(d), n)`` nodes, where ``B(d)`` counts
    the length-d strings within distance ``min(d, k)`` of the pattern
    prefix — the budget cap — and ``n`` bounds the number of distinct
    substrings the index can distinguish.  Summed over all m levels.

    This is the quantity the paper's complexity discussion calls "the
    brute-force search of all possible occurrences" (Sec. IV-A); the
    measured node counts in the benchmarks sit below it because real
    ranges die earlier than the model's worst case.
    """
    if m <= 0 or n <= 0:
        raise PatternError("n and m must be positive")
    total = 0.0
    for d in range(1, m + 1):
        total += min(_within_budget_strings(d, k, sigma), float(n))
    return total


def recommended_k_for_error_rate(read_length: int, error_rate: float, quantile: float = 0.99) -> int:
    """Smallest k covering ``quantile`` of reads under a per-base error rate.

    Read mapping chooses k so that a read with Binomial(m, e) errors maps
    with probability at least ``quantile`` — the practical rule behind
    the paper's evaluation running k up to 5 for 100 bp wgsim reads.

    >>> recommended_k_for_error_rate(100, 0.02) >= 4
    True
    """
    if not 0 <= error_rate <= 1:
        raise PatternError("error_rate must be in [0, 1]")
    if not 0 < quantile < 1:
        raise PatternError("quantile must be in (0, 1)")
    cumulative = 0.0
    for k in range(read_length + 1):
        cumulative += (
            comb(read_length, k)
            * (error_rate ** k)
            * ((1 - error_rate) ** (read_length - k))
        )
        if cumulative >= quantile:
            return k
    return read_length


def occurrence_profile(n: int, m: int, sigma: int = 4) -> List[float]:
    """Expected occurrence counts for every k in 0..m (plotting helper)."""
    return [expected_occurrences(n, m, k, sigma) for k in range(m + 1)]
