"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main, read_sequence


@pytest.fixture
def genome_file(tmp_path):
    path = tmp_path / "genome.fa"
    path.write_text(">toy\nacagaca\n")
    return path


class TestReadSequence:
    def test_fasta(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text(">header line\nACGT\nacgt\n")
        assert read_sequence(path) == "acgtacgt"

    def test_plain_text(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("acgt\nacgt\n")
        assert read_sequence(path) == "acgtacgt"

    def test_first_record_only(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text(">one\nacgt\n>two\ntttt\n")
        assert read_sequence(path) == "acgt"


class TestCommands:
    def test_search(self, genome_file, capsys):
        rc = main(["search", str(genome_file), "tcaca", "-k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line and not line.startswith("#")]
        assert lines[0].split("\t")[0] == "0"
        assert lines[1].split("\t")[0] == "2"

    def test_search_methods(self, genome_file, capsys):
        for method in ("algorithm_a", "stree"):
            rc = main(["search", str(genome_file), "aca", "-k", "0", "--method", method])
            assert rc == 0
            out = capsys.readouterr().out
            starts = [line.split("\t")[0] for line in out.splitlines() if line]
            assert starts == ["0", "4"]

    def test_index_roundtrip(self, genome_file, tmp_path, capsys):
        out_path = tmp_path / "idx.json"
        rc = main(["index", str(genome_file), "-o", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        from repro import KMismatchIndex

        index = KMismatchIndex.loads(out_path.read_text())
        assert index.text == "acagaca"

    def test_search_saved_index(self, genome_file, tmp_path, capsys):
        out_path = tmp_path / "idx.json"
        main(["index", str(genome_file), "-o", str(out_path)])
        capsys.readouterr()
        rc = main(["search", str(out_path), "aca", "--index"])
        assert rc == 0
        starts = [line.split("\t")[0] for line in capsys.readouterr().out.splitlines() if line]
        assert starts == ["0", "4"]

    def test_search_edit_mode(self, genome_file, capsys):
        rc = main(["search", str(genome_file), "acgaca", "-k", "1", "--edit"])
        assert rc == 0
        rows = [line.split("\t") for line in capsys.readouterr().out.splitlines() if line]
        # (start=0, length=7, distance=1) must be among the windows.
        assert ["0", "7", "1"] in rows

    def test_search_wildcard_mode(self, genome_file, capsys):
        rc = main(["search", str(genome_file), "ana", "--wildcard", "n"])
        assert rc == 0
        starts = [line.split("\t")[0] for line in capsys.readouterr().out.splitlines() if line]
        assert starts == ["0", "2", "4"]

    def test_search_trace_and_stats_json(self, genome_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "out.json"
        rc = main(["search", str(genome_file), "tcaca", "-k", "2",
                   "--trace", "--stats-json", str(trace_path)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "spans" in err and "metrics" in err
        document = json.loads(trace_path.read_text())
        assert document["format"] == "repro-trace"
        assert document["meta"]["command"] == "search"
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node.get("children", []):
                collect(child)

        for root in document["spans"]:
            collect(root)
        # At least one span per layer: index, searcher, rank backend.
        assert {"kmismatch.search", "algorithm_a.search", "rankall.build"} <= names
        assert document["metrics"]["query.latency_ms"]["type"] == "histogram"
        # Tracing must not leak into later, untraced invocations.
        from repro.obs import OBS

        assert not OBS.enabled

    def test_stats_subcommand_renders_saved_trace(self, genome_file, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        main(["search", str(genome_file), "aca", "--stats-json", str(trace_path)])
        capsys.readouterr()
        rc = main(["stats", str(trace_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kmismatch.search" in out
        assert "query.latency_ms" in out

    def test_compare_reports_percentile_columns(self, genome_file, capsys, tmp_path):
        reads_path = tmp_path / "reads.txt"
        reads_path.write_text("acagaca\ncagacag\n")
        rc = main(["compare", str(genome_file), str(reads_path), "-k", "1",
                   "--methods", "A()"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p90" in out and "p99" in out

    def test_stats_rejects_malformed_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else", "version": 1}')
        rc = main(["stats", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "something-else" in err

    def test_search_streams_events_and_flight_json(self, genome_file, tmp_path,
                                                   capsys):
        events = tmp_path / "events.jsonl"
        flight = tmp_path / "flight.jsonl"
        rc = main(["search", str(genome_file), "tcaca", "-k", "2",
                   "--events", str(events), "--flight-json", str(flight)])
        assert rc == 0
        from repro.obs import load_events

        event_records = load_events(str(events))
        assert len(event_records) == 1
        assert event_records[0]["event"] == "query"
        assert event_records[0]["engine"] == "algorithm_a"
        flight_records = load_events(str(flight))
        assert len(flight_records) == 1
        assert flight_records[0]["stats"]["rank_queries"] > 0
        err = capsys.readouterr().err
        assert "events streamed" in err and "flight recorder" in err

    def test_flightrecorder_renders_dump(self, genome_file, tmp_path, capsys):
        flight = tmp_path / "flight.jsonl"
        assert main(["search", str(genome_file), "tcaca", "-k", "2",
                     "--flight-json", str(flight)]) == 0
        capsys.readouterr()
        rc = main(["flightrecorder", str(flight), "--spans"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "algorithm_a" in out
        assert "kmismatch.search" in out  # --spans renders the span tree

    def test_flightrecorder_unreadable_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        rc = main(["flightrecorder", str(missing)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_port_env_serves_during_command(self, genome_file, capsys,
                                                    monkeypatch):
        import json as json_module
        import urllib.request

        import repro.cli as cli_module
        from repro.obs.server import start_server

        captured = {}
        real_start = start_server

        def capturing_start(host="127.0.0.1", port=0):
            server = real_start(host=host, port=0)  # ephemeral port for the test
            captured["url"] = server.url

            class _Probe:
                address = server.address
                url = server.url

                def stop(self_inner):
                    with urllib.request.urlopen(server.url + "/healthz",
                                                timeout=5) as response:
                        captured["healthz"] = json_module.loads(response.read())
                    server.stop()

            return _Probe()

        monkeypatch.setenv("REPRO_METRICS_PORT", "9109")
        monkeypatch.setattr("repro.obs.server.start_server", capturing_start)
        rc = cli_module.main(["search", str(genome_file), "tcaca", "-k", "1"])
        assert rc == 0
        assert captured["healthz"]["status"] == "ok"
        assert "telemetry on" in capsys.readouterr().err

    def test_serve_metrics_bounded_duration(self, genome_file, tmp_path, capsys):
        reads = tmp_path / "reads.txt"
        reads.write_text("acagaca\ncagacag\n")
        rc = main(["serve-metrics", str(genome_file), "--reads", str(reads),
                   "-k", "1", "--port", "0", "--duration", "0.05",
                   "--slow-ms", "0"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "serving /metrics" in err
        assert "2 read(s)" in err

    def test_simulate_and_compare(self, tmp_path, capsys):
        genome_path = tmp_path / "g.fa"
        rc = main([
            "simulate", "-o", str(genome_path),
            "--length", "3000", "--reads", "3", "--read-length", "30", "--seed", "5",
        ])
        assert rc == 0
        reads_path = genome_path.with_suffix(".reads.txt")
        assert reads_path.exists()
        capsys.readouterr()
        rc = main([
            "compare", str(genome_path), str(reads_path), "-k", "1",
            "--methods", "A()", "BWT", "--limit", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "A()" in out and "BWT" in out


class TestBinaryIndexCli:
    def test_index_format_bin_and_search(self, genome_file, tmp_path, capsys):
        out_path = tmp_path / "idx.fmbin"
        rc = main(["index", str(genome_file), "-o", str(out_path), "--format", "bin"])
        assert rc == 0
        assert out_path.read_bytes()[:8] == b"REPROIDX"
        assert "bin format" in capsys.readouterr().out
        rc = main(["search", str(out_path), "--index", "aca", "-k", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        starts = [line.split("\t")[0] for line in out.splitlines() if line]
        assert starts == ["0", "4"]

    def test_map_index_file(self, genome_file, tmp_path, capsys):
        idx_path = tmp_path / "idx.fmbin"
        assert main(["index", str(genome_file), "-o", str(idx_path),
                     "--format", "bin"]) == 0
        reads = tmp_path / "reads.txt"
        reads.write_text("acag\ngaca\n")
        sam_from_index = tmp_path / "a.sam"
        sam_from_target = tmp_path / "b.sam"
        capsys.readouterr()
        rc = main(["map", "--index-file", str(idx_path), str(reads),
                   "-k", "1", "-o", str(sam_from_index)])
        assert rc == 0
        rc = main(["map", str(genome_file), str(reads),
                   "-k", "1", "-o", str(sam_from_target)])
        assert rc == 0
        assert sam_from_index.read_text() == sam_from_target.read_text()

    def test_map_requires_target_or_index_file(self, tmp_path, capsys):
        reads = tmp_path / "reads.txt"
        reads.write_text("acag\n")
        rc = main(["map", str(reads)])
        assert rc == 2
        assert "--index-file" in capsys.readouterr().err

    def test_bench_update_baseline(self, tmp_path, capsys, monkeypatch):
        baseline = tmp_path / "baseline.json"
        rc = main(["bench", "--scale", "2000", "--reads", "3",
                   "--update-baseline", "--baseline", str(baseline)])
        assert rc == 0
        assert "baseline refreshed" in capsys.readouterr().err
        import json as _json

        document = _json.loads(baseline.read_text())
        assert document["methods"]
        # The refreshed file immediately passes its own regression gate.
        rc = main(["bench", "--scale", "2000", "--reads", "3",
                   "--baseline", str(baseline), "--check-regression"])
        assert rc in (0, 3)  # 3 only if this machine jittered past thresholds


class TestStatsBreakdown:
    """repro-cli stats --by: dimensional tables over schema-v2 payloads."""

    @pytest.fixture
    def trace_file(self, tmp_path):
        genome = tmp_path / "genome.fa"
        genome.write_text(">toy\n" + "acagacaacagacagtacagaca" * 10 + "\n")
        trace = tmp_path / "trace.json"
        for method, k in (("algorithm_a", 1), ("stree", 2)):
            assert main(["search", str(genome), "acaga", "-k", str(k),
                         "--method", method, "--stats-json", str(trace)]) == 0
        return trace  # last run: BWT at k=2

    def test_by_engine_and_k(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["stats", str(trace_file), "--by", "engine,k"]) == 0
        out = capsys.readouterr().out
        assert "by engine,k" in out
        assert "stree" in out

    def test_family_filter(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["stats", str(trace_file), "--by", "engine",
                     "--family", "search.queries"]) == 0
        out = capsys.readouterr().out
        assert "search.queries (counter) by engine" in out
        assert "search.leaves" not in out

    def test_no_matching_labels(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["stats", str(trace_file), "--by", "nosuchlabel"]) == 0
        assert "no labelled series" in capsys.readouterr().out

    def test_plain_render_still_accepts_v2(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["stats", str(trace_file)]) == 0
        assert "metrics" in capsys.readouterr().out

    def test_stats_requires_source(self, capsys):
        assert main(["stats", "--by", "engine"]) == 2
        assert "--url" in capsys.readouterr().err

    def test_live_url_replay(self, capsys):
        from repro import KMismatchIndex
        from repro.obs import OBS
        from repro.obs.server import MetricsServer

        OBS.reset().enable()
        try:
            index = KMismatchIndex("acagacaacagacagtacagaca" * 10)
            index.search_with_stats("acaga", 2, method="BWT")
            server = MetricsServer(port=0)
            server.start()
            try:
                url = f"http://{server.address[0]}:{server.address[1]}"
                capsys.readouterr()
                assert main(["stats", "--url", url, "--by", "engine,k"]) == 0
                out = capsys.readouterr().out
                assert "query.search_ms (histogram) by engine,k" in out
                assert "stree" in out
            finally:
                server.stop()
        finally:
            OBS.disable()
            OBS.reset()

    def test_unreachable_url(self, capsys):
        assert main(["stats", "--url", "http://127.0.0.1:1", "--by", "k"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_non_v2_url(self, capsys):
        """A reachable server that is not a schema-v2 metrics endpoint
        gets a clear one-line error, exit 2, no traceback."""
        import json
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class NotOurs(BaseHTTPRequestHandler):
            def do_GET(self):
                body = json.dumps([1, 2, 3]).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), NotOurs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            assert main(["stats", "--url", url]) == 2
            err = capsys.readouterr().err
            assert "not a schema-v2 metrics endpoint" in err
            assert len(err.strip().splitlines()) == 1
        finally:
            server.shutdown()


class TestProfileCli:
    @pytest.fixture(autouse=True)
    def clean_profiler(self):
        from repro.obs import MEMORY_PROFILES, OBS, PROFILER, set_memory_profiling

        yield
        PROFILER.stop()
        PROFILER.profile = None
        OBS.disable()
        OBS.reset()
        set_memory_profiling(False)
        MEMORY_PROFILES.clear()

    @pytest.fixture
    def big_genome(self, tmp_path):
        """Large enough that the pure-Python index build takes long
        enough to be sampled deterministically at a few hundred Hz."""
        import random

        rnd = random.Random(11)
        path = tmp_path / "genome.txt"
        path.write_text("".join(rnd.choice("acgt") for _ in range(20000)))
        return path

    def test_profile_search_folded(self, big_genome, tmp_path, capsys):
        out = tmp_path / "prof.folded"
        rc = main(["profile", "search", str(big_genome), "acgtacgtacgt",
                   "-k", "2", "--hz", "300", "--out", str(out)])
        assert rc == 0
        folded = out.read_text()
        assert folded, "profile output is empty"
        assert "span:" in folded
        assert "span:kmismatch.build" in folded  # build phase attributed
        err = capsys.readouterr().err
        assert "profile (folded) written to" in err

    def test_profile_flags_before_command(self, big_genome, tmp_path):
        out = tmp_path / "prof.json"
        rc = main(["profile", "--hz", "300", "--out", str(out),
                   "search", str(big_genome), "acgtacgtacgt", "-k", "2"])
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        assert doc["profiles"][0]["type"] == "sampled"
        frames = {f["name"] for f in doc["shared"]["frames"]}
        assert any(name.startswith("span:") for name in frames)

    def test_profile_memory_reports_build_peak(self, big_genome, tmp_path,
                                               capsys):
        out = tmp_path / "prof.folded"
        rc = main(["profile", "search", str(big_genome), "acgtacgtacgt",
                   "-k", "0", "--hz", "300", "--memory", "--out", str(out)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "index.build: peak" in err

    def test_profile_flag_on_search(self, big_genome, tmp_path, capsys):
        out = tmp_path / "flag.folded"
        rc = main(["search", str(big_genome), "acgtacgtacgt", "-k", "2",
                   "--profile", str(out)])
        assert rc == 0
        assert "span:" in out.read_text()
        assert "written to" in capsys.readouterr().err

    def test_inner_failure_still_stops_profiler(self, tmp_path):
        """An inner-command crash propagates (same contract as running
        the command directly), but the profiler and obs singleton are
        cleaned up on the way out."""
        from repro.obs import OBS, PROFILER

        with pytest.raises(FileNotFoundError):
            main(["profile", "search", str(tmp_path / "missing.txt"),
                  "acgt", "--out", str(tmp_path / "p.folded")])
        assert not PROFILER.is_running()
        assert not OBS.enabled


class TestMetricsLint:
    def test_clean_exposition_file(self, tmp_path, capsys):
        from repro.obs.export import render_openmetrics
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("q", engine="stree", k=1).inc(2)
        registry.histogram("lat", (1, 10), engine="stree").observe(
            0.5, trace_id="abcd")
        path = tmp_path / "expo.txt"
        path.write_text(render_openmetrics(registry.to_dict()))
        assert main(["metrics-lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_exposition_file(self, tmp_path, capsys):
        path = tmp_path / "expo.txt"
        path.write_text("# TYPE g gauge\ng inf\n# EOF\n")
        assert main(["metrics-lint", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["metrics-lint", str(tmp_path / "nope.txt")]) == 2
        assert "error" in capsys.readouterr().err


class TestShardedCli:
    @pytest.fixture
    def big_genome_file(self, tmp_path):
        import random

        rnd = random.Random(17)
        text = "".join(rnd.choice("acgt") for _ in range(1200))
        path = tmp_path / "big.fa"
        path.write_text(f">big\n{text}\n")
        return path, text

    def test_index_shards_writes_manifest_and_shard_files(
        self, big_genome_file, tmp_path, capsys
    ):
        genome, text = big_genome_file
        out = tmp_path / "big.shd"
        rc = main(["index", str(genome), "-o", str(out), "--format", "bin",
                   "--shards", "4", "--max-pattern", "32", "--max-k", "3"])
        assert rc == 0
        assert "manifest + 4 shard file(s)" in capsys.readouterr().out
        assert sorted(p.name for p in tmp_path.glob("big.shard*")) == [
            f"big.shard{i:04d}.fmbin" for i in range(4)
        ]
        from repro import KMismatchIndex, ShardedIndex

        opened = KMismatchIndex.open(out)
        assert isinstance(opened, ShardedIndex)
        assert opened.text == text

    def test_index_build_workers_byte_identical(
        self, big_genome_file, tmp_path, capsys
    ):
        genome, _ = big_genome_file
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_dir.mkdir()
        parallel_dir.mkdir()
        rc = main(["index", str(genome), "-o", str(serial_dir / "big.shd"),
                   "--format", "bin", "--shards", "3", "--max-pattern", "32",
                   "--max-k", "3"])
        assert rc == 0
        rc = main(["index", str(genome), "-o", str(parallel_dir / "big.shd"),
                   "--format", "bin", "--shards", "3", "--max-pattern", "32",
                   "--max-k", "3", "--build-workers", "2"])
        assert rc == 0
        capsys.readouterr()
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        assert serial_files == sorted(p.name for p in parallel_dir.iterdir())
        assert len(serial_files) == 4  # manifest + 3 shard files
        for name in serial_files:
            assert (parallel_dir / name).read_bytes() == \
                (serial_dir / name).read_bytes(), name

    def test_index_shards_requires_bin_format(self, big_genome_file, tmp_path, capsys):
        genome, _ = big_genome_file
        rc = main(["index", str(genome), "-o", str(tmp_path / "x.shd"),
                   "--shards", "2"])
        assert rc == 2
        assert "--format bin" in capsys.readouterr().err

    def test_search_and_map_against_manifest(self, big_genome_file, tmp_path, capsys):
        genome, text = big_genome_file
        out = tmp_path / "big.shd"
        assert main(["index", str(genome), "-o", str(out), "--format", "bin",
                     "--shards", "3"]) == 0
        capsys.readouterr()
        # A window straddling the first core boundary (1200/3 = 400):
        # sharded answers must match the flat engine, through the CLI too.
        pattern = text[395:415]
        rc = main(["search", str(out), pattern, "-k", "1", "--index"])
        assert rc == 0
        starts = [line.split("\t")[0]
                  for line in capsys.readouterr().out.splitlines() if line]
        from repro import KMismatchIndex

        flat = KMismatchIndex(text)
        assert starts == [str(o.start) for o in flat.search(pattern, 1)]

        reads = tmp_path / "reads.txt"
        reads.write_text(text[100:130] + "\n" + text[790:820] + "\n")
        sam = tmp_path / "out.sam"
        rc = main(["map", "--index-file", str(out), str(reads), "-k", "1",
                   "-o", str(sam)])
        assert rc == 0
        body = sam.read_text()
        assert "LN:1200" in body  # facade-level text_length, not shard-local

    def test_stats_by_shard(self, big_genome_file, tmp_path, capsys):
        genome, text = big_genome_file
        out = tmp_path / "big.shd"
        trace = tmp_path / "trace.json"
        assert main(["index", str(genome), "-o", str(out), "--format", "bin",
                     "--shards", "3"]) == 0
        assert main(["search", str(out), text[50:70], "-k", "1", "--index",
                     "--stats-json", str(trace)]) == 0
        capsys.readouterr()
        rc = main(["stats", str(trace), "--by", "shard"])
        assert rc == 0
        rendered = capsys.readouterr().out
        assert "query.shard_ms" in rendered
        assert "query.shard_occurrences" in rendered
        for shard in ("0", "1", "2"):
            assert f"\n{shard} " in rendered or f"\n{shard}\t" in rendered

    def test_engines_reports_sharded_column(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        header = [line for line in out.splitlines() if "capabilities" in line][0]
        assert "sharded" in header
        row = [line for line in out.splitlines() if line.startswith("algorithm_a ")][0]
        assert " yes " in row

    def test_serve_metrics_sharded_exposes_shard_labels(
        self, big_genome_file, tmp_path, capsys
    ):
        import os
        import signal
        import threading
        import time
        from urllib.request import urlopen

        genome, text = big_genome_file
        reads = tmp_path / "reads.txt"
        reads.write_text(text[30:60] + "\n" + text[420:450] + "\n")
        captured = {}

        def grab_then_stop():
            # Poll until the routed workload's {shard} series appear,
            # then ask the server to shut down gracefully (SIGTERM is
            # how serve-metrics is stopped in CI).
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                try:
                    with urlopen("http://127.0.0.1:9188/metrics",
                                 timeout=5.0) as response:
                        body = response.read().decode()
                    if 'shard="1"' in body:
                        captured["text"] = body
                        break
                except OSError:
                    pass
                time.sleep(0.05)
            os.kill(os.getpid(), signal.SIGTERM)

        scraper = threading.Thread(target=grab_then_stop, daemon=True)
        scraper.start()
        rc = main(["serve-metrics", str(genome), "--reads", str(reads),
                   "-k", "1", "--shards", "2", "--port", "9188",
                   "--duration", "30"])
        scraper.join(timeout=20.0)
        assert rc == 0
        exposition = captured["text"]
        assert 'repro_query_shard_ms_bucket{engine="algorithm_a"' in exposition
        assert 'shard="0"' in exposition and 'shard="1"' in exposition
