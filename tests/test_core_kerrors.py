"""Tests for k-errors (Levenshtein) matching (repro.core.kerrors)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alphabet import DNA
from repro.bwt import FMIndex
from repro.core.kerrors import (
    EditOccurrence,
    KErrorsSearcher,
    best_per_start,
    edit_distance,
    naive_kerrors_search,
)
from repro.errors import PatternError

from conftest import random_dna

dna = st.text(alphabet="acgt", min_size=1, max_size=40)
pat = st.text(alphabet="acgt", min_size=1, max_size=8)


def make_searcher(text):
    return KErrorsSearcher(FMIndex(text[::-1], DNA))


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("kitten", "sitting", 3),
            ("acagaca", "acgaca", 1),
            ("", "abc", 3),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @given(pat, pat)
    def test_symmetry_and_bounds(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


class TestKErrorsSearch:
    def test_exact_reduces_to_k0(self):
        occs = make_searcher("acagaca").search("aca", 0)
        assert [(o.start, o.length, o.distance) for o in occs] == [
            (0, 3, 0), (4, 3, 0),
        ]

    def test_single_deletion_in_target(self):
        # Pattern acgt; target has acgt and act (g deleted).
        occs = make_searcher("acgtxact".replace("x", "g")).search("acgt", 1)
        starts = {(o.start, o.distance) for o in occs}
        assert (0, 0) in starts

    def test_insertion_and_substitution(self):
        text = "aacgta"
        searcher = make_searcher(text)
        # "acta" is within edit distance 1 of "acgta" (delete g).
        occs = searcher.search("acta", 1)
        windows = {(o.start, o.length) for o in occs}
        assert (1, 5) in windows  # acgta

    def test_rejects_bad_args(self):
        searcher = make_searcher("acgt")
        with pytest.raises(PatternError):
            searcher.search("", 1)
        with pytest.raises(PatternError):
            searcher.search("a", -1)

    @given(dna, pat, st.integers(0, 2))
    @settings(max_examples=80, deadline=None)
    def test_against_naive(self, text, pattern, k):
        got = make_searcher(text).search(pattern, k)
        assert got == naive_kerrors_search(text, pattern, k)

    def test_k0_agrees_with_hamming_search(self, rng):
        for _ in range(10):
            text = random_dna(rng, 60)
            pattern = random_dna(rng, 6)
            ed = make_searcher(text).search(pattern, 0)
            direct = [
                i for i in range(len(text) - 6 + 1) if text[i:i + 6] == pattern
            ]
            assert [o.start for o in ed] == direct
            assert all(o.length == 6 and o.distance == 0 for o in ed)


class TestBestPerStart:
    def test_picks_lowest_distance(self):
        occs = [EditOccurrence(3, 9, 1), EditOccurrence(3, 10, 0), EditOccurrence(5, 9, 1)]
        best = best_per_start(occs)
        assert best == [EditOccurrence(3, 10, 0), EditOccurrence(5, 9, 1)]

    def test_tie_breaks_on_length(self):
        occs = [EditOccurrence(0, 10, 1), EditOccurrence(0, 9, 1)]
        assert best_per_start(occs) == [EditOccurrence(0, 9, 1)]

    def test_empty(self):
        assert best_per_start([]) == []
