"""Tests for the analytical models (repro.analysis)."""

import random

import pytest

from repro.analysis import (
    expected_occurrences,
    expected_stree_nodes,
    match_probability,
    occurrence_profile,
    recommended_k_for_error_rate,
)
from repro.baselines.naive import naive_count
from repro.errors import PatternError


class TestMatchProbability:
    def test_k_equals_m(self):
        assert match_probability(5, 5) == 1.0
        assert match_probability(5, 9) == 1.0

    def test_exact_match(self):
        assert match_probability(3, 0, sigma=4) == pytest.approx(1 / 64)

    def test_monotone_in_k(self):
        probs = [match_probability(10, k) for k in range(11)]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_binary_alphabet(self):
        # m=1, k=0, sigma=2: fair coin.
        assert match_probability(1, 0, sigma=2) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(PatternError):
            match_probability(0, 1)
        with pytest.raises(PatternError):
            match_probability(3, -1)
        with pytest.raises(PatternError):
            match_probability(3, 1, sigma=1)


class TestExpectedOccurrences:
    def test_pattern_too_long(self):
        assert expected_occurrences(5, 10, 2) == 0.0

    def test_matches_simulation(self):
        # Average naive counts over random instances vs the formula.
        rng = random.Random(8)
        n, m, k = 300, 6, 1
        trials = 200
        total = 0
        for _ in range(trials):
            text = "".join(rng.choice("acgt") for _ in range(n))
            pattern = "".join(rng.choice("acgt") for _ in range(m))
            total += naive_count(text, pattern, k)
        simulated = total / trials
        predicted = expected_occurrences(n, m, k)
        assert simulated == pytest.approx(predicted, rel=0.25)

    def test_profile_shape(self):
        profile = occurrence_profile(1000, 8)
        assert len(profile) == 9
        assert profile == sorted(profile)
        assert profile[-1] == pytest.approx(1000 - 8 + 1)


class TestTreeModel:
    def test_upper_bounds_measured_nodes(self):
        from repro.bwt import FMIndex
        from repro.core.stree import STreeSearcher

        rng = random.Random(9)
        text = "".join(rng.choice("acgt") for _ in range(2000))
        fm = FMIndex(text[::-1])
        for k in (0, 1, 2):
            pattern = "".join(rng.choice("acgt") for _ in range(12))
            _, stats = STreeSearcher(fm, use_phi=False).search(pattern, k)
            assert stats.nodes_expanded <= expected_stree_nodes(len(text), 12, k)

    def test_grows_with_k(self):
        sizes = [expected_stree_nodes(10_000, 50, k) for k in (0, 2, 5, 10)]
        assert sizes == sorted(sizes)

    def test_validation(self):
        with pytest.raises(PatternError):
            expected_stree_nodes(0, 5, 1)


class TestRecommendedK:
    def test_wgsim_default_regime(self):
        # 100 bp at 2% error: ~2 expected errors; the 99th percentile
        # needs k around 5-7 — consistent with the paper's k range.
        k = recommended_k_for_error_rate(100, 0.02)
        assert 4 <= k <= 8

    def test_zero_error_rate(self):
        assert recommended_k_for_error_rate(100, 0.0) == 0

    def test_monotone_in_rate(self):
        ks = [recommended_k_for_error_rate(100, e) for e in (0.01, 0.05, 0.1)]
        assert ks == sorted(ks)

    def test_validation(self):
        with pytest.raises(PatternError):
            recommended_k_for_error_rate(10, 1.5)
        with pytest.raises(PatternError):
            recommended_k_for_error_rate(10, 0.1, quantile=2.0)
