"""Tests for the ASCII chart renderer (repro.bench.plotting)."""

import pytest

from repro.bench.plotting import ascii_chart


class TestAsciiChart:
    def test_basic_shape(self):
        out = ascii_chart([1, 2, 3], {"A": [1.0, 2.0, 3.0]}, height=5, width=20)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # rows + axis + x labels + legend
        assert "* A" in lines[-1] or "A" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_chart([1, 2], {"A": [1.0, 2.0], "B": [2.0, 1.0]}, height=4, width=10)
        assert "*" in out and "o" in out

    def test_log_scale(self):
        out = ascii_chart(
            [1, 2, 3], {"A": [0.001, 0.1, 10.0]}, height=6, width=20,
            y_label="time", log_y=True,
        )
        assert "log scale" in out
        # On a log axis the three points climb linearly: the middle point
        # sits mid-chart, not at the bottom.
        rows = [line for line in out.splitlines() if "|" in line]
        middle = rows[len(rows) // 2]
        assert "*" in middle

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"A": [0.0]}, log_y=True)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"A": [1.0]})

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})

    def test_single_point(self):
        out = ascii_chart([5], {"A": [2.0]}, height=3, width=8)
        assert "*" in out

    def test_extremes_labelled(self):
        out = ascii_chart([1, 2], {"A": [0.5, 120.0]}, height=4, width=10)
        assert "120" in out and "0.5" in out
