"""Tests for the bit-parallel matchers (repro.baselines.bitparallel)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bitparallel import (
    MyersMatcher,
    WuManberMatcher,
    myers_match_ends,
    shift_or_search,
    wu_manber_search,
)
from repro.core.kerrors import naive_kerrors_search
from repro.errors import PatternError
from repro.strings.kmp import kmp_search

from conftest import INTRO_PATTERN, INTRO_TARGET, reference_occurrences

dna = st.text(alphabet="acgt", min_size=1, max_size=60)
pat = st.text(alphabet="acgt", min_size=1, max_size=12)
long_pat = st.text(alphabet="acgt", min_size=65, max_size=90)


class TestShiftOr:
    def test_simple(self):
        assert shift_or_search("acagaca", "aca") == [0, 4]

    def test_single_char(self):
        assert shift_or_search("acagaca", "a") == [0, 2, 4, 6]

    def test_empty_pattern(self):
        assert shift_or_search("acgt", "") == []

    def test_overlapping(self):
        assert shift_or_search("aaaa", "aa") == [0, 1, 2]

    @given(dna, pat)
    def test_against_kmp(self, text, pattern):
        assert shift_or_search(text, pattern) == kmp_search(text, pattern)

    @given(st.text(alphabet="acgt", min_size=70, max_size=120), long_pat)
    @settings(max_examples=20)
    def test_patterns_beyond_word_size(self, text, pattern):
        # Python ints extend Shift-Or past 64 bits transparently.
        assert shift_or_search(text, pattern) == kmp_search(text, pattern)


class TestWuManber:
    def test_paper_fig3_example(self):
        occs = wu_manber_search("acagaca", "tcaca", 2)
        assert [(o.start, o.mismatches) for o in occs] == [(0, (0, 3)), (2, (0, 1))]

    def test_intro_example(self):
        occs = wu_manber_search(INTRO_TARGET, INTRO_PATTERN, 4)
        assert [o.start for o in occs] == [2]

    def test_k0_equals_shift_or(self):
        text, pattern = "acagacagtt", "acag"
        assert [o.start for o in wu_manber_search(text, pattern, 0)] == shift_or_search(
            text, pattern
        )

    def test_k_clamped_to_m(self):
        occs = wu_manber_search("acgt", "aa", 99)
        assert [o.start for o in occs] == [0, 1, 2]

    def test_rejects_bad_args(self):
        with pytest.raises(PatternError):
            WuManberMatcher("")
        with pytest.raises(PatternError):
            WuManberMatcher("a").search("acgt", -1)

    def test_pattern_longer_than_text(self):
        assert WuManberMatcher("acgta").search("ac", 2) == []

    @given(dna, pat, st.integers(0, 6))
    @settings(max_examples=120, deadline=None)
    def test_against_naive(self, text, pattern, k):
        got = [(o.start, o.mismatches) for o in wu_manber_search(text, pattern, k)]
        assert got == reference_occurrences(text, pattern, k)


class TestMyers:
    def test_exact_end(self):
        ends = myers_match_ends("aacgta", "acgt", 0)
        assert ends == {4: 0}

    def test_rejects_bad_args(self):
        with pytest.raises(PatternError):
            MyersMatcher("")
        with pytest.raises(PatternError):
            MyersMatcher("a").match_ends("acgt", -1)

    def test_distances_stream_shape(self):
        stream = list(MyersMatcher("acg").iter_distances("acgacg"))
        assert [i for i, _ in stream] == list(range(6))
        assert stream[2][1] == 0  # acg ends at 2 exactly

    @given(dna, st.text(alphabet="acgt", min_size=1, max_size=8), st.integers(0, 3))
    @settings(max_examples=100, deadline=None)
    def test_ends_against_naive_kerrors(self, text, pattern, k):
        expected = {}
        for occ in naive_kerrors_search(text, pattern, k):
            end = occ.start + occ.length - 1
            expected[end] = min(expected.get(end, len(pattern) + 1), occ.distance)
        assert myers_match_ends(text, pattern, k) == expected

    def test_agrees_with_bwt_kerrors(self):
        from repro.alphabet import DNA
        from repro.bwt import FMIndex
        from repro.core.kerrors import KErrorsSearcher

        text = "acagacagttacgtaacg"
        pattern = "gacagt"
        k = 2
        bwt_occs = KErrorsSearcher(FMIndex(text[::-1], DNA)).search(pattern, k)
        bwt_ends = {}
        for occ in bwt_occs:
            end = occ.start + occ.length - 1
            bwt_ends[end] = min(bwt_ends.get(end, 99), occ.distance)
        assert bwt_ends == myers_match_ends(text, pattern, k)
