"""Tests for the S-tree baseline (repro.core.stree)."""

import random

import pytest

from repro.alphabet import DNA
from repro.bwt import FMIndex
from repro.core.stree import STreeSearcher, compute_phi
from repro.errors import PatternError

from conftest import PAPER_PATTERN, PAPER_TARGET, random_dna, reference_occurrences


def make_searcher(text, use_phi=True):
    return STreeSearcher(FMIndex(text[::-1], DNA), use_phi=use_phi)


class TestPhi:
    def test_paper_example_values(self):
        # Sec. IV-A: s = acagaca, r = tcaca.  φ(1) = 2 (1-based): both 't'
        # and 'cac' are absent from s.  φ(3) = 0: every substring of
        # r[3..5] = aca occurs.  (0-based: φ[0] = 2, φ[2] = 0.)
        fm = FMIndex(PAPER_TARGET[::-1], DNA)
        phi = compute_phi(fm, DNA.encode(PAPER_PATTERN))
        assert phi[0] == 2
        assert phi[2] == 0
        assert phi[len(PAPER_PATTERN)] == 0

    def test_all_substrings_present(self):
        fm = FMIndex("acgt"[::-1], DNA)
        phi = compute_phi(fm, DNA.encode("acgt"))
        assert phi == [0, 0, 0, 0, 0]

    def test_phi_is_a_sound_lower_bound(self):
        # φ(i) never exceeds the true minimum number of mismatches that
        # any window of the text must have against pattern[i:].
        rng = random.Random(12)
        text = random_dna(rng, 150)
        fm = FMIndex(text[::-1], DNA)
        pattern = random_dna(rng, 20)
        phi = compute_phi(fm, DNA.encode(pattern))
        assert all(0 <= v <= len(pattern) for v in phi)
        for i in (0, 5, 10):
            suffix = pattern[i:]
            best = min(
                sum(1 for a, b in zip(suffix, text[p:p + len(suffix)]) if a != b)
                for p in range(len(text) - len(suffix) + 1)
            )
            assert phi[i] <= best


class TestSTreeSearch:
    def test_paper_fig3(self):
        occs, _ = make_searcher(PAPER_TARGET).search(PAPER_PATTERN, 2)
        assert [(o.start, o.mismatches) for o in occs] == [(0, (0, 3)), (2, (0, 1))]

    def test_exact_match_k0(self):
        occs, _ = make_searcher(PAPER_TARGET).search("aca", 0)
        assert [o.start for o in occs] == [0, 4]
        assert all(o.mismatches == () for o in occs)

    def test_pattern_longer_than_text(self):
        occs, stats = make_searcher("acg").search("acgtacgt", 2)
        assert occs == []
        assert stats.nodes_expanded == 0

    def test_rejects_empty_pattern(self):
        with pytest.raises(PatternError):
            make_searcher("acgt").search("", 1)

    def test_rejects_negative_k(self):
        with pytest.raises(PatternError):
            make_searcher("acgt").search("a", -1)

    def test_k_ge_m_matches_everywhere(self):
        occs, _ = make_searcher("acgtacg").search("tt", 2)
        assert [o.start for o in occs] == list(range(6))

    def test_phi_and_nophi_agree(self, rng):
        for _ in range(25):
            text = random_dna(rng, rng.randint(10, 120))
            pattern = random_dna(rng, rng.randint(2, 15))
            k = rng.randint(0, 4)
            with_phi, s1 = make_searcher(text, True).search(pattern, k)
            without, s2 = make_searcher(text, False).search(pattern, k)
            assert with_phi == without
            assert s1.nodes_expanded <= s2.nodes_expanded

    def test_matches_naive(self, rng):
        for _ in range(40):
            text = random_dna(rng, rng.randint(5, 100))
            pattern = random_dna(rng, rng.randint(1, 12))
            k = rng.randint(0, 6)
            got, _ = make_searcher(text).search(pattern, k)
            assert [(o.start, o.mismatches) for o in got] == reference_occurrences(
                text, pattern, k
            )

    def test_stats_accounting(self):
        occs, stats = make_searcher(PAPER_TARGET, use_phi=False).search(PAPER_PATTERN, 2)
        assert stats.completed_paths == 2
        assert stats.rows_located == 2
        assert stats.leaves >= stats.completed_paths
        assert stats.nodes_expanded > 0
        assert stats.rank_queries > 0

    def test_phi_prunes_counted(self):
        # A pattern wholly absent from the text forces φ cuts at the root.
        occs, stats = make_searcher("aaaaaaaaaa").search("gtgtgtgt", 1)
        assert occs == []
        assert stats.phi_pruned > 0
