"""Tests for the q-gram hash-index baseline (repro.baselines.qgram)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.qgram import QGramIndex, qgram_search
from repro.errors import PatternError

from conftest import INTRO_PATTERN, INTRO_TARGET, random_dna, reference_occurrences

dna = st.text(alphabet="acgt", min_size=1, max_size=80)
pat = st.text(alphabet="acgt", min_size=1, max_size=16)


class TestQGramIndex:
    def test_positions(self):
        index = QGramIndex("acagaca", q=3)
        assert sorted(index.positions("aca")) == [0, 4]
        assert index.positions("ttt") == []

    def test_positions_wrong_length(self):
        with pytest.raises(PatternError):
            QGramIndex("acgt", q=3).positions("ac")

    def test_rejects_bad_q(self):
        with pytest.raises(PatternError):
            QGramIndex("acgt", q=0)

    def test_stats(self):
        stats = QGramIndex("acagaca", q=3).stats()
        assert stats["q"] == 3
        assert stats["indexed_positions"] == 5
        assert stats["distinct_grams"] <= 5

    def test_intro_example(self):
        index = QGramIndex(INTRO_TARGET, q=2)
        occs = index.search(INTRO_PATTERN, 4)
        assert [o.start for o in occs] == [2]

    def test_exact(self):
        assert [o.start for o in qgram_search("acagaca", "aca", 0, q=3)] == [0, 4]

    def test_short_pattern_fallback(self):
        # Blocks shorter than q: falls back to full verification, stays exact.
        got = qgram_search("acgtacgt", "ac", 1, q=8)
        assert [(o.start, o.mismatches) for o in got] == reference_occurrences(
            "acgtacgt", "ac", 1
        )

    def test_rejects_bad_search_args(self):
        index = QGramIndex("acgt", q=2)
        with pytest.raises(PatternError):
            index.search("", 0)
        with pytest.raises(PatternError):
            index.search("a", -1)

    def test_index_reusable_across_patterns(self, rng):
        text = random_dna(rng, 200)
        index = QGramIndex(text, q=4)
        for _ in range(10):
            pattern = random_dna(rng, rng.randint(8, 20))
            k = rng.randint(0, 3)
            got = [(o.start, o.mismatches) for o in index.search(pattern, k)]
            assert got == reference_occurrences(text, pattern, k)

    @given(dna, pat, st.integers(0, 4), st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_against_naive(self, text, pattern, k, q):
        got = [(o.start, o.mismatches) for o in qgram_search(text, pattern, k, q=q)]
        assert got == reference_occurrences(text, pattern, k)
