"""Tests for the facade extensions: variants, mapping, persistence."""

import pytest

from repro import KMismatchIndex
from repro.core.kerrors import naive_kerrors_search
from repro.core.matcher import ReadHit
from repro.errors import PatternError, SerializationError
from repro.simulate import GenomeConfig, ReadConfig, generate_genome, simulate_reads

from conftest import random_dna


class TestSearchEdit:
    def test_facade_matches_naive(self, rng):
        for _ in range(8):
            text = random_dna(rng, 50)
            pattern = random_dna(rng, 7)
            index = KMismatchIndex(text)
            assert index.search_edit(pattern, 1) == naive_kerrors_search(text, pattern, 1)

    def test_validates_alphabet(self):
        with pytest.raises(Exception):
            KMismatchIndex("acgt").search_edit("axc", 1)


class TestSearchWildcard:
    def test_basic(self):
        index = KMismatchIndex("acagaca")
        assert [o.start for o in index.search_wildcard("ana")] == [0, 2, 4]

    def test_with_budget(self):
        index = KMismatchIndex("acagaca")
        # tnaca vs agaca (start 2): t/a mismatch, n wild, a/a, c/c, a/a.
        occs = index.search_wildcard("tnaca", k=1)
        assert [(o.start, o.mismatches) for o in occs] == [(2, (0,))]
        # With k=2 the window at 0 (acaga) also fits: t/a and c/g.
        occs2 = index.search_wildcard("tnaca", k=2)
        assert [o.start for o in occs2] == [0, 2]


class TestMapRead:
    def test_both_strands(self):
        genome = generate_genome(GenomeConfig(length=4_000, seed=5))
        index = KMismatchIndex(genome)
        reads = simulate_reads(
            genome, ReadConfig(n_reads=20, length=40, error_rate=0.0, mutation_rate=0.0, seed=6)
        )
        for read in reads:
            hits = index.map_read(read.sequence, k=0)
            expected_strand = "-" if read.reverse_strand else "+"
            assert any(
                h.occurrence.start == read.position and h.strand == expected_strand
                for h in hits
            ), read

    def test_requires_dna(self):
        with pytest.raises(PatternError):
            KMismatchIndex("mississippi").map_read("issi", 0)

    def test_hit_ordering(self):
        index = KMismatchIndex("acagacat")
        hits = index.map_read("aca", 0)
        assert hits == sorted(hits)
        assert all(isinstance(h, ReadHit) for h in hits)

    def test_palindromic_read_hits_both_strands(self):
        # 'at' is its own reverse complement: every occurrence appears
        # once per strand.
        index = KMismatchIndex("atatat")
        hits = index.map_read("at", 0)
        strands = {h.strand for h in hits}
        assert strands == {"+", "-"}


class TestBestMatch:
    def test_prefers_exact(self):
        index = KMismatchIndex("acagaca")
        occs = index.best_match("aca", k_max=2)
        assert [o.start for o in occs] == [0, 4]
        assert all(o.n_mismatches == 0 for o in occs)

    def test_finds_minimal_k(self):
        index = KMismatchIndex("acagaca")
        occs = index.best_match("tcaca", k_max=4)
        # Nothing at k=0/1; both Fig. 3 hits carry exactly 2 mismatches.
        assert {o.n_mismatches for o in occs} == {2}
        assert [o.start for o in occs] == [0, 2]

    def test_empty_when_above_budget(self):
        index = KMismatchIndex("aaaaaaa")
        assert index.best_match("ttt", k_max=2) == []

    def test_filters_to_minimum_within_k(self):
        # At the first k with hits, only minimal-distance hits return.
        index = KMismatchIndex("acagacat")
        occs = index.best_match("acat", k_max=3)
        best = min(o.n_mismatches for o in occs)
        assert all(o.n_mismatches == best for o in occs)

    def test_rejects_negative(self):
        import pytest as _pytest

        with _pytest.raises(PatternError):
            KMismatchIndex("acgt").best_match("a", -1)


class TestSearchBatch:
    def test_batch_matches_individual(self):
        index = KMismatchIndex("acagacagtt")
        patterns = ["aca", "gtt", "ttt"]
        batch = index.search_batch(patterns, k=1)
        assert set(batch) == set(patterns)
        for pattern in patterns:
            assert batch[pattern] == index.search(pattern, 1)


class TestPersistence:
    def test_roundtrip(self):
        text = "acagacagttacgt"
        index = KMismatchIndex(text)
        clone = KMismatchIndex.loads(index.dumps())
        assert clone.text == text
        assert clone.search("acag", 1) == index.search("acag", 1)
        assert clone.count("aca") == index.count("aca")

    def test_roundtrip_preserves_all_methods(self, rng):
        text = random_dna(rng, 120)
        index = KMismatchIndex(text)
        clone = KMismatchIndex.loads(index.dumps())
        pattern = random_dna(rng, 8)
        for method in ("algorithm_a", "stree"):
            assert clone.search(pattern, 2, method=method) == index.search(
                pattern, 2, method=method
            )

    def test_bad_payloads(self):
        with pytest.raises(SerializationError):
            KMismatchIndex.loads("{not json")
        with pytest.raises(SerializationError):
            KMismatchIndex.loads('{"magic": "nope"}')
        good = KMismatchIndex("acgt").dumps()
        import json

        payload = json.loads(good)
        payload["version"] = 42
        with pytest.raises(SerializationError):
            KMismatchIndex.loads(json.dumps(payload))
