"""Tests for the zero-copy binary index format (repro.io.binfmt).

Covers the round-trip property (randomized genomes and alphabets, both
mmap and in-memory loading, identical query answers *and* identical
probe counters), the corruption taxonomy (every malformed file raises
:class:`IndexCorruptionError` naming the offending field), and the
shared-memory process-pool transfer built on top of the format.
"""

import random
import struct

import pytest

from repro.alphabet import Alphabet
from repro.bwt.fmindex import FMIndex
from repro.core.matcher import KMismatchIndex
from repro.engine.executor import BatchExecutor
from repro.errors import IndexCorruptionError, SerializationError
from repro.io import binfmt
from repro.obs import OBS

PROBE_COUNTERS = ("rank.rankall.occ_probes", "rank.rankall.counts_at_probes")


def _random_text(rnd, symbols, length):
    return "".join(rnd.choice(symbols) for _ in range(length))


def _probe_counts(fn):
    """Run ``fn`` under a fresh OBS and return the rankall probe totals."""
    OBS.reset().enable()
    try:
        fn()
        return {name: OBS.metrics.counter(name).value for name in PROBE_COUNTERS}
    finally:
        OBS.disable()
        OBS.reset()


def _exercise(fm, queries):
    """The query mix every round-trip comparison runs on one index."""
    out = []
    for query in queries:
        out.append(fm.count(query))
        out.append(sorted(fm.locate(query)))
    for i in range(0, fm.text_length + 1, 3):
        out.append(fm._rank.counts_at(i))
        for code in range(fm.alphabet.size):
            out.append(fm._rank.occ(code, i))
    return out


class TestRoundTripProperty:
    @pytest.mark.parametrize("use_mmap", [True, False], ids=["mmap", "bytes"])
    def test_randomized_genomes_and_alphabets(self, tmp_path, use_mmap):
        rnd = random.Random(0xB40F)
        for trial in range(6):
            symbols = rnd.choice(["acgt", "ab", "abcdefg"])
            length = rnd.randint(20, 300)
            text = _random_text(rnd, symbols, length)
            queries = [
                text[pos : pos + rnd.randint(2, 8)]
                for pos in (rnd.randrange(max(1, length - 8)) for _ in range(5))
            ]
            fm = FMIndex(
                text,
                alphabet=Alphabet(symbols),
                occ_sample_rate=rnd.choice([1, 3, 4]),
                sa_sample_rate=rnd.choice([1, 4, 8]),
            )
            path = tmp_path / f"trial{trial}.fmbin"
            fm.save(path)
            loaded = FMIndex.load(path, mmap=use_mmap)

            baseline = _probe_counts(lambda: _exercise(fm, queries))
            probes = _probe_counts(lambda: _exercise(loaded, queries))
            assert _exercise(loaded, queries) == _exercise(fm, queries)
            # Same answers *via the same amount of work*: the loaded
            # checkpoint table must drive probe-for-probe identical
            # backward searches, or the format changed the structure.
            assert probes == baseline

            assert loaded.text_length == fm.text_length
            assert loaded.sa_sample_rate == fm.sa_sample_rate
            assert loaded.bwt == fm.bwt
            assert loaded.reconstruct_text() == fm.reconstruct_text()

    def test_kmismatch_round_trip_with_checksums(self, tmp_path):
        rnd = random.Random(7)
        text = _random_text(rnd, "acgt", 600)
        index = KMismatchIndex(text)
        path = tmp_path / "idx.fmbin"
        index.save(path)
        loaded = KMismatchIndex.load(path, mmap=False, verify_checksums=True)
        pattern = text[37:67]
        for k in (0, 1, 2):
            assert loaded.search(pattern, k) == index.search(pattern, k)
        assert loaded.text == text
        loaded.verify()

    def test_open_sniffs_both_formats(self, tmp_path):
        index = KMismatchIndex("acagacagatta")
        bin_path = tmp_path / "idx.fmbin"
        json_path = tmp_path / "idx.json"
        index.save(bin_path)
        json_path.write_text(index.dumps())
        for path in (bin_path, json_path):
            assert KMismatchIndex.open(path).search("acag", 1) == index.search("acag", 1)


class TestSampledSAView:
    def test_mapping_interface(self):
        from array import array

        rows = memoryview(array("I", [2, 5, 9]))
        positions = memoryview(array("I", [20, 50, 90]))
        view = binfmt.SampledSAView(rows, positions)
        assert len(view) == 3
        assert 5 in view and 4 not in view
        assert view[9] == 90
        assert view.get(2) == 20
        assert view.get(3, -1) == -1
        with pytest.raises(KeyError):
            view[7]
        assert dict(view.items()) == {2: 20, 5: 50, 9: 90}
        assert list(view) == [2, 5, 9]
        assert view == {2: 20, 5: 50, 9: 90}


class TestCorruption:
    """Every malformed file names the offending field in its error."""

    @pytest.fixture
    def blob(self):
        return KMismatchIndex("acagacagattaca").to_binary()

    def _load(self, blob, **kwargs):
        return binfmt.load_fmindex(blob, source="test.fmbin", **kwargs)

    def test_bad_magic(self, blob):
        bad = b"NOTANIDX" + blob[8:]
        with pytest.raises(IndexCorruptionError, match="test.fmbin: magic"):
            self._load(bad)

    def test_version_skew(self, blob):
        bad = bytearray(blob)
        struct.pack_into("<I", bad, 8, binfmt.FORMAT_VERSION + 1)
        with pytest.raises(IndexCorruptionError, match="version") as excinfo:
            self._load(bytes(bad))
        assert f"versions 1..{binfmt.FORMAT_VERSION}" in str(excinfo.value)

    def test_foreign_endianness(self, blob):
        bad = bytearray(blob)
        struct.pack_into("<I", bad, 12, 0x04030201)
        with pytest.raises(IndexCorruptionError, match="endianness stamp"):
            self._load(bytes(bad))

    def test_truncated_file(self, blob):
        with pytest.raises(IndexCorruptionError, match="file size.*truncated"):
            self._load(blob[: len(blob) - 16])

    def test_shorter_than_header(self, blob):
        with pytest.raises(IndexCorruptionError, match="header"):
            self._load(blob[:10])

    def test_section_table_overrun(self, blob):
        bad = bytearray(blob)
        # Push the first section's offset past the end of the file.
        struct.pack_into("<Q", bad, binfmt._HEADER.size + 8, len(blob))
        with pytest.raises(IndexCorruptionError, match="section META"):
            self._load(bytes(bad))

    def test_section_length_mismatch(self, blob):
        bad = bytearray(blob)
        # Shrink the recorded BWTC length: bounds still valid, but the
        # META-derived size check must name the section.
        entry = binfmt._HEADER.size + 2 * binfmt._SECTION.size  # BWTC entry
        (length,) = struct.unpack_from("<Q", bad, entry + 16)
        struct.pack_into("<Q", bad, entry + 16, length - 1)
        with pytest.raises(IndexCorruptionError, match="section BWTC length"):
            self._load(bytes(bad))

    def test_missing_section(self, blob):
        bad = bytearray(blob)
        n_sections = len(binfmt.SECTION_TAGS) - 1
        struct.pack_into(
            "<II", bad, 16,
            binfmt._HEADER.size + binfmt._SECTION.size * n_sections, n_sections,
        )
        with pytest.raises(IndexCorruptionError, match="section SAPO.*missing"):
            self._load(bytes(bad))

    def test_checksum_drift_detected_on_request(self, blob):
        info, sections = binfmt.parse_sections(blob)
        # Flip one byte inside the BWTC payload (stay within the file).
        bad = bytearray(blob)
        offset = len(blob) - len(sections[b"SAPO"]) - 1
        bad[offset] ^= 0xFF
        with pytest.raises(IndexCorruptionError, match="checksum"):
            self._load(bytes(bad), verify_checksums=True)

    def test_corrupt_meta_counts(self, blob):
        fm = binfmt.load_fmindex(blob)
        # Rebuild a blob whose META totals disagree with the BWT length.
        import json as _json

        info, sections = binfmt.parse_sections(blob)
        meta = _json.loads(bytes(sections[b"META"]))
        meta["totals"][0] += 1
        assert sum(meta["totals"]) != meta["bwt_len"]
        # Corrupt META in place only if the new JSON fits the old slot;
        # padding with spaces keeps every offset valid.
        encoded = _json.dumps(meta, sort_keys=True).encode()
        assert len(encoded) <= len(sections[b"META"]) + 8
        bad = blob.replace(bytes(sections[b"META"]), encoded.ljust(len(sections[b"META"])))
        with pytest.raises(IndexCorruptionError, match="META"):
            self._load(bad)
        del fm

    def test_empty_file_via_open(self, tmp_path):
        path = tmp_path / "empty.fmbin"
        path.write_bytes(b"")
        with pytest.raises(IndexCorruptionError, match="header"):
            binfmt.open_fmindex(path)

    def test_wavelet_backend_refused_for_binary(self):
        fm = FMIndex("acagacag", rank_backend="wavelet")
        with pytest.raises(SerializationError, match="rankall"):
            fm.to_binary()

    def test_sniff(self, tmp_path, blob):
        bin_path = tmp_path / "a.fmbin"
        bin_path.write_bytes(blob)
        other = tmp_path / "b.json"
        other.write_text("{}")
        assert binfmt.sniff(bin_path) is True
        assert binfmt.sniff(other) is False
        assert binfmt.sniff(tmp_path / "missing") is False


class TestSharedMemoryTransfer:
    """Process batches hydrate workers from one shared-memory segment."""

    def _make(self, n_reads=12):
        rnd = random.Random(11)
        text = _random_text(rnd, "acgt", 3000)
        index = KMismatchIndex(text)
        reads = [text[i * 40 : i * 40 + 30] for i in range(n_reads)]
        return index, reads

    def test_process_batch_matches_serial(self):
        index, reads = self._make()
        serial = BatchExecutor(workers=0).run_map(index, reads, 2)
        batch = BatchExecutor(workers=2, mode="process", chunk_size=3).run_map(
            index, reads, 2
        )
        # Hit lists are deterministic and input-ordered regardless of
        # which worker served which chunk.  (Aggregate stats may differ
        # from serial: the serial path carries one cross-query memo, a
        # worker only sees its own chunks — same as the thread path.)
        assert batch.results == serial.results
        assert batch.mode == "process"
        assert batch.extra["transfer"] == "shm-bin"
        assert batch.extra["shm_nbytes"] > 0
        assert len(batch.extra["worker_hydrate_ms"]) == batch.workers

    def test_hydration_metrics_reported(self):
        index, reads = self._make()
        OBS.reset().enable()
        try:
            batch = BatchExecutor(workers=2, mode="process", chunk_size=3).run_map(
                index, reads, 2
            )
            hydrations = OBS.metrics.counter("engine.worker.hydrations").value
            hist = OBS.metrics.histogram("engine.worker.hydrate_ms")
            assert hydrations == batch.workers == 2
            assert hist.count == 2
            assert OBS.metrics.gauge("engine.shm.nbytes").value == batch.extra["shm_nbytes"]
        finally:
            OBS.disable()
            OBS.reset()

    def test_json_fallback_when_binary_unsupported(self):
        index, reads = self._make(n_reads=6)
        index.to_binary = lambda: (_ for _ in ()).throw(
            SerializationError("unsupported backend")
        )
        serial = BatchExecutor(workers=0).run_map(index, reads, 1)
        batch = BatchExecutor(workers=2, mode="process", chunk_size=2).run_map(
            index, reads, 1
        )
        assert batch.extra["transfer"] == "shm-json"
        assert batch.results == serial.results

    def test_worker_error_propagates(self):
        index, reads = self._make(n_reads=4)
        with pytest.raises(Exception, match="unknown|failed"):
            BatchExecutor(workers=2, mode="process", chunk_size=2).run_search(
                index, reads, 1, method="no-such-engine"
            )


class TestFormatV2:
    """u64 suffix-array sections behind the META.sa_width flag."""

    def _fm(self, length=400, seed=3):
        rnd = random.Random(seed)
        return FMIndex(_random_text(rnd, "acgt", length))

    def test_writer_defaults_to_v1_for_small_targets(self):
        fm = self._fm()
        blob = fm.to_binary()
        info, sections = binfmt.parse_sections(blob)
        assert info["version"] == 1
        import json as _json

        assert "sa_width" not in _json.loads(bytes(sections[b"META"]))

    def test_forced_u64_round_trips_as_v2(self):
        fm = self._fm()
        blob = binfmt.dump_fmindex(fm, sa_width=8)
        info, sections = binfmt.parse_sections(blob)
        assert info["version"] == 2
        import json as _json

        assert _json.loads(bytes(sections[b"META"]))["sa_width"] == 8
        loaded = binfmt.load_fmindex(blob)
        queries = ["acg", "tta", "gg"]
        assert _exercise(loaded, queries) == _exercise(fm, queries)
        assert loaded.text_length == fm.text_length
        # v2 SA sections are twice the v1 size; everything else matches.
        v1 = binfmt.dump_fmindex(fm, sa_width=4)
        assert len(blob) > len(v1)
        assert binfmt.load_fmindex(v1).reconstruct_text() == fm.reconstruct_text()

    def test_v2_file_saves_and_opens_from_disk(self, tmp_path):
        fm = self._fm()
        path = tmp_path / "wide.fmbin"
        binfmt.save_fmindex(fm, path, sa_width=8)
        for use_mmap in (True, False):
            loaded = binfmt.open_fmindex(path, mmap=use_mmap)
            assert loaded.count("acag") == fm.count("acag")
            assert sorted(loaded.locate("ta")) == sorted(fm.locate("ta"))

    def test_uint32_overflow_raises_index_format_error(self):
        from repro.errors import IndexFormatError

        fm = self._fm(length=60)
        real_length = fm._text_len
        fm._text_len = 2**32  # simulate a > 4 Gbp target
        try:
            with pytest.raises(IndexFormatError) as excinfo:
                binfmt.dump_fmindex(fm, sa_width=4)
        finally:
            fm._text_len = real_length
        message = str(excinfo.value)
        # The error must name the sections and point at the v2 flag.
        assert "SARO/SAPO" in message
        assert "sa_width" in message and "v2" in message

    def test_oversized_target_auto_selects_u64(self):
        import json as _json

        fm = self._fm(length=60)
        real_length = fm._text_len
        fm._text_len = 2**32  # simulate a > 4 Gbp target
        try:
            blob = binfmt.dump_fmindex(fm)  # no width forced: auto-select
        finally:
            fm._text_len = real_length
        # The writer must have picked u64 sections and stamped version 2
        # instead of truncating (the blob itself is inconsistent — its
        # META length is faked — so only the header/META choice is read).
        (version,) = struct.unpack_from("<I", blob, 8)
        assert version == 2
        info, sections = binfmt.parse_sections(blob)
        assert _json.loads(bytes(sections[b"META"]))["sa_width"] == 8

    def test_invalid_sa_width_rejected(self):
        with pytest.raises(SerializationError, match="sa_width"):
            binfmt.dump_fmindex(self._fm(length=40), sa_width=2)

    def test_v1_reader_meets_v2_flag(self):
        # A blob whose META says sa_width=8 but whose header claims
        # version 1 is self-contradictory: v1 readers would misparse the
        # u64 sections as u32.  The loader must refuse, naming the field.
        fm = self._fm(length=80)
        bad = bytearray(binfmt.dump_fmindex(fm, sa_width=8))
        struct.pack_into("<I", bad, 8, 1)
        with pytest.raises(IndexCorruptionError, match="META.sa_width") as excinfo:
            binfmt.load_fmindex(bytes(bad), source="skew.fmbin")
        assert "version 2" in str(excinfo.value)

    def test_bad_sa_width_value_rejected(self):
        import json as _json

        fm = self._fm(length=80)
        blob = binfmt.dump_fmindex(fm, sa_width=8)
        info, sections = binfmt.parse_sections(blob)
        meta = _json.loads(bytes(sections[b"META"]))
        meta["sa_width"] = 6
        encoded = _json.dumps(meta, sort_keys=True).encode()
        assert len(encoded) == len(sections[b"META"])  # same digit count
        bad = blob.replace(bytes(sections[b"META"]), encoded)
        with pytest.raises(IndexCorruptionError, match="META.sa_width"):
            binfmt.load_fmindex(bad)


class TestManifestContainer:
    """REPROSHD framing + the shard-file corruption taxonomy."""

    def _saved(self, tmp_path, n_shards=2, length=260):
        from repro.shard import ShardedIndex

        rnd = random.Random(0xD1)
        text = _random_text(rnd, "acgt", length)
        sharded = ShardedIndex.build(text, n_shards, max_pattern=12, max_k=2)
        path = tmp_path / "target.shd"
        sharded.save(path)
        return path, text

    def test_sniff_manifest(self, tmp_path):
        path, _ = self._saved(tmp_path)
        assert binfmt.sniff_manifest(path) is True
        assert binfmt.sniff(path) is False
        shard_file = tmp_path / "target.shard0000.fmbin"
        assert binfmt.sniff_manifest(shard_file) is False
        assert binfmt.sniff(shard_file) is True
        assert binfmt.sniff_manifest(tmp_path / "missing") is False

    def test_bad_manifest_magic(self, tmp_path):
        path, _ = self._saved(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTSHARD"
        path.write_bytes(bytes(raw))
        with pytest.raises(IndexCorruptionError, match="manifest magic"):
            binfmt.load_manifest(path)
        # open() sniffs the magic first, so a non-REPROSHD prefix falls
        # through to the other formats — and fails *their* validation.
        with pytest.raises(SerializationError):
            KMismatchIndex.open(path)

    def test_unknown_manifest_version(self, tmp_path):
        path, _ = self._saved(tmp_path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<I", raw, 8, binfmt.MANIFEST_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(IndexCorruptionError, match="manifest version"):
            binfmt.load_manifest(path)

    def test_truncated_manifest_body(self, tmp_path):
        path, _ = self._saved(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])
        with pytest.raises(IndexCorruptionError, match="manifest size.*truncated"):
            binfmt.load_manifest(path)

    def test_manifest_body_not_json(self, tmp_path):
        path, _ = self._saved(tmp_path)
        body = b"not json at all"
        path.write_bytes(
            struct.pack("<8sII", binfmt.MANIFEST_MAGIC, binfmt.MANIFEST_VERSION,
                        len(body)) + body
        )
        with pytest.raises(IndexCorruptionError, match="manifest body"):
            binfmt.load_manifest(path)

    def test_bad_int_field(self, tmp_path):
        path, _ = self._saved(tmp_path)
        payload = binfmt.load_manifest(path)
        payload["total_length"] = "lots"
        with pytest.raises(IndexCorruptionError, match="manifest.total_length"):
            binfmt.parse_manifest(binfmt.dump_manifest(payload))

    def test_bad_shard_entry(self, tmp_path):
        path, _ = self._saved(tmp_path)
        payload = binfmt.load_manifest(path)
        payload["shards"][1]["file"] = 7
        with pytest.raises(IndexCorruptionError, match=r"manifest.shards\[1\].file"):
            binfmt.parse_manifest(binfmt.dump_manifest(payload))

    def test_missing_shard_file(self, tmp_path):
        path, _ = self._saved(tmp_path)
        (tmp_path / "target.shard0001.fmbin").unlink()
        with pytest.raises(IndexCorruptionError, match="shard 1 file") as excinfo:
            KMismatchIndex.open(path)
        assert "target.shard0001.fmbin" in str(excinfo.value)

    def test_shard_offset_mismatch(self, tmp_path):
        path, text = self._saved(tmp_path)
        # Overwrite shard 0 with an index of the wrong length: the
        # manifest's recorded geometry no longer matches the file.
        KMismatchIndex(text[:40]).save(tmp_path / "target.shard0000.fmbin")
        with pytest.raises(IndexCorruptionError,
                           match="shard 0 length.*offset mismatch"):
            KMismatchIndex.open(path)

    def test_shard_alphabet_mismatch(self, tmp_path):
        path, _ = self._saved(tmp_path)
        spec_length = len(KMismatchIndex.open(path).shards[0].text)
        KMismatchIndex("ab" * (spec_length // 2) + "a" * (spec_length % 2)).save(
            tmp_path / "target.shard0000.fmbin"
        )
        with pytest.raises(IndexCorruptionError, match="shard 0 alphabet"):
            KMismatchIndex.open(path)
