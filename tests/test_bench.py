"""Tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench.reporting import format_seconds, format_series, format_table
from repro.bench.suite import PAPER_METHODS, MethodSuite
from repro.bench.workloads import catalog_workload, fig11_workload

from conftest import reference_occurrences


class TestReporting:
    def test_table_alignment(self):
        out = format_table(["k", "time"], [[1, "2.0s"], [10, "3.5s"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or "|" in line for line in lines)

    def test_table_title(self):
        out = format_table(["a"], [], title="T1")
        assert out.startswith("T1\n==")

    def test_series(self):
        out = format_series("k", [1, 2], {"A": [10, 20], "B": [30, 40]})
        assert "A" in out and "B" in out and "30" in out

    def test_format_seconds(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5) == "2.50s"


class TestWorkloads:
    def test_fig11_shape(self):
        wl = fig11_workload(read_length=60, n_reads=3)
        assert wl.read_length == 60
        assert len(wl.reads) == 3
        assert wl.genome_size > 0
        assert set(wl.genome) <= set("acgt")

    def test_catalog_lookup_by_substring(self):
        wl = catalog_workload("merolae", read_length=40, n_reads=2, max_genome=4000)
        assert "merolae" in wl.name.lower()
        assert wl.genome_size == 4000

    def test_unknown_genome(self):
        with pytest.raises(KeyError):
            catalog_workload("homo sapiens")


class TestMethodSuite:
    @pytest.fixture(scope="class")
    def workload(self):
        return catalog_workload("merolae", read_length=30, n_reads=3, max_genome=3000)

    def test_run_all_methods_agree(self, workload):
        suite = MethodSuite(workload.genome)
        results = suite.run_all(workload.reads, k=2)
        assert [r.method for r in results] == list(PAPER_METHODS)
        occ_counts = {r.n_occurrences for r in results}
        assert len(occ_counts) == 1  # all four methods found the same total

    def test_occurrences_match_naive(self, workload):
        suite = MethodSuite(workload.genome)
        result = suite.run(PAPER_METHODS[0], workload.reads, k=2)
        expected = sum(
            len(reference_occurrences(workload.genome, read, 2)) for read in workload.reads
        )
        assert result.n_occurrences == expected

    def test_avg_seconds(self, workload):
        suite = MethodSuite(workload.genome)
        result = suite.run("A()", workload.reads, k=1)
        assert result.avg_seconds > 0
        assert result.total_seconds == pytest.approx(result.avg_seconds * result.n_reads)

    def test_stats_collected_for_index_methods(self, workload):
        suite = MethodSuite(workload.genome)
        result = suite.run("A()", workload.reads, k=1)
        assert result.stats is not None
        assert result.stats.leaves > 0

    def test_ablation_methods_available(self, workload):
        suite = MethodSuite(workload.genome)
        for method in ("A()-nophi", "A()-noreuse", "BWT-nophi", "LV"):
            result = suite.run(method, workload.reads[:1], k=1)
            assert result.n_reads == 1

    def test_unknown_method(self, workload):
        suite = MethodSuite(workload.genome)
        with pytest.raises(ValueError):
            suite.run("nonesuch", workload.reads, k=1)
