"""Failure-injection tests: corruption must be *detected*, never silent.

A production index library's worst failure mode is quietly returning
wrong answers from a damaged index.  These tests corrupt persisted
payloads and in-memory structures and assert the self-checks catch it.
"""

import json

import pytest

from repro import DNA, FMIndex, KMismatchIndex
from repro.bwt.rankall import RankAll
from repro.errors import IndexCorruptionError, SerializationError


@pytest.fixture
def payload():
    return json.loads(KMismatchIndex("acagacagttacgt").dumps())


class TestPayloadCorruption:
    def test_bwt_character_flip_detected(self, payload):
        fm_payload = payload["fm"]
        bwt = fm_payload["bwt"]
        # Flip one non-sentinel character: either the reconstructed text
        # is invalid (rejected at load) or the structures drift (caught
        # by verify) — corruption must never pass silently.
        i = bwt.index("a")
        fm_payload["bwt"] = bwt[:i] + "c" + bwt[i + 1:]
        with pytest.raises((SerializationError, IndexCorruptionError)):
            index = KMismatchIndex.loads(json.dumps(payload))
            index.verify()

    def test_sentinel_removed_rejected_at_load(self, payload):
        payload["fm"]["bwt"] = payload["fm"]["bwt"].replace("$", "a")
        with pytest.raises(SerializationError):
            KMismatchIndex.loads(json.dumps(payload))

    def test_sampled_sa_corruption_detected(self, payload):
        rows = payload["fm"]["sampled_sa"]
        rows[0] = [rows[0][0], rows[0][1] + 1]
        index = KMismatchIndex.loads(json.dumps(payload))
        with pytest.raises(IndexCorruptionError):
            index.verify()

    def test_truncated_json(self):
        good = KMismatchIndex("acgt").dumps()
        with pytest.raises(SerializationError):
            KMismatchIndex.loads(good[: len(good) // 2])

    def test_wrong_container_type(self):
        fm_payload = FMIndex("acgt", DNA).dumps()
        with pytest.raises(SerializationError):
            KMismatchIndex.loads(fm_payload)  # FMIndex magic, not index magic


class TestStructuralChecks:
    def test_rankall_verify_detects_checkpoint_drift(self):
        ra = RankAll("acg$caaa", DNA)
        ra._flat[ra._size + 1] += 1  # damage one checkpoint
        with pytest.raises(IndexCorruptionError):
            ra.verify()

    def test_rankall_verify_detects_shadow_drift(self):
        ra = RankAll("acg$caaa", DNA)
        shadow = bytearray(ra._codes_bytes)
        shadow[0] = DNA.code("t")
        ra._codes_bytes = bytes(shadow)
        with pytest.raises(IndexCorruptionError):
            ra.verify()

    def test_clean_structures_pass(self):
        RankAll("acg$caaa", DNA).verify()
        KMismatchIndex("acagacagtt").verify()

    def test_verify_detects_text_mismatch(self):
        index = KMismatchIndex("acagacagtt")
        index._text = "acagacagta"  # simulate facade/text divergence
        with pytest.raises(IndexCorruptionError):
            index.verify()
