"""Tests for the ``/debug/stream`` live telemetry fan-out: broker frame
semantics (deterministic ``tick``), SSE framing round-trips, bounded
per-client queues with slow-consumer eviction, and the HTTP endpoint —
concurrent clients, bounded ``?frames=N`` mode, and clean mid-stream
disconnects that must not take the server down."""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    OBS,
    FlightRecorder,
    MetricsRegistry,
    TimeSeriesStore,
    configure_timeseries,
    make_record,
)
from repro.obs.server import MetricsServer
from repro.obs.slo import configure_slo_engine
from repro.obs.stream import (
    STREAM_FORMAT,
    STREAM_VERSION,
    StreamBroker,
    configure_broker,
    format_sse,
    get_broker,
    iter_sse_frames,
    parse_sse,
)
from repro.obs.top import DASHBOARD_FORMAT


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()
    configure_timeseries()
    configure_broker()
    configure_slo_engine()


def make_broker(**kwargs):
    """A broker over a private registry/store/recorder (no singletons)."""
    registry = MetricsRegistry()
    store = TimeSeriesStore(registry=registry, clock=time.monotonic)
    recorder = FlightRecorder(slow_ms=100)
    broker = StreamBroker(store=store, recorder=recorder, **kwargs)
    return registry, recorder, broker


def drain(client):
    frames = []
    while True:
        frame = client.get(timeout=0.05)
        if frame is None:
            return frames
        frames.append(frame)


class TestSSEFraming:
    def test_format_sse_wire_shape(self):
        wire = format_sse({"type": "metrics", "seq": 1})
        assert wire == b'event: metrics\ndata: {"type":"metrics","seq":1}\n\n'

    def test_round_trip(self):
        frames = [{"type": "hello", "version": 1},
                  {"type": "metrics", "seq": 2, "delta": {"a": 1}}]
        wire = b"".join(format_sse(frame) for frame in frames)
        assert parse_sse(wire.decode().splitlines()) == frames

    def test_comments_and_bytes_tolerated(self):
        lines = [b": keep-alive", b"", b"event: metrics",
                 b'data: {"type":"metrics"}', b"", ": another comment", ""]
        assert parse_sse(lines) == [{"type": "metrics"}]

    def test_trailing_frame_without_blank_line(self):
        assert parse_sse(['data: {"a":1}']) == [{"a": 1}]

    def test_garbage_data_skipped(self):
        assert parse_sse(["data: not-json", "", 'data: {"ok":true}', ""]) \
            == [{"ok": True}]


class TestBrokerSubscriptions:
    def test_subscribe_bootstraps_hello_and_snapshot(self):
        registry, _, broker = make_broker()
        registry.counter("c").inc(5)
        client = broker.subscribe()
        hello = client.get(timeout=1)
        assert hello["type"] == "hello"
        assert hello["format"] == STREAM_FORMAT
        assert hello["version"] == STREAM_VERSION
        assert hello["client_id"] == client.client_id
        assert "metrics" in hello["frame_types"]
        snapshot = client.get(timeout=1)
        assert snapshot["type"] == "metrics"
        assert snapshot["full"] is True
        assert snapshot["metrics"]["c"]["value"] == 5
        assert snapshot["dashboard"]["format"] == DASHBOARD_FORMAT
        assert broker.n_clients == 1

    def test_unsubscribe_drops_client(self):
        _, _, broker = make_broker()
        client = broker.subscribe()
        broker.unsubscribe(client)
        assert broker.n_clients == 0
        broker.unsubscribe(client)  # idempotent

    def test_slow_consumer_is_evicted_not_buffered(self):
        OBS.enable()
        _, _, broker = make_broker(queue_maxsize=2)
        client = broker.subscribe()  # bootstrap fills the whole queue
        assert OBS.metrics.gauge("obs.stream.clients").value == 1
        broker.publish({"type": "metrics", "seq": 99})
        assert client.evicted is True
        assert broker.n_clients == 0
        assert broker.evictions == 1
        assert OBS.metrics.counter("obs.stream.evictions").value == 1
        assert OBS.metrics.gauge("obs.stream.clients").value == 0
        # An evicted client reads None, never blocks.
        client.get(timeout=0)  # drain regardless of contents
        assert client.evicted

    def test_healthy_consumers_survive_an_eviction(self):
        _, _, broker = make_broker(queue_maxsize=2)
        starving = broker.subscribe()
        healthy = broker.subscribe()
        drain(healthy)  # keeps up
        broker.publish({"type": "metrics", "seq": 1})
        assert starving.evicted is True
        assert healthy.evicted is False
        assert broker.n_clients == 1
        assert drain(healthy)[-1]["seq"] == 1


class TestBrokerTick:
    def test_first_tick_full_then_deltas(self):
        registry, _, broker = make_broker()
        client = broker.subscribe()
        drain(client)
        registry.counter("c").inc(3)
        first = [f for f in broker.tick() if f["type"] == "metrics"][0]
        assert first["full"] is True
        assert first["delta"]["c"]["value"] == 3
        registry.counter("c").inc(4)
        second = [f for f in broker.tick() if f["type"] == "metrics"][0]
        assert second["full"] is False
        assert second["delta"]["c"]["value"] == 4  # increment, not total
        assert second["seq"] > first["seq"]
        assert second["dashboard"]["format"] == DASHBOARD_FORMAT
        # Published frames reached the subscriber too.
        assert [f["type"] for f in drain(client)].count("metrics") == 2

    def test_quiet_tick_delta_is_empty(self):
        _, _, broker = make_broker()
        broker.tick()
        frame = [f for f in broker.tick() if f["type"] == "metrics"][0]
        assert frame["delta"] == {}

    def test_alert_frames_only_on_transitions(self):
        _, _, broker = make_broker()
        states = iter([
            [{"objective": "avail", "state": "inactive"}],
            [{"objective": "avail", "state": "inactive"}],
            [{"objective": "avail", "state": "firing",
              "burn_fast": 20.0, "burn_slow": 8.0}],
            [{"objective": "avail", "state": "firing"}],
            [{"objective": "avail", "state": "resolved"}],
        ])
        broker._alerts = lambda: next(states)
        alert_frames = []
        for _ in range(5):
            alert_frames += [f for f in broker.tick()
                             if f["type"] == "alert"]
        assert [(f["previous"], f["state"]) for f in alert_frames] == \
            [("inactive", "firing"), ("firing", "resolved")]
        assert alert_frames[0]["objective"] == "avail"
        assert alert_frames[0]["burn_fast"] == 20.0

    def test_slow_query_frames_incremental_and_stripped(self):
        _, recorder, broker = make_broker()
        broker.tick()
        recorder.record(make_record(
            "query", engine="bwt_mismatch", k=2, duration_ms=500,
            stats={"nodes": 9}, spans={"name": "root", "children": []},
            trace_id="abc", profile={"stacks": []}))
        recorder.record(make_record("query", duration_ms=1))  # not slow
        frames = [f for f in broker.tick() if f["type"] == "slow_query"]
        assert len(frames) == 1
        record = frames[0]["record"]
        assert record["trace_id"] == "abc"
        assert record["duration_ms"] == 500
        assert record["slow"] is True
        # Heavyweight payloads stay on /debug/queries, not the stream.
        assert "spans" not in record
        assert "stats" not in record
        assert "profile" not in record
        # Already-streamed records do not repeat.
        assert [f for f in broker.tick() if f["type"] == "slow_query"] == []
        recorder.record(make_record("query", duration_ms=900))
        assert len([f for f in broker.tick()
                    if f["type"] == "slow_query"]) == 1

    def test_publisher_thread_ticks_and_stops(self):
        registry, _, broker = make_broker(interval_s=0.01)
        client = broker.subscribe()
        registry.counter("c").inc()
        broker.start()
        deadline = time.monotonic() + 5
        frames = []
        while len(frames) < 3 and time.monotonic() < deadline:
            frame = client.get(timeout=0.5)
            if frame is not None and frame["type"] == "metrics":
                frames.append(frame)
        broker.stop()
        assert len(frames) >= 3
        published = broker.frames_published
        time.sleep(0.05)
        assert broker.frames_published == published  # really stopped

    def test_to_dict(self):
        _, _, broker = make_broker(interval_s=2.5, queue_maxsize=7)
        broker.subscribe()
        doc = broker.to_dict()
        assert doc["interval_s"] == 2.5
        assert doc["queue_maxsize"] == 7
        assert doc["n_clients"] == 1


class TestStreamEndpoint:
    @pytest.fixture
    def server(self):
        OBS.enable()
        configure_timeseries()
        configure_slo_engine()
        configure_broker(interval_s=0.05)
        server = MetricsServer(port=0).start()
        yield server
        server.stop()
        get_broker().stop()

    def read_frames(self, server, query):
        with urllib.request.urlopen(server.url + "/debug/stream" + query,
                                    timeout=10) as response:
            assert response.status == 200
            assert response.headers.get("Content-Type") == "text/event-stream"
            return parse_sse(response)

    def test_bounded_frames_mode(self, server):
        frames = self.read_frames(server, "?frames=3")
        assert len(frames) == 3
        assert frames[0]["type"] == "hello"
        assert frames[0]["format"] == STREAM_FORMAT
        metrics = [f for f in frames if f["type"] == "metrics"]
        assert metrics and metrics[0]["full"] is True
        assert metrics[0]["dashboard"]["format"] == DASHBOARD_FORMAT

    def test_bad_frames_param_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.read_frames(server, "?frames=abc")
        assert excinfo.value.code == 400

    def test_concurrent_clients_each_get_their_stream(self, server):
        results = {}
        errors = []

        def consume(client_id):
            try:
                results[client_id] = self.read_frames(server, "?frames=4")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((client_id, exc))

        threads = [threading.Thread(target=consume, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert sorted(results) == [0, 1, 2]
        hello_ids = set()
        for frames in results.values():
            assert frames[0]["type"] == "hello"
            hello_ids.add(frames[0]["client_id"])
            assert any(f["type"] == "metrics" for f in frames)
        assert len(hello_ids) == 3  # distinct subscriptions
        assert get_broker().n_clients == 0  # all unsubscribed after close

    def test_disconnect_mid_stream_keeps_server_alive(self, server):
        # Open an unbounded stream, read a little, hang up mid-frame.
        response = urllib.request.urlopen(
            server.url + "/debug/stream", timeout=10)
        assert response.readline().startswith(b"event:")
        response.close()
        # The serving thread notices on its next write (BrokenPipeError
        # swallowed, subscription dropped) instead of crashing.
        deadline = time.monotonic() + 10
        while get_broker().n_clients > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert get_broker().n_clients == 0
        # And the server still answers, both scrape and stream.
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=5) as check:
            assert check.status == 200
        assert self.read_frames(server, "?frames=2")[0]["type"] == "hello"

    def test_stream_clients_gauge_tracks_subscriptions(self, server):
        frames = self.read_frames(server, "?frames=2")
        assert frames, "stream yielded no frames"
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=5) as response:
            text = response.read().decode()
        assert "repro_obs_stream_clients" in text
