"""Tests for the span-attributed sampling profiler (repro.obs.profiling)."""

from __future__ import annotations

import json
import time

import pytest

from repro import KMismatchIndex
from repro.obs import (
    MEMORY_PROFILES,
    OBS,
    PROFILER,
    Profile,
    Profiler,
    SpanAttributer,
    memory_profiling_enabled,
    profile_memory,
    render_top,
    set_memory_profiling,
    write_profile,
)
from repro.obs.export import ObsDelta, merge_obs_delta


@pytest.fixture(autouse=True)
def clean_profiler():
    """Every test starts and ends with a stopped profiler and a clean
    obs singleton; memory profiling off."""
    PROFILER.stop()
    PROFILER.profile = None
    OBS.disable()
    OBS.reset()
    set_memory_profiling(False)
    MEMORY_PROFILES.clear()
    yield
    PROFILER.stop()
    PROFILER.profile = None
    OBS.disable()
    OBS.reset()
    set_memory_profiling(False)
    MEMORY_PROFILES.clear()


def _busy(seconds: float) -> None:
    """Burn CPU in a named Python frame the sampler can land on."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def _collect(seconds: float = 0.3, hz: float = 400.0, **kwargs) -> Profile:
    PROFILER.start(hz=hz, **kwargs)
    _busy(seconds)
    return PROFILER.stop()


class TestProfileStructure:
    def test_add_and_fold(self):
        profile = Profile(hz=100.0)
        profile.add(("a", "b"))
        profile.add(("a", "b"))
        profile.add(("a", "c"))
        assert profile.n_samples == 3
        assert profile.counts[("a", "b")] == 2
        folded = profile.to_folded()
        assert "a;b 2" in folded.splitlines()
        assert "a;c 1" in folded.splitlines()
        assert folded.endswith("\n")

    def test_empty_profile_exports(self):
        profile = Profile()
        assert profile.to_folded() == ""
        doc = profile.to_speedscope()
        assert doc["shared"]["frames"] == []
        assert doc["profiles"][0]["samples"] == []
        assert render_top(profile) == "(no samples collected)"

    def test_speedscope_shape(self):
        profile = Profile(hz=100.0)
        profile.add(("root", "leaf"), n=4)
        doc = profile.to_speedscope("x")
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert names == ["root", "leaf"]
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert prof["unit"] == "seconds"
        assert prof["samples"] == [[0, 1]]
        # 4 samples at 100 Hz = 40 ms of attributed wall time.
        assert prof["weights"] == [pytest.approx(0.04)]
        assert prof["endValue"] == pytest.approx(0.04)

    def test_merge_with_worker_prefix(self):
        parent = Profile()
        parent.add(("span:x", "main"))
        child = Profile()
        child.add(("span:y", "work"), n=3)
        child.truncated = True
        parent.merge(child, prefix="worker:0")
        assert parent.counts[("worker:0", "span:y", "work")] == 3
        assert parent.n_samples == 4
        assert parent.truncated  # truncation is sticky across merges

    def test_dict_round_trip(self):
        profile = Profile(hz=50.0, meta={"worker": 1})
        profile.add(("a", "b"), n=2)
        profile.wall_seconds = 1.5
        profile.truncated = True
        clone = Profile.from_dict(json.loads(json.dumps(profile.to_dict())))
        assert clone.counts == profile.counts
        assert clone.n_samples == 2
        assert clone.hz == 50.0
        assert clone.truncated
        assert clone.meta == {"worker": 1}


class TestProfilerLifecycle:
    def test_disabled_by_default(self):
        assert not PROFILER.is_running()
        assert PROFILER.stop() is None  # stop before any start: no-op

    def test_collects_samples(self):
        profile = _collect(0.3)
        assert profile.n_samples > 0
        # Every stack is span-attributed (span:... or span:(none) root).
        assert all(frames[0].startswith("span:") for frames in profile.counts)
        assert profile.wall_seconds > 0

    def test_start_is_idempotent(self):
        first = PROFILER.start(hz=200)
        second = PROFILER.start(hz=999)  # ignored: already running
        assert first is second
        assert PROFILER.hz == 200
        _busy(0.1)
        profile = PROFILER.stop()
        assert profile is first

    def test_stop_is_idempotent(self):
        _collect(0.1)
        again = PROFILER.stop()
        assert again is PROFILER.profile
        assert not PROFILER.is_running()

    def test_stop_leaves_no_sampler_thread(self):
        import threading

        _collect(0.1)
        time.sleep(0.05)
        assert all(t.name != "repro-profiler" for t in threading.enumerate())

    def test_restart_collects_a_fresh_profile(self):
        first = _collect(0.1)
        second = _collect(0.1)
        assert second is not first

    def test_sample_cap_truncates(self):
        PROFILER.start(hz=500, max_samples=10)
        deadline = time.perf_counter() + 5.0
        while not (PROFILER.profile.truncated or time.perf_counter() > deadline):
            _busy(0.05)
        profile = PROFILER.stop()
        assert profile.truncated
        # The cap may be overshot by at most one sampling sweep (one
        # sample per live thread), never unboundedly.
        assert profile.n_samples <= 10 + 8

    def test_duration_cap_truncates(self):
        PROFILER.start(hz=500, max_seconds=0.1)
        deadline = time.perf_counter() + 5.0
        while not (PROFILER.profile.truncated or time.perf_counter() > deadline):
            _busy(0.05)
        profile = PROFILER.stop()
        assert profile.truncated

    def test_env_knobs_apply_at_start(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_HZ", "123")
        monkeypatch.setenv("REPRO_PROFILE_MAX_SAMPLES", "77")
        monkeypatch.setenv("REPRO_PROFILE_MAX_SECONDS", "9")
        PROFILER.start()
        try:
            assert PROFILER.hz == 123
            assert PROFILER.max_samples == 77
            assert PROFILER.max_seconds == 9
        finally:
            PROFILER.stop()

    def test_samples_counter_published(self):
        OBS.enable()
        profile = _collect(0.3)
        OBS.disable()
        assert OBS.metrics.counter("profile.samples").value >= profile.n_samples


class TestSpanAttribution:
    def test_no_span_frame(self):
        import threading

        attributer = SpanAttributer(OBS.tracer)
        assert attributer.frame_for(threading.get_ident()) == "span:(none)"

    def test_open_span_path(self):
        import threading

        OBS.enable()
        with OBS.span("outer"):
            with OBS.span("inner"):
                frame = SpanAttributer(OBS.tracer).frame_for(threading.get_ident())
        OBS.disable()
        assert frame == "span:outer/inner"

    def test_search_profile_carries_span_frames(self):
        """The acceptance check: profiling a real search yields folded
        stacks whose roots name the pipeline phases."""
        OBS.enable()
        PROFILER.start(hz=400)
        text = ("acagacatta" * 3000)[:30000]
        index = KMismatchIndex(text)
        index.search(text[50:90], k=2)
        profile = PROFILER.stop()
        OBS.disable()
        folded = profile.to_folded()
        assert "span:" in folded
        # The index build dominates this workload; its span path must
        # show up as a root frame.
        assert "span:kmismatch.build" in folded


class TestCrossProcessMerge:
    def test_delta_payload_and_adopt(self):
        PROFILER.start(hz=400)
        before = PROFILER.counts_snapshot()
        _busy(0.3)
        payload = PROFILER.delta_payload(before)
        assert payload is not None and payload["n_samples"] > 0
        parent = Profiler()
        parent.start(hz=400)
        parent.stop()
        baseline = parent.profile.n_samples
        payload["meta"] = {"worker": 3}
        parent.adopt(payload)
        PROFILER.stop()
        assert parent.profile.n_samples == baseline + payload["n_samples"]
        assert any(frames[0] == "worker:3" for frames in parent.profile.counts)

    def test_adopt_without_local_profile_is_dropped(self):
        sampler = Profiler()
        sampler.adopt({"folded": {"a;b": 1}, "n_samples": 1, "meta": {"worker": 0}})
        assert sampler.profile is None

    def test_obs_delta_ships_profile(self):
        """The worker-side ObsDelta payload carries sampled stacks and
        merge_obs_delta folds them into the parent profile."""
        PROFILER.start(hz=400)
        delta = ObsDelta.capture(OBS)
        _busy(0.3)
        payload = delta.finish(OBS)
        profile = payload.get("profile")
        assert profile is not None and profile["n_samples"] > 0
        # Simulate the parent: re-adopt into the running profile under a
        # worker prefix.
        payload["profile"]["meta"] = {"worker": 0}
        before = PROFILER.profile.n_samples
        merge_obs_delta(OBS, payload)
        after = PROFILER.profile.n_samples
        PROFILER.stop()
        assert after == before + profile["n_samples"]
        assert any(
            frames[0] == "worker:0" for frames in PROFILER.profile.counts
        )

    def test_obs_delta_without_profiler_has_no_profile_key(self):
        delta = ObsDelta.capture(OBS)
        payload = delta.finish(OBS)
        assert "profile" not in payload


class TestSlowQueryPinning:
    def test_slow_query_record_carries_profile(self):
        OBS.enable()
        OBS.recorder.slow_ms = 0.0  # every query is "slow"
        PROFILER.start(hz=400)
        index = KMismatchIndex(("acagacatta" * 200)[:2000])
        index.search_with_stats("acagacatta", 2)
        PROFILER.stop()
        records = [r for r in OBS.recorder.recent() if r.get("event") == "query"]
        OBS.disable()
        assert records, "expected a flight-recorder query record"
        assert "profile" in records[-1]
        assert isinstance(records[-1]["profile"], dict)

    def test_fast_query_record_has_no_profile(self):
        OBS.enable()
        OBS.recorder.slow_ms = 1e9  # nothing is slow
        PROFILER.start(hz=400)
        index = KMismatchIndex("acagacaacagaca")
        index.search_with_stats("aca", 1)
        PROFILER.stop()
        records = [r for r in OBS.recorder.recent() if r.get("event") == "query"]
        OBS.disable()
        assert records and "profile" not in records[-1]

    def test_profiler_off_record_has_no_profile(self):
        OBS.enable()
        OBS.recorder.slow_ms = 0.0
        index = KMismatchIndex("acagacaacagaca")
        index.search_with_stats("aca", 1)
        records = [r for r in OBS.recorder.recent() if r.get("event") == "query"]
        OBS.disable()
        assert records and "profile" not in records[-1]


class TestMemoryProfiles:
    def test_noop_unless_enabled(self):
        with profile_memory("index.build") as region:
            bytes([0] * 4096)
        assert region.result is None
        assert len(MEMORY_PROFILES) == 0

    def test_region_publishes_gauge_and_top(self):
        OBS.enable()
        set_memory_profiling(True)
        assert memory_profiling_enabled()
        with profile_memory("index.build", top_n=5) as region:
            blob = bytearray(512 * 1024)
        del blob
        OBS.disable()
        assert region.result is not None
        assert region.result.peak_bytes >= 512 * 1024
        assert region.result.top  # at least one allocation site
        assert len(region.result.top) <= 5
        assert MEMORY_PROFILES[-1] is region.result
        assert OBS.metrics.gauge("index.build.peak_bytes").value >= 512 * 1024
        rendered = region.result.render()
        assert "index.build: peak" in rendered and "blocks" in rendered

    def test_build_region_is_instrumented(self):
        OBS.enable()
        set_memory_profiling(True)
        KMismatchIndex("acagacaacagacagtacagaca" * 20)
        OBS.disable()
        names = [mp.name for mp in MEMORY_PROFILES]
        assert "index.build" in names
        assert OBS.metrics.gauge("index.build.peak_bytes").value > 0


class TestWriteProfile:
    def test_folded_file(self, tmp_path):
        profile = Profile(hz=100.0)
        profile.add(("span:x", "a", "b"), n=2)
        path = tmp_path / "out.folded"
        write_profile(profile, str(path), "folded")
        assert path.read_text() == "span:x;a;b 2\n"

    def test_speedscope_file(self, tmp_path):
        profile = Profile(hz=100.0)
        profile.add(("span:x", "a"), n=1)
        path = tmp_path / "out.json"
        write_profile(profile, str(path), "speedscope")
        doc = json.loads(path.read_text())
        assert doc["$schema"].startswith("https://www.speedscope.app/")


class TestDisabledProfilerOverhead:
    def test_instrumented_but_stopped_search_is_near_free(self):
        """A stopped profiler must not tax the search path (< ~2x of an
        untouched run; generous because the workload is microseconds).

        Mirrors TestDisabledOverhead in test_obs.py: measure, run a
        start/stop cycle, re-measure, and guard the ratio with retries
        against CI timer noise.
        """
        genome = ("acagacatta" * 40)[:400]
        index = KMismatchIndex(genome)

        def best_of(n: int = 7) -> float:
            best = float("inf")
            for _ in range(n):
                start = time.perf_counter()
                index.search("acagacatta", k=2)
                best = min(best, time.perf_counter() - start)
            return best

        best_of(2)  # warm-up
        baseline = best_of()
        PROFILER.start(hz=200)
        index.search("acagacatta", k=2)
        PROFILER.stop()
        for attempt in range(4):
            stopped_again = best_of()
            if stopped_again <= 1.25 * baseline:
                break
            baseline = min(baseline, best_of())
        assert stopped_again <= 1.25 * baseline
