"""Tests for paired-end simulation and pair-aware mapping."""

import pytest

from repro import KMismatchIndex
from repro.errors import PatternError
from repro.mapping import best_pair, map_pair
from repro.simulate import GenomeConfig, generate_genome
from repro.simulate.pairs import PairedReadConfig, simulate_read_pairs
from repro.strings.hamming import hamming_distance
from repro.dna import reverse_complement


@pytest.fixture(scope="module")
def genome():
    return generate_genome(GenomeConfig(length=6_000, repeat_fraction=0.2, seed=31))


@pytest.fixture(scope="module")
def pairs(genome):
    return simulate_read_pairs(
        genome,
        PairedReadConfig(n_pairs=15, read_length=50, insert_size=300, insert_std=30, seed=32),
    )


class TestPairedSimulation:
    def test_counts_and_lengths(self, pairs):
        assert len(pairs) == 15
        assert all(len(p.read1) == len(p.read2) == 50 for p in pairs)

    def test_ground_truth_mate1(self, genome, pairs):
        for pair in pairs:
            window = genome[pair.position1:pair.position1 + 50]
            assert hamming_distance(pair.read1, window) == pair.n_mutations1

    def test_ground_truth_mate2_is_reverse_complement(self, genome, pairs):
        for pair in pairs:
            window = genome[pair.position2:pair.position2 + 50]
            assert hamming_distance(reverse_complement(pair.read2), window) == pair.n_mutations2

    def test_fragment_geometry(self, pairs):
        for pair in pairs:
            assert pair.position2 + 50 - pair.position1 == pair.fragment_length
            assert pair.fragment_length >= 50

    def test_insert_distribution_centred(self, genome):
        config = PairedReadConfig(
            n_pairs=200, read_length=30, insert_size=400, insert_std=20, seed=5,
            error_rate=0.0, mutation_rate=0.0,
        )
        fragments = [p.fragment_length for p in simulate_read_pairs(genome, config)]
        mean = sum(fragments) / len(fragments)
        assert 380 <= mean <= 420

    def test_validation(self):
        with pytest.raises(ValueError):
            PairedReadConfig(n_pairs=1, read_length=0).validate()
        with pytest.raises(ValueError):
            PairedReadConfig(n_pairs=1, read_length=100, insert_size=50).validate()
        with pytest.raises(ValueError):
            simulate_read_pairs("acgt", PairedReadConfig(n_pairs=1, read_length=2, insert_size=10))


class TestPairMapping:
    def test_every_pair_maps_concordantly(self, genome, pairs):
        index = KMismatchIndex(genome)
        for pair in pairs:
            k = max(pair.n_mutations1, pair.n_mutations2, 1)
            alignments = map_pair(index, pair.read1, pair.read2, k,
                                  min_fragment=50, max_fragment=600)
            assert alignments, pair
            best = alignments[0]
            assert best.start == pair.position1
            assert best.fragment_length == pair.fragment_length

    def test_fragment_window_filters(self, genome, pairs):
        index = KMismatchIndex(genome)
        pair = pairs[0]
        k = max(pair.n_mutations1, pair.n_mutations2, 1)
        # A window excluding the true fragment length yields nothing
        # (unless a repeat offers an alternative — tolerate fewer hits).
        narrow = map_pair(index, pair.read1, pair.read2, k,
                          min_fragment=pair.fragment_length + 100,
                          max_fragment=pair.fragment_length + 200)
        wide = map_pair(index, pair.read1, pair.read2, k,
                        min_fragment=50, max_fragment=600)
        assert len(narrow) <= len(wide)
        assert all(a.fragment_length > pair.fragment_length for a in narrow)

    def test_best_pair(self, genome, pairs):
        index = KMismatchIndex(genome)
        pair = pairs[0]
        best = best_pair(index, pair.read1, pair.read2, k_max=5,
                         min_fragment=50, max_fragment=600)
        assert best is not None
        assert best.start == pair.position1

    def test_best_pair_none_when_absent(self):
        index = KMismatchIndex("a" * 300)
        assert best_pair(index, "gggg", "cccc", k_max=0) is None

    def test_rejects_unequal_mates(self):
        index = KMismatchIndex("acgtacgt")
        with pytest.raises(PatternError):
            map_pair(index, "acg", "ac", 0)

    def test_rejects_bad_window(self):
        index = KMismatchIndex("acgtacgt")
        with pytest.raises(PatternError):
            map_pair(index, "ac", "gt", 0, min_fragment=10, max_fragment=5)

    def test_orientation_required(self):
        # Two forward-strand hits never form a pair.
        index = KMismatchIndex("acgtaacgta")
        alignments = map_pair(index, "acgta", "acgta", 0)
        for a in alignments:
            assert {a.hit1.strand, a.hit2.strand} == {"+", "-"}
