"""Tests for the mismatching-tree structure (repro.core.mtree)."""

import pytest

from repro.alphabet import DNA
from repro.bwt import FMIndex
from repro.core.algorithm_a import AlgorithmASearcher
from repro.core.mtree import MTree

from conftest import PAPER_PATTERN, PAPER_TARGET


class TestMTreeConstruction:
    def test_paper_fig7_paths(self):
        # The four mismatch arrays of Fig. 3 (1-based B_1=[1,4], B_2=[1,2],
        # B_3=[1,2,3], B_4=[1,2,3]) in 0-based form, with their characters.
        tree = MTree(pattern_length=5)
        tree.add_path([(0, "a"), (3, "g")])            # B_1 (complete path)
        tree.add_path([(0, "a"), (1, "g")])            # B_2 (complete path)
        tree.add_path([(0, "c"), (1, "g"), (2, "g")], length=3)   # B_3 (cut)
        tree.add_path([(0, "g"), (1, "a"), (2, "c")], length=3)   # B_4 (cut)
        assert tree.n_paths == 4
        assert tree.n_leaves == 4
        # Root has three mismatch children: <a,0>, <c,0>, <g,0> (Fig. 7's
        # u1, u2, u3).
        assert len(tree.root.children) == 3

    def test_b1_shape_matches_paper(self):
        # B_1 = [1, 4] (1-based) renders as u0-u1-u4-u8-u12 in Fig. 7:
        # root -> <a,0> -> <-,0> -> <g,3> -> <-,0>.
        tree = MTree(pattern_length=5)
        leaf = tree.add_path([(0, "a"), (3, "g")])
        assert leaf.is_match  # trailing matched position 4
        labels = []
        node = tree.root
        while True:
            labels.append(node.label())
            if not node.children:
                break
            node = next(iter(node.children.values()))
        assert labels == ["<-, 0>", "<a, 0>", "<-, 0>", "<g, 3>", "<-, 0>"]

    def test_adjacent_mismatches_no_match_node_between(self):
        tree = MTree(pattern_length=4)
        tree.add_path([(1, "a"), (2, "c")])
        # Leading match merges into the root (itself <-,0>), the adjacent
        # mismatches get no match node between them, and the trailing
        # match adds one: root -> <a,1> -> <c,2> -> <-,0>.
        assert tree.n_nodes == 4

    def test_leading_matches_merge_into_root(self):
        tree = MTree(pattern_length=4)
        tree.add_path([(3, "g")])
        # No separate match node before <g,3>: root is already <-,0>.
        assert list(tree.root.children.keys()) == [("g", 3)]

    def test_zero_mismatch_path(self):
        tree = MTree(pattern_length=4)
        leaf = tree.add_path([])
        # An all-match path merges entirely into the root <-, 0> node.
        assert leaf is tree.root
        assert leaf.leaf_paths == 1
        assert tree.n_leaves == 1

    def test_shared_prefixes_merge(self):
        tree = MTree(pattern_length=6)
        tree.add_path([(0, "a"), (2, "c")])
        tree.add_path([(0, "a"), (4, "g")])
        # Both pass through <a,0>; the match run after it is shared.
        assert len(tree.root.children) == 1

    def test_rejects_bad_offsets(self):
        tree = MTree(pattern_length=3)
        with pytest.raises(ValueError):
            tree.add_path([(2, "a"), (1, "c")])
        with pytest.raises(ValueError):
            tree.add_path([(5, "a")])

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            MTree(pattern_length=0)

    def test_render_contains_labels(self):
        tree = MTree(pattern_length=5)
        tree.add_path([(0, "a"), (3, "g")])
        text = tree.render()
        assert "<a, 0>" in text and "<g, 3>" in text


class TestMTreeFromSearch:
    def test_algorithm_a_records_fig3_tree(self):
        fm = FMIndex(PAPER_TARGET[::-1], DNA)
        searcher = AlgorithmASearcher(fm, record_mtree=True, use_phi=False)
        occs, stats = searcher.search(PAPER_PATTERN, 2)
        tree = searcher.last_mtree
        assert tree is not None
        assert tree.n_paths == stats.leaves
        # The two completed paths of Fig. 3 are present.
        assert [(o.start, o.mismatches) for o in occs] == [(0, (0, 3)), (2, (0, 1))]

    def test_leaf_count_matches_stats_on_repeats(self, repeat_text):
        fm = FMIndex(repeat_text[::-1], DNA)
        searcher = AlgorithmASearcher(fm, record_mtree=True)
        pattern = repeat_text[37:37 + 30]
        _, stats = searcher.search(pattern, 3)
        assert searcher.last_mtree.n_paths == stats.leaves
