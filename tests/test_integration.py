"""End-to-end integration tests: the read-mapping pipeline of Sec. V.

Simulate a genome, sample mutated reads from both strands, index the
genome once, and map every read back — the exact workflow the paper's
evaluation runs (wgsim reads against an indexed genome).
"""

import pytest

from repro.core.matcher import KMismatchIndex
from repro.simulate import (
    GenomeConfig,
    ReadConfig,
    generate_genome,
    reverse_complement,
    simulate_reads,
)


@pytest.fixture(scope="module")
def pipeline():
    genome = generate_genome(GenomeConfig(length=8_000, repeat_fraction=0.3, seed=42))
    reads = simulate_reads(genome, ReadConfig(n_reads=30, length=60, seed=43))
    index = KMismatchIndex(genome)
    return genome, reads, index


class TestReadMapping:
    def test_every_read_maps_home(self, pipeline):
        genome, reads, index = pipeline
        for read in reads:
            k = max(read.n_mutations, 1)
            hits = index.search(read.forward_sequence(), k)
            assert any(h.start == read.position for h in hits), read

    def test_mapping_respects_budget(self, pipeline):
        genome, reads, index = pipeline
        for read in reads[:10]:
            hits = index.search(read.forward_sequence(), 3)
            for hit in hits:
                window = genome[hit.start:hit.start + 60]
                assert sum(1 for a, b in zip(window, read.forward_sequence()) if a != b) <= 3

    def test_reverse_strand_reads_map_via_revcomp(self, pipeline):
        genome, reads, index = pipeline
        reverse_reads = [r for r in reads if r.reverse_strand]
        assert reverse_reads, "expected some reverse-strand reads"
        for read in reverse_reads[:5]:
            # Mapping the raw sequence of a reverse read requires its
            # reverse complement (as real aligners do).
            k = max(read.n_mutations, 1)
            hits = index.search(reverse_complement(read.sequence), k)
            assert any(h.start == read.position for h in hits)

    def test_methods_agree_on_pipeline_reads(self, pipeline):
        genome, reads, index = pipeline
        for read in reads[:6]:
            seq = read.forward_sequence()
            reference = index.search(seq, 2, method="stree_nophi")
            for method in ("algorithm_a", "stree", "algorithm_a_noreuse"):
                assert index.search(seq, 2, method=method) == reference

    def test_exact_mapping_of_clean_reads(self):
        genome = generate_genome(GenomeConfig(length=5_000, seed=77))
        reads = simulate_reads(
            genome,
            ReadConfig(n_reads=10, length=50, error_rate=0.0, mutation_rate=0.0, seed=78),
        )
        index = KMismatchIndex(genome)
        for read in reads:
            hits = index.search(read.forward_sequence(), 0)
            assert any(h.start == read.position for h in hits)


class TestIndexReuseAcrossQueries:
    def test_one_index_many_patterns(self, pipeline):
        genome, reads, index = pipeline
        totals = [
            sum(len(index.search(r.forward_sequence(), k)) for r in reads[:8])
            for k in (0, 1, 2)
        ]
        # Larger k can only find more occurrences.
        assert totals == sorted(totals)

    def test_monotone_in_k(self, pipeline):
        genome, reads, index = pipeline
        seq = reads[0].forward_sequence()
        counts = [len(index.search(seq, k)) for k in range(4)]
        assert counts == sorted(counts)
