"""Tests for the comparison methods (repro.baselines)."""

import pytest

from repro.baselines import (
    AmirMatcher,
    ColeMatcher,
    LandauVishkinMatcher,
    amir_search,
    cole_search,
    landau_vishkin_search,
    naive_search,
)
from repro.baselines.amir import split_into_blocks
from repro.baselines.naive import naive_count
from repro.errors import PatternError

from conftest import INTRO_PATTERN, INTRO_TARGET, random_dna, reference_occurrences

ALL_SEARCHERS = [amir_search, cole_search, landau_vishkin_search]


class TestNaive:
    def test_intro_example(self):
        occs = naive_search(INTRO_TARGET, INTRO_PATTERN, 4)
        assert [(o.start, o.n_mismatches) for o in occs] == [(2, 4)]

    def test_exact(self):
        assert [o.start for o in naive_search("acagaca", "aca", 0)] == [0, 4]

    def test_count(self):
        assert naive_count("aaaa", "aa", 1) == 3

    def test_rejects_empty_pattern(self):
        with pytest.raises(PatternError):
            naive_search("abc", "", 0)

    def test_rejects_negative_k(self):
        with pytest.raises(PatternError):
            naive_search("abc", "a", -1)

    def test_pattern_longer_than_text(self):
        assert naive_search("ab", "abc", 3) == []

    def test_mismatch_positions_recorded(self):
        occs = naive_search("acagaca", "tcaca", 2)
        assert [(o.start, o.mismatches) for o in occs] == [(0, (0, 3)), (2, (0, 1))]


class TestBlocks:
    def test_even_split(self):
        assert split_into_blocks("abcdef", 3) == [(0, "ab"), (2, "cd"), (4, "ef")]

    def test_uneven_split(self):
        assert split_into_blocks("abcdefg", 3) == [(0, "abc"), (3, "de"), (5, "fg")]

    def test_blocks_cover_pattern(self):
        blocks = split_into_blocks("acgtacgtt", 4)
        assert "".join(b for _, b in blocks) == "acgtacgtt"
        offset = 0
        for off, block in blocks:
            assert off == offset
            offset += len(block)

    def test_invalid_counts(self):
        with pytest.raises(PatternError):
            split_into_blocks("abc", 0)
        with pytest.raises(PatternError):
            split_into_blocks("abc", 4)


class TestAmir:
    def test_intro_example(self):
        occs = amir_search(INTRO_TARGET, INTRO_PATTERN, 4)
        assert [o.start for o in occs] == [2]

    def test_exact_path(self):
        assert [o.start for o in amir_search("acagaca", "aca", 0)] == [0, 4]

    def test_degenerate_high_k(self):
        # 2k > m: the pigeonhole filter is off; still exact.
        got = amir_search("acgtacgt", "acg", 3)
        assert [(o.start, o.mismatches) for o in got] == reference_occurrences(
            "acgtacgt", "acg", 3
        )

    def test_filter_stats(self):
        matcher = AmirMatcher("acgtacgtacgtacgaaaaaaa", "acgtacgt")
        occs, stats = matcher.search_with_filter_stats(2)
        assert stats["filtered"] is True
        assert stats["candidates"] >= stats["matches"] == len(occs)

    def test_filter_never_loses_occurrences(self, rng):
        # The pigeonhole marking must be lossless (pure filtration).
        for _ in range(30):
            text = random_dna(rng, rng.randint(20, 150))
            pattern = random_dna(rng, rng.randint(4, 16))
            k = rng.randint(1, max(1, len(pattern) // 2))
            got = sorted((o.start, o.mismatches) for o in amir_search(text, pattern, k))
            assert got == reference_occurrences(text, pattern, k)


class TestCole:
    def test_intro_example(self):
        occs = cole_search(INTRO_TARGET, INTRO_PATTERN, 4)
        assert [o.start for o in occs] == [2]

    def test_reusable_matcher(self):
        matcher = ColeMatcher("acagaca")
        assert [o.start for o in matcher.search("aca", 0)] == [0, 4]
        assert [o.start for o in matcher.search("tcaca", 2)] == [0, 2]

    def test_rejects_empty_pattern(self):
        with pytest.raises(PatternError):
            ColeMatcher("acgt").search("", 1)

    def test_pattern_longer_than_text(self):
        assert ColeMatcher("ac").search("acgt", 2) == []


class TestLandauVishkin:
    def test_intro_example(self):
        occs = landau_vishkin_search(INTRO_TARGET, INTRO_PATTERN, 4)
        assert [o.start for o in occs] == [2]

    def test_rejects_negative_k(self):
        with pytest.raises(PatternError):
            LandauVishkinMatcher("acgt", "ac").search(-1)

    def test_pattern_longer_than_text(self):
        assert LandauVishkinMatcher("ac", "acgt").search(2) == []

    def test_matcher_reusable_across_k(self):
        matcher = LandauVishkinMatcher("acagaca", "tcaca")
        assert [o.start for o in matcher.search(2)] == [0, 2]
        assert matcher.search(0) == []


class TestCrossAgreement:
    @pytest.mark.parametrize("searcher", ALL_SEARCHERS)
    def test_matches_naive(self, searcher, rng):
        for _ in range(25):
            text = random_dna(rng, rng.randint(5, 120))
            pattern = random_dna(rng, rng.randint(1, 14))
            k = rng.randint(0, 6)
            got = sorted((o.start, o.mismatches) for o in searcher(text, pattern, k))
            assert got == reference_occurrences(text, pattern, k), (
                searcher.__name__, text, pattern, k,
            )
