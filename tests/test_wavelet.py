"""Tests for the wavelet-tree rank backend (repro.bwt.wavelet)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alphabet import DNA, PROTEIN
from repro.bwt import FMIndex
from repro.bwt.transform import bwt_transform
from repro.bwt.wavelet import BitVector, WaveletRank, WaveletTree
from repro.errors import IndexCorruptionError

bits = st.lists(st.integers(0, 1), min_size=0, max_size=300)
codes = st.lists(st.integers(0, 7), min_size=0, max_size=200)


class TestBitVector:
    def test_basic(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert len(bv) == 5
        assert bv.n_set == 3
        assert [bv[i] for i in range(5)] == [1, 0, 1, 1, 0]
        assert bv.rank1(0) == 0
        assert bv.rank1(5) == 3
        assert bv.rank0(4) == 1

    def test_word_boundaries(self):
        values = [1 if i % 3 == 0 else 0 for i in range(200)]
        bv = BitVector(values)
        for i in range(0, 201, 7):
            assert bv.rank1(i) == sum(values[:i])

    def test_out_of_range(self):
        bv = BitVector([1])
        with pytest.raises(IndexError):
            bv[1]
        with pytest.raises(IndexError):
            bv.rank1(2)

    @given(bits, st.data())
    def test_rank_property(self, values, data):
        bv = BitVector(values)
        i = data.draw(st.integers(0, len(values)))
        assert bv.rank1(i) == sum(values[:i])
        assert bv.rank0(i) == i - sum(values[:i])


class TestWaveletTree:
    def test_paper_bwt(self):
        # BWT(acagaca$) encoded over DNA: a c g $ c a a a.
        wt = WaveletTree(DNA.encode("acg$caaa"), DNA.size)
        assert wt.rank(DNA.code("a"), 8) == 4
        assert wt.rank(DNA.code("c"), 5) == 2
        assert wt.rank(0, 4) == 1  # the sentinel

    def test_access(self):
        seq = DNA.encode("acg$caaa")
        wt = WaveletTree(seq, DNA.size)
        assert [wt.access(i) for i in range(len(seq))] == seq

    @given(codes, st.data())
    @settings(max_examples=80)
    def test_rank_access_properties(self, values, data):
        wt = WaveletTree(values, 8)
        if values:
            i = data.draw(st.integers(0, len(values) - 1))
            assert wt.access(i) == values[i]
        i = data.draw(st.integers(0, len(values)))
        code = data.draw(st.integers(0, 7))
        assert wt.rank(code, i) == values[:i].count(code)

    def test_single_code_alphabet(self):
        wt = WaveletTree([0, 0, 0], 1)
        assert wt.rank(0, 3) == 3


class TestWaveletRank:
    def test_matches_rankall(self):
        from repro.bwt.rankall import RankAll

        rng = random.Random(5)
        bwt = bwt_transform("".join(rng.choice("acgt") for _ in range(150)))
        wavelet = WaveletRank(bwt, DNA)
        rankall = RankAll(bwt, DNA)
        for i in range(0, len(bwt) + 1, 3):
            assert wavelet.counts_at(i) == rankall.counts_at(i)
        for i in range(len(bwt)):
            assert wavelet.char_code_at(i) == rankall.char_code_at(i)

    def test_verify(self):
        WaveletRank(bwt_transform("acagaca"), DNA).verify()

    def test_protein_alphabet(self):
        text = "MKVLAWLQ"
        bwt = bwt_transform(text, PROTEIN)
        ra = WaveletRank(bwt, PROTEIN)
        for code in range(PROTEIN.size):
            assert ra.total(code) == bwt.count(PROTEIN.symbol(code))


class TestFMIndexWaveletBackend:
    def test_search_equivalence(self):
        rng = random.Random(6)
        text = "".join(rng.choice("acgt") for _ in range(300))
        fm_rank = FMIndex(text, DNA)
        fm_wave = FMIndex(text, DNA, rank_backend="wavelet")
        for _ in range(20):
            m = rng.randint(1, 10)
            pattern = "".join(rng.choice("acgt") for _ in range(m))
            assert fm_wave.count(pattern) == fm_rank.count(pattern)
            assert sorted(fm_wave.locate(pattern)) == sorted(fm_rank.locate(pattern))

    def test_kmismatch_over_wavelet(self):
        from repro.core.algorithm_a import AlgorithmASearcher
        from repro.baselines.naive import naive_search

        text = "acagacagttacgtaacgacag"
        fm = FMIndex(text[::-1], DNA, rank_backend="wavelet")
        occs, _ = AlgorithmASearcher(fm).search("gacag", 2)
        expected = [(o.start, o.mismatches) for o in naive_search(text, "gacag", 2)]
        assert [(o.start, o.mismatches) for o in occs] == expected

    def test_serialization_preserves_backend(self):
        fm = FMIndex("acagaca", DNA, rank_backend="wavelet")
        clone = FMIndex.loads(fm.dumps())
        assert clone.count("aca") == 2
        assert clone._rank_backend == "wavelet"

    def test_unknown_backend(self):
        with pytest.raises(IndexCorruptionError):
            FMIndex("acgt", DNA, rank_backend="btree")
