"""Tests for the BWT layer: transform, rankall, FM-index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alphabet import DNA
from repro.bwt import EMPTY_RANGE, FMIndex, Range, RankAll, bwt_transform, inverse_bwt
from repro.errors import IndexCorruptionError, PatternError, SerializationError

dna = st.text(alphabet="acgt", min_size=0, max_size=80)
dna1 = st.text(alphabet="acgt", min_size=1, max_size=80)


class TestTransform:
    def test_paper_example(self):
        # Sec. III-A: s = acagaca$, BWT(s) = acg$caaa.
        assert bwt_transform("acagaca") == "acg$caaa"

    def test_inverse_paper_example(self):
        assert inverse_bwt("acg$caaa") == "acagaca"

    def test_empty(self):
        assert bwt_transform("") == "$"
        assert inverse_bwt("$") == ""

    @given(dna)
    def test_roundtrip(self, text):
        assert inverse_bwt(bwt_transform(text)) == text

    def test_inverse_rejects_no_sentinel(self):
        with pytest.raises(IndexCorruptionError):
            inverse_bwt("abc")

    def test_inverse_rejects_two_sentinels(self):
        with pytest.raises(IndexCorruptionError):
            inverse_bwt("a$b$")

    def test_permutation_property(self):
        text = "acgtacgtaa"
        assert sorted(bwt_transform(text)) == sorted(text + "$")


class TestRankAll:
    def test_paper_fig2_values(self):
        # Fig. 2 shows rankalls over BWT(acagaca$) = acg$caaa.
        ra = RankAll("acg$caaa", DNA, sample_rate=4)
        a = DNA.code("a")
        # Number of 'a' appearing before each L position (exclusive).
        assert [ra.occ(a, i) for i in range(9)] == [0, 1, 1, 1, 1, 1, 2, 3, 4]

    @pytest.mark.parametrize("sample_rate", [1, 2, 3, 4, 7, 64])
    def test_occ_matches_direct_count(self, sample_rate):
        rng = random.Random(17)
        bwt = "".join(rng.choice("acgt") for _ in range(99)) + "$"
        ra = RankAll(bwt, DNA, sample_rate=sample_rate)
        for code in range(DNA.size):
            ch = DNA.symbol(code)
            for i in range(len(bwt) + 1):
                assert ra.occ(code, i) == bwt[:i].count(ch)

    def test_counts_at_matches_occ(self):
        bwt = bwt_transform("acagacagtt")
        ra = RankAll(bwt, DNA)
        for i in range(len(bwt) + 1):
            row = ra.counts_at(i)
            for code in range(DNA.size):
                assert row[code] == ra.occ(code, i)

    def test_occ_range(self):
        ra = RankAll("acg$caaa", DNA)
        assert ra.occ_range(DNA.code("a"), 0, 8) == 4
        assert ra.occ_range(DNA.code("c"), 1, 5) == 2  # L[1:5] = 'cg$c'

    def test_present_codes(self):
        ra = RankAll("acg$caaa", DNA)
        assert ra.present_codes(0, 8) == [0, 1, 2, 3]
        assert ra.present_codes(4, 5) == [DNA.code("c")]

    def test_total(self):
        ra = RankAll("acg$caaa", DNA)
        assert ra.total(DNA.code("a")) == 4
        assert ra.total(DNA.code("t")) == 0

    def test_verify_clean(self):
        RankAll(bwt_transform("acagaca"), DNA).verify()

    def test_char_code_at(self):
        ra = RankAll("acg$caaa", DNA)
        assert DNA.symbol(ra.char_code_at(3)) == "$"

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(IndexCorruptionError):
            RankAll("a$", DNA, sample_rate=0)

    def test_out_of_range(self):
        ra = RankAll("a$", DNA)
        with pytest.raises(IndexError):
            ra.occ(1, 3)

    def test_nbytes_counts_packed_payload(self):
        small = RankAll(bwt_transform("acgt"), DNA)
        big = RankAll(bwt_transform("acgt" * 100), DNA)
        assert big.nbytes() > small.nbytes()


class TestRange:
    def test_len_and_empty(self):
        assert len(Range(2, 5)) == 3
        assert Range(3, 3).is_empty
        assert EMPTY_RANGE.is_empty
        assert len(Range(5, 2)) == 0


class TestFMIndex:
    def test_count_paper_example(self):
        # Sec. III-A walks r = aca against BWT(acagaca$): two occurrences.
        fm = FMIndex("acagaca", DNA)
        assert fm.count("aca"[::-1]) == 2  # backward search over reversed query

    def test_count_forward_semantics(self):
        # FMIndex searches its own text directly (no reversal here).
        fm = FMIndex("acagaca", DNA)
        assert fm.count("aca") == 2
        assert fm.count("acag") == 1
        assert fm.count("gg") == 0
        assert fm.count("") == fm.n_rows

    def test_locate(self):
        fm = FMIndex("acagaca", DNA)
        assert sorted(fm.locate("aca")) == [0, 4]
        assert sorted(fm.locate("a")) == [0, 2, 4, 6]

    def test_locate_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            FMIndex("acgt", DNA).locate("")

    def test_contains(self):
        fm = FMIndex("acagaca", DNA)
        assert fm.contains("gac")
        assert not fm.contains("gat")

    @given(dna1, dna1)
    @settings(max_examples=60)
    def test_count_locate_match_brute_force(self, text, pattern):
        fm = FMIndex(text, DNA)
        expected = [
            i for i in range(len(text) - len(pattern) + 1)
            if text[i:i + len(pattern)] == pattern
        ]
        assert fm.count(pattern) == len(expected)
        assert sorted(fm.locate(pattern)) == expected

    @pytest.mark.parametrize("sa_sample", [1, 2, 8, 64])
    def test_locate_any_sa_sampling(self, sa_sample):
        text = "acgtacgtacgtagga"
        fm = FMIndex(text, DNA, sa_sample_rate=sa_sample)
        assert sorted(fm.locate("acgt")) == [0, 4, 8]

    def test_children_full_range(self):
        fm = FMIndex("acagaca", DNA)
        kids = fm.children(fm.full_range())
        codes = [code for code, _ in kids]
        assert codes == [DNA.code("a"), DNA.code("c"), DNA.code("g")]
        total = sum(len(rng) for _, rng in kids)
        assert total == fm.n_rows - 1  # everything but the sentinel row

    def test_children_of_empty(self):
        fm = FMIndex("acgt", DNA)
        assert fm.children(EMPTY_RANGE) == []

    def test_children_consistent_with_extend(self):
        fm = FMIndex("acagacagtt", DNA)
        rng = fm.full_range()
        for code, child in fm.children(rng):
            assert fm.extend(rng, code) == child

    def test_extend_char(self):
        fm = FMIndex("acagaca", DNA)
        rng = fm.extend_char(fm.full_range(), "a")
        assert len(rng) == 4

    def test_f_interval(self):
        fm = FMIndex("acagaca", DNA)
        assert fm.f_interval(DNA.code("a")) == Range(1, 5)
        assert fm.f_interval(0) == Range(0, 1)  # sentinel row

    def test_suffix_position_walks(self):
        text = "acagaca"
        fm = FMIndex(text, DNA, sa_sample_rate=4)
        from repro.suffix import suffix_array

        sa = suffix_array(text)
        for row in range(fm.n_rows):
            assert fm.suffix_position(row) == sa[row]

    def test_reconstruct_text(self):
        fm = FMIndex("acagaca", DNA)
        assert fm.reconstruct_text() == "acagaca"

    def test_infers_alphabet(self):
        fm = FMIndex("mississippi")
        assert fm.count("issi") == 2

    def test_rejects_bad_sa_sample(self):
        with pytest.raises(IndexCorruptionError):
            FMIndex("acgt", DNA, sa_sample_rate=0)


class TestFMIndexSerialization:
    def test_roundtrip(self):
        fm = FMIndex("acagacagtt", DNA)
        clone = FMIndex.loads(fm.dumps())
        assert clone.bwt == fm.bwt
        assert clone.count("aca") == fm.count("aca")
        assert sorted(clone.locate("aca")) == sorted(fm.locate("aca"))

    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            FMIndex.from_dict({"magic": "nope"})

    def test_bad_version(self):
        fm = FMIndex("acgt", DNA)
        payload = fm.to_dict()
        payload["version"] = 99
        with pytest.raises(SerializationError):
            FMIndex.from_dict(payload)

    def test_corrupt_bwt(self):
        fm = FMIndex("acgt", DNA)
        payload = fm.to_dict()
        payload["bwt"] = "aaaa"
        with pytest.raises(SerializationError):
            FMIndex.from_dict(payload)

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            FMIndex.loads("{not json")
