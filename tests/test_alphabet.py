"""Tests for repro.alphabet."""

import pytest

from repro.alphabet import DNA, PROTEIN, SENTINEL, Alphabet, infer_alphabet
from repro.errors import AlphabetError


class TestConstruction:
    def test_dna_order(self):
        assert DNA.symbols == ("a", "c", "g", "t")

    def test_sentinel_is_code_zero(self):
        assert DNA.code(SENTINEL) == 0
        assert DNA.symbol(0) == SENTINEL

    def test_size_includes_sentinel(self):
        assert DNA.size == 5
        assert PROTEIN.size == 21

    def test_rejects_empty(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_rejects_duplicates(self):
        with pytest.raises(AlphabetError):
            Alphabet("aab")

    def test_rejects_unsorted(self):
        with pytest.raises(AlphabetError):
            Alphabet("ca")

    def test_rejects_multichar_symbols(self):
        with pytest.raises(AlphabetError):
            Alphabet(["ab"])

    def test_rejects_explicit_sentinel(self):
        with pytest.raises(AlphabetError):
            Alphabet("$a")


class TestCoding:
    def test_codes_are_dense_and_sorted(self):
        assert [DNA.code(c) for c in "acgt"] == [1, 2, 3, 4]

    def test_roundtrip(self):
        text = "acagaca"
        assert DNA.decode(DNA.encode(text)) == text

    def test_encode_rejects_foreign(self):
        with pytest.raises(AlphabetError):
            DNA.encode("acgn")

    def test_symbol_out_of_range(self):
        with pytest.raises(AlphabetError):
            DNA.symbol(99)

    def test_code_unknown_char(self):
        with pytest.raises(AlphabetError):
            DNA.code("x")

    def test_validate_accepts_good(self):
        DNA.validate("acgtacgt")  # no exception

    def test_validate_rejects_sentinel(self):
        with pytest.raises(AlphabetError):
            DNA.validate("ac$a")

    def test_contains(self):
        assert DNA.contains("acgt")
        assert not DNA.contains("acgn")
        assert DNA.contains("")


class TestInference:
    def test_infer_minimal(self):
        alpha = infer_alphabet("mississippi")
        assert alpha.symbols == ("i", "m", "p", "s")

    def test_infer_rejects_sentinel(self):
        with pytest.raises(AlphabetError):
            infer_alphabet("ab$")

    def test_equality_and_hash(self):
        assert infer_alphabet("acgt") == DNA
        assert hash(infer_alphabet("acgt")) == hash(DNA)
        assert infer_alphabet("ac") != DNA
