"""Tests for the wide-event query log: deterministic head sampling,
size-based rotation, loss accounting, the summarize/tail readers, and
the trace-id joinability the executor threads through batches."""

from __future__ import annotations

import json

import pytest

from repro import KMismatchIndex
from repro.obs import (
    OBS,
    WIDE_EVENT_FORMAT,
    WIDE_EVENT_VERSION,
    WideEventLog,
    load_wide_events,
    make_wide_event,
    render_event_lines,
    render_event_summary,
    sample_keep,
    summarize_events,
    tail_events,
)


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestSampling:
    def test_boundary_fractions(self):
        assert sample_keep("anything", 1.0) is True
        assert sample_keep("anything", 0.0) is False
        assert sample_keep(None, 1.0) is True
        assert sample_keep(None, 0.0) is False

    def test_deterministic_per_trace_id(self):
        for trace_id in ("a1b2", "deadbeef", "q" * 16):
            first = sample_keep(trace_id, 0.5)
            assert all(sample_keep(trace_id, 0.5) == first for _ in range(5))

    def test_kept_fraction_converges(self):
        kept = sum(sample_keep(f"trace-{i}", 0.5) for i in range(400))
        assert 120 < kept < 280

    def test_multi_layer_events_share_the_verdict(self):
        # The matcher's, router's and executor's events for one query
        # carry the same trace id: they live or die together.
        for i in range(50):
            trace_id = f"query-{i}"
            verdicts = {sample_keep(trace_id, 0.3) for _ in ("matcher",
                                                             "router",
                                                             "batch")}
            assert len(verdicts) == 1

    def test_traceless_fallback_is_modular(self):
        kept = [seq for seq in range(1, 13)
                if sample_keep(None, 0.25, fallback_seq=seq)]
        assert kept == [4, 8, 12]


class TestMakeWideEvent:
    def test_core_fields(self):
        event = make_wide_event("query", engine="bwt_mismatch", k=2, m=24,
                                duration_ms=1.5, occurrences=3, shards=4,
                                return_path="arena", trace_id="abc123",
                                custom="x")
        assert event["format"] == WIDE_EVENT_FORMAT
        assert event["version"] == WIDE_EVENT_VERSION
        assert event["event"] == "query"
        assert event["engine"] == "bwt_mismatch"
        assert event["k"] == 2 and event["m"] == 24
        assert event["duration_ms"] == 1.5
        assert event["occurrences"] == 3 and event["shards"] == 4
        assert event["return_path"] == "arena"
        assert event["trace_id"] == "abc123"
        assert event["custom"] == "x"
        assert event["ts"] > 0

    def test_empty_optionals_are_omitted(self):
        event = make_wide_event("query")
        assert "return_path" not in event
        assert "trace_id" not in event


class TestWideEventLog:
    def test_emit_and_load(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path, sample=1.0)
        for i in range(3):
            assert log.emit(make_wide_event("query", k=i,
                                            trace_id=f"t{i}")) is True
        log.close()
        events = load_wide_events(path)
        assert [event["k"] for event in events] == [0, 1, 2]
        assert log.lines_written == 3
        assert log.lines_sampled_out == 0

    def test_sampled_out_events_are_counted_not_written(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path, sample=0.0)
        assert log.emit(make_wide_event("query", trace_id="t")) is False
        log.close()
        assert log.lines_written == 0
        assert log.lines_sampled_out == 1
        assert load_wide_events(path) == []

    def test_emit_after_close_is_noop(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path)
        log.close()
        assert log.emit(make_wide_event("query")) is False
        assert log.lines_written == 0

    def test_rotation_shifts_generations(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        line_size = len(json.dumps(make_wide_event("query", i=0)) + "\n")
        log = WideEventLog(path, sample=1.0, max_bytes=line_size * 3 + 10,
                           backups=2)
        for i in range(10):
            log.emit(make_wide_event("query", i=i))
        log.close()
        assert log.rotations >= 2
        assert (tmp_path / "events.jsonl.1").exists()
        assert (tmp_path / "events.jsonl.2").exists()
        # The backup bound holds: generation 3 never appears.
        assert not (tmp_path / "events.jsonl.3").exists()

    def test_load_orders_backups_oldest_first(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        line_size = len(json.dumps(make_wide_event("query", i=0)) + "\n")
        log = WideEventLog(path, sample=1.0, max_bytes=line_size * 4 + 10,
                           backups=8)
        for i in range(10):
            log.emit(make_wide_event("query", i=i))
        log.close()
        events = load_wide_events(path)
        # Rotation loses nothing while backups suffice; order is global.
        assert [event["i"] for event in events] == list(range(10))
        live_only = load_wide_events(path, include_backups=False)
        assert len(live_only) < 10
        assert [e["i"] for e in live_only] == \
            [e["i"] for e in events[-len(live_only):]]

    def test_to_dict_accounting(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path, sample=1.0, max_bytes=123456, backups=2)
        log.emit(make_wide_event("query"))
        doc = log.to_dict()
        log.close()
        assert doc["path"] == path
        assert doc["lines_written"] == 1
        assert doc["max_bytes"] == 123456
        assert doc["rotations"] == 0


class TestReaders:
    def sample_records(self):
        records = []
        for duration in (1.0, 2.0, 3.0, 10.0):
            records.append(make_wide_event(
                "query", engine="bwt_mismatch", k=2, m=24,
                duration_ms=duration, occurrences=1, shards=3,
                trace_id=f"t{duration}"))
        records.append(make_wide_event("batch", engine="bwt_mismatch", k=2,
                                       return_path="arena", trace_id="b1"))
        records.append(make_wide_event("error", engine="bwt_mismatch", k=2,
                                       error="PatternError"))
        return records

    def test_summarize_hand_computed(self):
        summary = summarize_events(self.sample_records())
        assert summary["format"] == "repro-wide-event-summary"
        assert summary["n_events"] == 6
        assert summary["n_queries"] == 4
        assert summary["n_batches"] == 1
        assert summary["n_errors"] == 1
        group = summary["by_engine"][0]
        assert group["engine"] == "bwt_mismatch" and group["k"] == 2
        assert group["queries"] == 4
        assert group["occurrences"] == 4
        assert group["max_shards"] == 3
        # Nearest-rank over [1, 2, 3, 10]: p50 -> rank 2 -> 2.0,
        # p95/p99 -> rank 4 -> 10.0.
        assert group["p50_ms"] == 2.0
        assert group["p95_ms"] == 10.0
        assert group["p99_ms"] == 10.0
        assert summary["batch_return_paths"] == {"arena": 1}

    def test_summarize_empty(self):
        summary = summarize_events([])
        assert summary["n_events"] == 0
        assert summary["by_engine"] == []
        assert summary["events_per_s"] == 0.0

    def test_tail_returns_newest(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path, sample=1.0)
        for i in range(5):
            log.emit(make_wide_event("query", i=i))
        log.close()
        assert [event["i"] for event in tail_events(path, 2)] == [3, 4]

    def test_render_smoke(self):
        records = self.sample_records()
        text = render_event_summary(summarize_events(records))
        assert "bwt_mismatch" in text
        assert "batch return paths: arena=1" in text
        lines = render_event_lines(records)
        assert "shards=3" in lines
        assert "path=arena" in lines
        assert render_event_lines([]) == "(no events)"


class TestObservabilityIntegration:
    def test_open_emit_close_wide_log(self, tmp_path):
        path = str(tmp_path / "wide.jsonl")
        OBS.enable()
        OBS.open_wide_log(path)
        assert OBS.emit_wide("query", engine="x", k=1, trace_id="t1") is True
        OBS.close_wide_log()
        assert OBS.wide_log is None
        assert OBS.emit_wide("query", engine="x", k=1) is False
        events = load_wide_events(path)
        assert len(events) == 1
        assert events[0]["engine"] == "x"

    def test_matcher_emits_wide_query_events(self, tmp_path):
        path = str(tmp_path / "wide.jsonl")
        OBS.enable()
        OBS.open_wide_log(path)
        index = KMismatchIndex("acagaca" * 20)
        occurrences = index.search("acaggca", 1)
        OBS.close_wide_log()
        events = load_wide_events(path)
        queries = [e for e in events if e["event"] == "query"]
        assert len(queries) == 1
        assert queries[0]["m"] == 7
        assert queries[0]["occurrences"] == len(occurrences)
        assert queries[0]["trace_id"]

    def test_batch_trace_id_joins_batch_and_queries(self, tmp_path):
        path = str(tmp_path / "wide.jsonl")
        OBS.enable()
        OBS.open_wide_log(path)
        index = KMismatchIndex("acagaca" * 40)
        reads = ["acagaca", "cagacag", "gacacag"]
        index.search_batch(reads, 1, workers=2, mode="thread")
        OBS.close_wide_log()

        batch_records = [r for r in OBS.recorder.recent()
                         if r["event"] == "batch"]
        assert len(batch_records) == 1
        trace_id = batch_records[0]["trace_id"]
        assert trace_id
        # One recorder lookup by the batch id returns the batch record.
        joined = OBS.recorder.find_trace(trace_id)
        assert batch_records[0] in joined

        events = load_wide_events(path)
        batch_events = [e for e in events if e["event"] == "batch"]
        assert len(batch_events) == 1
        assert batch_events[0]["trace_id"] == trace_id
        assert batch_events[0]["items"] == len(reads)
        assert batch_events[0]["workers"] == 2
