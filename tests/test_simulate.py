"""Tests for the simulation substrate (repro.simulate)."""

import pytest

from repro.simulate import (
    GENOME_CATALOG,
    GenomeConfig,
    ReadConfig,
    build_catalog_genome,
    generate_genome,
    reverse_complement,
    simulate_reads,
)
from repro.simulate.genome import summarize_genome
from repro.strings.hamming import hamming_distance


class TestReverseComplement:
    def test_simple(self):
        assert reverse_complement("acag") == "ctgt"

    def test_involution(self):
        seq = "acgtacgtgg"
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_empty(self):
        assert reverse_complement("") == ""


class TestGenomeGeneration:
    def test_length(self):
        assert len(generate_genome(GenomeConfig(length=1234, seed=1))) == 1234

    def test_alphabet(self):
        genome = generate_genome(GenomeConfig(length=500, seed=2))
        assert set(genome) <= set("acgt")

    def test_reproducible(self):
        a = generate_genome(GenomeConfig(length=500, seed=3))
        b = generate_genome(GenomeConfig(length=500, seed=3))
        assert a == b

    def test_seed_changes_output(self):
        a = generate_genome(GenomeConfig(length=500, seed=3))
        b = generate_genome(GenomeConfig(length=500, seed=4))
        assert a != b

    def test_gc_content_tracks_config(self):
        low = generate_genome(GenomeConfig(length=20_000, gc_content=0.2, repeat_fraction=0, tandem_fraction=0, seed=5))
        high = generate_genome(GenomeConfig(length=20_000, gc_content=0.8, repeat_fraction=0, tandem_fraction=0, seed=5))
        assert summarize_genome(low).gc_content < 0.3
        assert summarize_genome(high).gc_content > 0.7

    def test_repeats_increase_duplication(self):
        # With repeats, some 30-mers occur many times; without, rarely.
        plain = generate_genome(GenomeConfig(length=30_000, repeat_fraction=0.0, tandem_fraction=0.0, seed=6))
        repeaty = generate_genome(GenomeConfig(length=30_000, repeat_fraction=0.6, repeat_divergence=0.0, tandem_fraction=0.0, seed=6))

        def max_30mer_count(genome):
            counts = {}
            for i in range(0, len(genome) - 30, 7):
                w = genome[i:i + 30]
                counts[w] = counts.get(w, 0) + 1
            return max(counts.values())

        assert max_30mer_count(repeaty) > max_30mer_count(plain)

    def test_validation(self):
        with pytest.raises(ValueError):
            GenomeConfig(length=0).validate()
        with pytest.raises(ValueError):
            GenomeConfig(length=10, gc_content=1.5).validate()
        with pytest.raises(ValueError):
            GenomeConfig(length=10, repeat_unit_length=0).validate()


class TestReadSimulation:
    def test_counts_and_lengths(self):
        genome = generate_genome(GenomeConfig(length=2000, seed=7))
        reads = simulate_reads(genome, ReadConfig(n_reads=25, length=50, seed=8))
        assert len(reads) == 25
        assert all(len(r.sequence) == 50 for r in reads)

    def test_ground_truth_positions(self):
        genome = generate_genome(GenomeConfig(length=2000, seed=7))
        reads = simulate_reads(genome, ReadConfig(n_reads=25, length=50, seed=8))
        for read in reads:
            window = genome[read.position:read.position + 50]
            assert hamming_distance(read.forward_sequence(), window) == read.n_mutations

    def test_error_free_reads_are_exact_windows(self):
        genome = generate_genome(GenomeConfig(length=2000, seed=9))
        config = ReadConfig(n_reads=10, length=40, error_rate=0.0, mutation_rate=0.0, seed=1)
        for read in simulate_reads(genome, config):
            assert read.n_mutations == 0
            assert read.forward_sequence() == genome[read.position:read.position + 40]

    def test_both_strands_sampled(self):
        genome = generate_genome(GenomeConfig(length=5000, seed=10))
        reads = simulate_reads(genome, ReadConfig(n_reads=60, length=30, seed=2))
        strands = {r.reverse_strand for r in reads}
        assert strands == {True, False}

    def test_forward_only(self):
        genome = generate_genome(GenomeConfig(length=5000, seed=10))
        reads = simulate_reads(genome, ReadConfig(n_reads=20, length=30, both_strands=False, seed=2))
        assert all(not r.reverse_strand for r in reads)

    def test_error_rate_produces_mutations(self):
        genome = generate_genome(GenomeConfig(length=5000, seed=11))
        reads = simulate_reads(genome, ReadConfig(n_reads=50, length=100, error_rate=0.1, seed=3))
        assert sum(r.n_mutations for r in reads) > 0

    def test_read_longer_than_genome_rejected(self):
        with pytest.raises(ValueError):
            simulate_reads("acgt", ReadConfig(n_reads=1, length=10))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReadConfig(n_reads=-1, length=5).validate()
        with pytest.raises(ValueError):
            ReadConfig(n_reads=1, length=5, error_rate=2.0).validate()


class TestCatalog:
    def test_roster_matches_table1(self):
        names = [spec.name for spec in GENOME_CATALOG]
        assert names == [
            "Rat (Rnor_6.0)",
            "Zebra fish (GRCz10)",
            "Rat chr1 (Rnor_6.0)",
            "C. elegans (WBcel235)",
            "C. merolae (ASM9v1)",
        ]

    def test_paper_sizes(self):
        sizes = [spec.paper_size_bp for spec in GENOME_CATALOG]
        assert sizes == [2_909_701_677, 1_464_443_456, 290_094_217, 103_022_290, 16_728_967]

    def test_relative_sizes_preserved(self):
        specs = GENOME_CATALOG
        for a, b in zip(specs, specs[1:]):
            assert a.scaled_size > b.scaled_size

    def test_build_respects_cap(self):
        genome = build_catalog_genome(GENOME_CATALOG[0], max_length=5_000)
        assert len(genome) == 5_000

    def test_build_is_memoised(self):
        a = build_catalog_genome(GENOME_CATALOG[-1], max_length=4_000)
        b = build_catalog_genome(GENOME_CATALOG[-1], max_length=4_000)
        assert a is b
