"""Tests for the ``repro-cli top`` dashboard: the pure
``compute_dashboard`` aggregation (hand-computed), the payload helpers,
ANSI rendering, the CLI surfaces, and the dual-surface consistency
guarantee (``top --once --json`` equals the ``/debug/stream`` frame)."""

from __future__ import annotations

import json

import pytest

from repro import KMismatchIndex
from repro.cli import main
from repro.obs import OBS, MetricsRegistry, configure_timeseries
from repro.obs.server import MetricsServer
from repro.obs.slo import configure_slo_engine
from repro.obs.stream import configure_broker
from repro.obs.top import (
    DASHBOARD_FORMAT,
    DASHBOARD_VERSION,
    compute_dashboard,
    counter_total,
    gauge_value,
    merged_histogram,
    render_dashboard,
)


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()
    configure_timeseries()
    configure_broker()
    configure_slo_engine()


def synthetic_payload():
    """A registry whose dashboard is hand-computable (window 10 s)."""
    registry = MetricsRegistry()
    registry.gauge("process.uptime_s").set(10.0)
    registry.gauge("process.rss_bytes").set(2048)

    registry.counter("query.count").inc(20)
    registry.counter("query.count", engine="bwt_mismatch", k=2).inc(20)
    registry.counter("query.occurrences", engine="bwt_mismatch", k=2).inc(37)
    registry.counter("query.errors", engine="bwt_mismatch", k=2,
                     kind="PatternError").inc(2)

    latency = registry.histogram("query.latency_ms", (1, 10, 100))
    for _ in range(10):
        latency.observe(0.5)
    for _ in range(6):
        latency.observe(5)
    for _ in range(4):
        latency.observe(50)

    search = registry.histogram("query.search_ms", (1, 10, 100),
                                engine="bwt_mismatch", k=2)
    search.observe(5)
    search.observe(5)

    registry.gauge("engine.pool.workers").set(4)
    registry.counter("engine.worker.busy_ms").inc(20000)
    registry.counter("engine.arena.records").inc(10)
    registry.counter("engine.arena.spills").inc(1)

    registry.histogram("query.shard_ms", (1, 10, 100), engine="bwt_mismatch",
                       k=2, shard=0).observe(5)
    registry.histogram("query.shard_ms", (1, 10, 100), engine="bwt_mismatch",
                       k=2, shard=1).observe(50)
    registry.counter("query.shard_occurrences", engine="bwt_mismatch", k=2,
                     shard=0).inc(3)
    registry.counter("query.shard_occurrences", engine="bwt_mismatch", k=2,
                     shard=1).inc(9)
    return registry.to_dict()


class TestPayloadHelpers:
    def test_counter_total_base_next_to_children_not_double_counted(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(10)
        registry.counter("c", engine="a").inc(4)
        registry.counter("c", engine="b").inc(6)
        payload = registry.to_dict()
        # Children sum; the base total (which mirrors them) is skipped.
        assert counter_total(payload, "c") == 10
        assert counter_total(payload, "c", flat_only=True) == 10
        assert counter_total(payload, "c", where={"engine": "a"}) == 4

    def test_counter_total_base_only_family(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        payload = registry.to_dict()
        assert counter_total(payload, "c") == 7
        # A label filter never matches the unlabelled base.
        assert counter_total(payload, "c", where={"engine": "a"}) == 0

    def test_counter_total_where_is_a_subset_match(self):
        registry = MetricsRegistry()
        registry.counter("e", engine="a", kind="X").inc(2)
        registry.counter("e", engine="a", kind="Y").inc(3)
        registry.counter("e", engine="b", kind="X").inc(5)
        payload = registry.to_dict()
        assert counter_total(payload, "e") == 10
        assert counter_total(payload, "e", where={"engine": "a"}) == 5
        assert counter_total(payload, "e", where={"kind": "X"}) == 7

    def test_gauge_value_and_default(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.5)
        payload = registry.to_dict()
        assert gauge_value(payload, "g") == 3.5
        assert gauge_value(payload, "absent", default=-1.0) == -1.0
        assert gauge_value(None, "absent") == 0.0

    def test_merged_histogram_flat_vs_labelled(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 10), engine="a").observe(0.5)
        registry.histogram("h", (1, 10), engine="b").observe(5)
        payload = registry.to_dict()
        # Without a filter only the unlabelled series qualifies (absent
        # here); with one, matching series merge.
        assert merged_histogram(payload, "h") is None
        merged = merged_histogram(payload, "h", where={})
        assert merged is not None and merged.count == 2
        only_a = merged_histogram(payload, "h", where={"engine": "a"})
        assert only_a.count == 1


class TestComputeDashboard:
    def test_hand_computed_top_line(self):
        dashboard = compute_dashboard(synthetic_payload(), window_s=10)
        assert dashboard["format"] == DASHBOARD_FORMAT
        assert dashboard["version"] == DASHBOARD_VERSION
        assert dashboard["window_s"] == 10.0
        assert dashboard["uptime_s"] == 10.0
        assert dashboard["rss_bytes"] == 2048
        assert dashboard["queries"] == 20
        assert dashboard["qps"] == 2.0
        assert dashboard["errors"] == 2
        assert dashboard["error_rate"] == 0.1
        # 20 observations: ranks 10 / 19 / 19.8 over cumulative
        # (10, 16, 20) -> buckets 1, 100, 100.
        assert dashboard["latency_ms"] == {"p50_ms": 1.0, "p95_ms": 100.0,
                                           "p99_ms": 100.0}
        assert dashboard["workers"] == 4
        # 20000 busy-ms over 10 s across 4 workers = 50%.
        assert dashboard["utilization"] == 0.5
        assert dashboard["arena"] == {"records": 10, "spills": 1,
                                      "spill_rate": 0.1}

    def test_hand_computed_by_engine(self):
        dashboard = compute_dashboard(synthetic_payload(), window_s=10)
        assert len(dashboard["by_engine"]) == 1
        row = dashboard["by_engine"][0]
        assert row["engine"] == "bwt_mismatch"
        assert row["k"] == 2
        assert row["queries"] == 20
        assert row["qps"] == 2.0
        assert row["occurrences"] == 37
        assert row["errors"] == 2
        assert row["p50_ms"] == 10.0  # both observations in le=10

    def test_hand_computed_by_shard(self):
        dashboard = compute_dashboard(synthetic_payload(), window_s=10)
        assert [row["shard"] for row in dashboard["by_shard"]] == [0, 1]
        shard0, shard1 = dashboard["by_shard"]
        assert shard0["queries"] == 1 and shard0["occurrences"] == 3
        assert shard0["p50_ms"] == 10.0
        assert shard1["p50_ms"] == 100.0
        assert shard1["occurrences"] == 9

    def test_window_defaults_to_uptime_gauge(self):
        dashboard = compute_dashboard(synthetic_payload())
        assert dashboard["window_s"] == 10.0
        assert dashboard["qps"] == 2.0

    def test_empty_payload_degrades_to_zeros(self):
        for payload in ({}, None):
            dashboard = compute_dashboard(payload)
            assert dashboard["queries"] == 0
            assert dashboard["qps"] == 0.0
            assert dashboard["error_rate"] == 0.0
            assert dashboard["utilization"] == 0.0
            assert dashboard["by_engine"] == []
            assert dashboard["by_shard"] == []

    def test_alerts_pass_through(self):
        alerts = [{"objective": "availability", "state": "firing"}]
        dashboard = compute_dashboard(synthetic_payload(), window_s=10,
                                      alerts=alerts)
        assert dashboard["alerts"] == alerts

    def test_utilization_capped_at_one(self):
        registry = MetricsRegistry()
        registry.gauge("engine.pool.workers").set(1)
        registry.counter("engine.worker.busy_ms").inc(99999999)
        dashboard = compute_dashboard(registry.to_dict(), window_s=1)
        assert dashboard["utilization"] == 1.0


class TestRenderDashboard:
    def test_plain_rendering_has_no_ansi(self):
        dashboard = compute_dashboard(synthetic_payload(), window_s=10)
        text = render_dashboard(dashboard, color=False)
        assert "\x1b" not in text
        assert "repro top" in text
        assert "bwt_mismatch" in text
        assert "qps 2" in text
        assert "shard" in text

    def test_color_rendering_has_ansi(self):
        dashboard = compute_dashboard(synthetic_payload(), window_s=10)
        assert "\x1b[" in render_dashboard(dashboard, color=True)

    def test_firing_alerts_called_out(self):
        dashboard = compute_dashboard(
            synthetic_payload(), window_s=10,
            alerts=[{"objective": "availability", "state": "firing"}])
        assert "ALERTS FIRING: availability" in \
            render_dashboard(dashboard, color=False)

    def test_quiet_alerts_summarized(self):
        dashboard = compute_dashboard(
            synthetic_payload(), window_s=10,
            alerts=[{"objective": "availability", "state": "inactive"}])
        assert "alerts: 1 ok" in render_dashboard(dashboard, color=False)


class TestTopCLI:
    def _trace(self, tmp_path):
        OBS.reset()
        OBS.enable()
        index = KMismatchIndex("acagaca" * 20)
        for _ in range(4):
            index.search("acaggca", 1)
        path = tmp_path / "trace.json"
        OBS.write_trace(str(path))
        OBS.disable()
        return str(path)

    def test_trace_mode_json(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["top", trace, "--json", "--window", "10"]) == 0
        dashboard = json.loads(capsys.readouterr().out)
        assert dashboard["format"] == DASHBOARD_FORMAT
        assert dashboard["queries"] == 4
        assert dashboard["qps"] == pytest.approx(0.4)
        assert dashboard["by_engine"]

    def test_trace_mode_rendered(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["top", trace, "--window", "10"]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_no_source_is_an_error(self, capsys):
        assert main(["top"]) == 2
        assert "TRACE file or --url" in capsys.readouterr().err

    def test_missing_trace_is_an_error(self, capsys):
        assert main(["top", "/nonexistent/trace.json"]) == 2

    def test_bad_url_is_an_error(self, capsys):
        assert main(["top", "--url", "http://127.0.0.1:1",
                     "--once", "--json"]) == 2
        assert "error" in capsys.readouterr().err


class TestEventsCLI:
    def _events_file(self, tmp_path):
        from repro.obs import WideEventLog, make_wide_event

        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path, sample=1.0)
        for i in range(5):
            log.emit(make_wide_event("query", engine="bwt_mismatch", k=2,
                                     duration_ms=float(i), occurrences=1,
                                     trace_id=f"t{i}"))
        log.emit(make_wide_event("batch", engine="bwt_mismatch", k=2,
                                 return_path="arena"))
        log.close()
        return path

    def test_tail(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["events", "tail", path, "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "bwt_mismatch" in out
        assert out.count("\n") == 3

    def test_tail_json(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["events", "tail", path, "-n", "2", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["engine"] == "bwt_mismatch"
                   for line in lines)

    def test_summarize(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["events", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "5 query" in out
        assert "arena=1" in out

    def test_summarize_json(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["events", "summarize", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_queries"] == 5
        assert summary["n_batches"] == 1

    def test_missing_file_is_an_error(self, capsys):
        assert main(["events", "summarize", "/nonexistent.jsonl"]) == 2


class TestDualSurfaceConsistency:
    def test_top_once_matches_stream_dashboard(self, tmp_path, capsys):
        """Acceptance: ``top --once --json`` against a served workload
        reports the same numbers the ``/debug/stream`` frame carries —
        both render one ``compute_dashboard`` output."""
        OBS.enable()
        configure_timeseries()
        configure_slo_engine()
        configure_broker()
        index = KMismatchIndex("acagaca" * 30)
        for _ in range(6):
            index.search("acaggca", 1)
        server = MetricsServer(port=0).start()
        try:
            assert main(["top", "--url", server.url,
                         "--once", "--json"]) == 0
            streamed = json.loads(capsys.readouterr().out)
        finally:
            server.stop()
            from repro.obs.stream import get_broker

            get_broker().stop()
        local = compute_dashboard(OBS.metrics.to_dict())
        assert streamed["format"] == DASHBOARD_FORMAT
        assert streamed["queries"] == local["queries"] == 6
        assert streamed["errors"] == local["errors"]
        assert streamed["by_engine"][0]["engine"] == \
            local["by_engine"][0]["engine"]
        assert streamed["by_engine"][0]["queries"] == \
            local["by_engine"][0]["queries"]
