"""Cross-cutting property tests (hypothesis).

The central invariant of the whole package: every matcher — Algorithm A
in all its configurations, the S-tree baseline, Amir, Cole, Landau–
Vishkin — returns exactly the occurrence set of the naive O(mn) scan, on
any input.  Plus structural invariants of the index substrate.
"""

from hypothesis import given, settings, strategies as st

from repro.alphabet import DNA
from repro.baselines import amir_search, cole_search, landau_vishkin_search, naive_search
from repro.bwt import FMIndex, bwt_transform, inverse_bwt
from repro.bwt.rankall import RankAll
from repro.core.algorithm_a import AlgorithmASearcher
from repro.core.matcher import KMismatchIndex
from repro.core.stree import STreeSearcher
from repro.suffix import suffix_array, suffix_array_naive

dna_text = st.text(alphabet="acgt", min_size=1, max_size=60)
binary_text = st.text(alphabet="at", min_size=1, max_size=60)
dna_pattern = st.text(alphabet="acgt", min_size=1, max_size=12)
small_k = st.integers(min_value=0, max_value=6)


def expected(text, pattern, k):
    return [(o.start, o.mismatches) for o in naive_search(text, pattern, k)]


class TestMatcherEquivalence:
    @given(dna_text, dna_pattern, small_k)
    @settings(max_examples=120, deadline=None)
    def test_algorithm_a(self, text, pattern, k):
        fm = FMIndex(text[::-1], DNA)
        occs, _ = AlgorithmASearcher(fm).search(pattern, k)
        assert [(o.start, o.mismatches) for o in occs] == expected(text, pattern, k)

    @given(binary_text, st.text(alphabet="at", min_size=1, max_size=10), small_k)
    @settings(max_examples=80, deadline=None)
    def test_algorithm_a_binary_alphabet_full_memo(self, text, pattern, k):
        # Binary texts maximise pair recurrence; min_memo_width=1 is the
        # paper-literal mode where every node enters the hash table.
        fm = FMIndex(text[::-1], DNA)
        occs, _ = AlgorithmASearcher(fm, min_memo_width=1, use_phi=False).search(pattern, k)
        assert [(o.start, o.mismatches) for o in occs] == expected(text, pattern, k)

    @given(dna_text, dna_pattern, small_k)
    @settings(max_examples=80, deadline=None)
    def test_stree(self, text, pattern, k):
        fm = FMIndex(text[::-1], DNA)
        occs, _ = STreeSearcher(fm).search(pattern, k)
        assert [(o.start, o.mismatches) for o in occs] == expected(text, pattern, k)

    @given(dna_text, dna_pattern, small_k)
    @settings(max_examples=60, deadline=None)
    def test_amir(self, text, pattern, k):
        got = sorted((o.start, o.mismatches) for o in amir_search(text, pattern, k))
        assert got == expected(text, pattern, k)

    @given(dna_text, dna_pattern, small_k)
    @settings(max_examples=60, deadline=None)
    def test_cole(self, text, pattern, k):
        got = sorted((o.start, o.mismatches) for o in cole_search(text, pattern, k))
        assert got == expected(text, pattern, k)

    @given(dna_text, dna_pattern, small_k)
    @settings(max_examples=60, deadline=None)
    def test_landau_vishkin(self, text, pattern, k):
        got = sorted((o.start, o.mismatches) for o in landau_vishkin_search(text, pattern, k))
        assert got == expected(text, pattern, k)


class TestSubstrateInvariants:
    @given(dna_text)
    @settings(max_examples=100, deadline=None)
    def test_bwt_invertible(self, text):
        assert inverse_bwt(bwt_transform(text)) == text

    @given(dna_text)
    @settings(max_examples=100, deadline=None)
    def test_sais_equals_naive(self, text):
        assert suffix_array(text) == suffix_array_naive(text)

    @given(dna_text, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_rankall_counts(self, text, sample_rate):
        bwt = bwt_transform(text)
        ra = RankAll(bwt, DNA, sample_rate=sample_rate)
        ra.verify()
        for i in (0, len(bwt) // 2, len(bwt)):
            row = ra.counts_at(i)
            for code in range(DNA.size):
                assert row[code] == bwt[:i].count(DNA.symbol(code))

    @given(dna_text, dna_pattern)
    @settings(max_examples=80, deadline=None)
    def test_fmindex_locate(self, text, pattern):
        fm = FMIndex(text, DNA)
        direct = [
            i for i in range(len(text) - len(pattern) + 1)
            if text[i:i + len(pattern)] == pattern
        ]
        assert sorted(fm.locate(pattern)) == direct
        assert fm.count(pattern) == len(direct)

    @given(dna_text, dna_pattern, small_k)
    @settings(max_examples=60, deadline=None)
    def test_occurrence_windows_within_budget(self, text, pattern, k):
        index = KMismatchIndex(text)
        for occ in index.search(pattern, k):
            assert 0 <= occ.start <= len(text) - len(pattern)
            assert occ.n_mismatches <= k
            window = text[occ.start:occ.start + len(pattern)]
            direct = tuple(i for i, (a, b) in enumerate(zip(window, pattern)) if a != b)
            assert occ.mismatches == direct
