"""Tests for the perf-regression gate (repro.bench.regression).

The hermetic cases build documents by hand so the 25% default thresholds
are exercised without depending on CI-runner timing; one end-to-end case
runs the real (tiny) workload through the CLI.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    RegressionError,
    compare_runs,
    format_report,
    load_bench_json,
    run_ci_workload,
    write_bench_json,
)
from repro.bench.regression import (
    BENCH_FORMAT,
    BENCH_VERSION,
    LATENCY_FLOOR_MS,
    validate_bench_document,
)
from repro.cli import main


def make_document(avg_ms=4.0, rank_queries=2000, nodes=500, leaves=120):
    return {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "workload": {
            "target_bp": 40_000,
            "n_reads": 12,
            "read_length": 60,
            "k": 2,
            "seed": 7,
        },
        "methods": {
            "A()": {
                "method": "A()",
                "avg_ms": avg_ms,
                "stats": {
                    "rank_queries": rank_queries,
                    "nodes_expanded": nodes,
                    "leaves": leaves,
                },
            },
        },
    }


class TestCompareRuns:
    def test_identical_runs_pass(self):
        document = make_document()
        assert compare_runs(document, copy.deepcopy(document)) == []

    def test_injected_2x_slowdown_fails_default_threshold(self):
        baseline = make_document(avg_ms=4.0)
        current = make_document(avg_ms=8.0)
        findings = compare_runs(current, baseline)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.metric == "avg_ms"
        assert finding.ratio == pytest.approx(2.0)
        assert "2.00x" in finding.describe()

    def test_within_threshold_slowdown_passes(self):
        baseline = make_document(avg_ms=4.0)
        current = make_document(avg_ms=4.9)  # +22.5% < 25%
        assert compare_runs(current, baseline) == []

    def test_improvement_never_fails(self):
        baseline = make_document(avg_ms=4.0, rank_queries=2000)
        current = make_document(avg_ms=1.0, rank_queries=900)
        assert compare_runs(current, baseline) == []

    def test_sub_floor_latency_growth_is_noise(self):
        # 2x ratio but absolute growth below the floor: timer noise.
        baseline = make_document(avg_ms=0.02)
        current = make_document(avg_ms=0.02 + LATENCY_FLOOR_MS / 2)
        assert compare_runs(current, baseline) == []

    def test_probe_count_regression_fails(self):
        baseline = make_document(rank_queries=2000)
        current = make_document(rank_queries=2600)  # +30%
        findings = compare_runs(current, baseline)
        assert [f.metric for f in findings] == ["stats.rank_queries"]
        assert findings[0].threshold == 0.25

    def test_multiple_counters_reported_separately(self):
        baseline = make_document(rank_queries=2000, nodes=500, leaves=120)
        current = make_document(rank_queries=4000, nodes=1000, leaves=120)
        metrics = {f.metric for f in compare_runs(current, baseline)}
        assert metrics == {"stats.rank_queries", "stats.nodes_expanded"}

    def test_workload_mismatch_raises(self):
        baseline = make_document()
        current = make_document()
        current["workload"]["target_bp"] = 80_000
        with pytest.raises(RegressionError, match="workload mismatch"):
            compare_runs(current, baseline)

    def test_missing_baseline_method_raises(self):
        baseline = make_document()
        current = make_document()
        current["methods"] = {}
        with pytest.raises(RegressionError, match="missing baseline method"):
            compare_runs(current, baseline)

    def test_extra_current_method_is_ignored(self):
        baseline = make_document()
        current = make_document()
        current["methods"]["BWT"] = {"method": "BWT", "avg_ms": 99.0, "stats": {}}
        assert compare_runs(current, baseline) == []


class TestDocumentValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(RegressionError, match="format='repro-trace'"):
            validate_bench_document({"format": "repro-trace", "version": 1})

    def test_future_version_rejected(self):
        document = make_document()
        document["version"] = BENCH_VERSION + 1
        with pytest.raises(RegressionError, match=f"version {BENCH_VERSION + 1}"):
            validate_bench_document(document)

    def test_missing_methods_rejected(self):
        document = make_document()
        del document["methods"]
        with pytest.raises(RegressionError, match="methods"):
            validate_bench_document(document)

    def test_load_bench_json_round_trip(self, tmp_path):
        path = tmp_path / "run.json"
        write_bench_json(make_document(), str(path))
        loaded = load_bench_json(str(path))
        assert loaded["methods"]["A()"]["avg_ms"] == 4.0

    def test_load_bench_json_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RegressionError, match="not valid JSON"):
            load_bench_json(str(path))


class TestFormatReport:
    def test_pass_report(self):
        report = format_report([], make_document(), make_document())
        assert "regression gate passed" in report
        assert "baseline avg" in report

    def test_fail_report_lists_findings(self):
        baseline = make_document(avg_ms=4.0)
        current = make_document(avg_ms=8.0)
        findings = compare_runs(current, baseline)
        report = format_report(findings, current, baseline)
        assert "REGRESSION GATE FAILED" in report
        assert "avg_ms regressed" in report


class TestCiWorkload:
    SMALL = ["--scale", "4000", "--reads", "3", "--read-length", "40"]

    def test_run_ci_workload_is_deterministic(self):
        first = run_ci_workload(methods=("BWT",), scale=4000, n_reads=3,
                                read_length=40)
        second = run_ci_workload(methods=("BWT",), scale=4000, n_reads=3,
                                 read_length=40)
        assert first["workload"] == second["workload"]
        assert (
            first["methods"]["BWT"]["stats"]
            == second["methods"]["BWT"]["stats"]
        )
        assert first["methods"]["BWT"]["stats"]["rank_queries"] > 0

    def test_cli_gate_passes_against_own_output(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = main(["bench", "--methods", "BWT", *self.SMALL,
                     "--json-out", str(baseline)])
        assert code == 0
        code = main(["bench", "--methods", "BWT", *self.SMALL,
                     "--baseline", str(baseline), "--check-regression",
                     "--latency-threshold", "900"])
        assert code == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_cli_gate_fails_on_doctored_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "--methods", "BWT", *self.SMALL,
                     "--json-out", str(baseline)]) == 0
        document = json.loads(baseline.read_text())
        # Halving the baseline probe count makes the (deterministic)
        # current run look like a 2x work regression.
        stats = document["methods"]["BWT"]["stats"]
        stats["rank_queries"] //= 2
        baseline.write_text(json.dumps(document))
        code = main(["bench", "--methods", "BWT", *self.SMALL,
                     "--baseline", str(baseline), "--check-regression",
                     "--latency-threshold", "900"])
        assert code == 3
        assert "REGRESSION GATE FAILED" in capsys.readouterr().out

    def test_cli_check_regression_requires_baseline(self, capsys):
        code = main(["bench", "--methods", "BWT", *self.SMALL,
                     "--check-regression"])
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_committed_baseline_is_valid(self):
        import pathlib

        path = (pathlib.Path(__file__).resolve().parent.parent
                / "benchmarks" / "results" / "baseline_ci.json")
        document = load_bench_json(str(path))
        assert set(document["methods"]) == {"A()", "BWT"}
        assert document["workload"]["seed"] == 7


class TestRatioGate:
    """The A()-over-BWT relative latency gate: runner speed divides out,
    so it holds a tight bound where the absolute gate must stay loose."""

    @staticmethod
    def two_method_document(a_ms, bwt_ms):
        document = make_document(avg_ms=a_ms)
        document["methods"]["BWT"] = {
            "method": "BWT",
            "avg_ms": bwt_ms,
            "stats": {"rank_queries": 2500, "nodes_expanded": 600,
                      "leaves": 150},
        }
        return document

    def test_uniform_machine_slowdown_passes(self):
        baseline = self.two_method_document(4.0, 8.0)
        current = self.two_method_document(8.0, 16.0)  # 2x slower runner
        findings = compare_runs(current, baseline, latency_threshold=10.0,
                                ratio_threshold=0.10)
        assert findings == []

    def test_relative_regression_fails(self):
        baseline = self.two_method_document(4.0, 8.0)  # ratio 0.50
        current = self.two_method_document(7.0, 8.0)   # ratio 0.875
        findings = compare_runs(current, baseline, latency_threshold=10.0,
                                ratio_threshold=0.25)
        assert [f.metric for f in findings] == ["avg_ms_ratio"]
        assert findings[0].method == "A()/BWT"
        assert findings[0].baseline == pytest.approx(0.5)
        assert findings[0].current == pytest.approx(0.875)

    def test_ratio_improvement_passes(self):
        baseline = self.two_method_document(7.0, 8.0)
        current = self.two_method_document(4.0, 8.0)
        assert compare_runs(current, baseline, latency_threshold=10.0,
                            ratio_threshold=0.01) == []

    def test_skipped_when_a_method_is_absent(self):
        # make_document only carries A(): no denominator, no ratio check.
        assert compare_runs(make_document(), make_document(),
                            ratio_threshold=0.01) == []

    def test_off_by_default(self):
        baseline = self.two_method_document(4.0, 8.0)
        current = self.two_method_document(7.0, 8.0)
        findings = compare_runs(current, baseline, latency_threshold=10.0)
        assert findings == []


class TestRepeats:
    SMALL = ["--scale", "4000", "--reads", "3", "--read-length", "40"]

    def test_median_run_keeps_probe_counters_and_workload_key(self):
        single = run_ci_workload(methods=("BWT",), scale=4000, n_reads=3,
                                 read_length=40)
        tripled = run_ci_workload(methods=("BWT",), scale=4000, n_reads=3,
                                  read_length=40, repeats=3)
        # Probe counts are deterministic, so repeats must not move them.
        assert (tripled["methods"]["BWT"]["stats"]
                == single["methods"]["BWT"]["stats"])
        assert tripled["workload"]["repeats"] == 3
        assert tripled["methods"]["BWT"]["avg_ms"] > 0
        # repeats is not part of the baseline compatibility key: a
        # repeats=1 baseline still compares against a median-of-3 run.
        findings = compare_runs(tripled, single, latency_threshold=100.0,
                                probe_threshold=0.0)
        assert [f for f in findings if f.metric.startswith("stats.")] == []

    def test_non_positive_repeats_rejected(self):
        with pytest.raises(RegressionError):
            run_ci_workload(repeats=0)

    def test_cli_repeats_and_ratio_flags(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", *self.SMALL, "--repeats", "2",
                     "--json-out", str(baseline)]) == 0
        code = main(["bench", *self.SMALL, "--repeats", "2",
                     "--baseline", str(baseline), "--check-regression",
                     "--latency-threshold", "900",
                     "--ratio-threshold", "400"])
        assert code == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_cli_ratio_gate_fails_on_doctored_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", *self.SMALL,
                     "--json-out", str(baseline)]) == 0
        document = json.loads(baseline.read_text())
        # A 100x faster baseline BWT makes the current A()/BWT ratio look
        # like a huge relative regression while every absolute latency
        # *improved* or stayed put — only the ratio gate can catch it.
        document["methods"]["BWT"]["avg_ms"] *= 100
        baseline.write_text(json.dumps(document))
        code = main(["bench", *self.SMALL,
                     "--baseline", str(baseline), "--check-regression",
                     "--latency-threshold", "900",
                     "--ratio-threshold", "50"])
        assert code == 3
        assert "avg_ms_ratio" in capsys.readouterr().out

    def test_cli_rejects_bad_repeats(self, capsys):
        assert main(["bench", *self.SMALL, "--repeats", "0"]) == 2
        assert "repeats" in capsys.readouterr().err
