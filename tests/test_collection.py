"""Tests for multi-sequence collections (repro.collection)."""

import pytest

from repro.collection import SequenceCollection
from repro.errors import PatternError

from conftest import random_dna, reference_occurrences


class TestConstruction:
    def test_basic(self):
        coll = SequenceCollection({"chr1": "acagaca", "chr2": "ttacat"})
        assert coll.names == ["chr1", "chr2"]
        assert len(coll) == 2
        assert "chr1" in coll and "chrX" not in coll
        assert coll.total_length() == 13

    def test_rejects_empty_collection(self):
        with pytest.raises(PatternError):
            SequenceCollection({})

    def test_rejects_empty_record(self):
        with pytest.raises(PatternError):
            SequenceCollection({"chr1": ""})

    def test_record_access(self):
        coll = SequenceCollection({"chr1": "acagaca"})
        assert coll.record("chr1").text == "acagaca"
        with pytest.raises(KeyError):
            coll.record("chr2")


class TestSearch:
    def test_hits_across_records(self):
        coll = SequenceCollection({"chr1": "acagaca", "chr2": "ttacat"})
        hits = coll.search("aca", 0)
        assert [(name, occ.start) for name, occ in hits] == [
            ("chr1", 0), ("chr1", 4), ("chr2", 2),
        ]

    def test_no_cross_boundary_matches(self):
        # "ca|tt" would match across the records if they were concatenated.
        coll = SequenceCollection({"a": "aaca", "b": "ttaa"})
        assert coll.search("catt", 0) == []
        assert coll.count("catt", k=1) == 0

    def test_pattern_longer_than_some_records(self):
        coll = SequenceCollection({"short": "ac", "long": "acagacag"})
        hits = coll.search("acag", 0)
        assert [(n, o.start) for n, o in hits] == [("long", 0), ("long", 4)]

    def test_count(self):
        coll = SequenceCollection({"chr1": "acagaca", "chr2": "acaaca"})
        assert coll.count("aca") == 4

    def test_matches_per_record_naive(self, rng):
        records = {f"r{i}": random_dna(rng, rng.randint(20, 60)) for i in range(4)}
        coll = SequenceCollection(records)
        pattern = random_dna(rng, 6)
        for k in (0, 1, 2):
            got = [(name, occ.start, occ.mismatches) for name, occ in coll.search(pattern, k)]
            expected = [
                (name, start, mm)
                for name, seq in records.items()
                for start, mm in reference_occurrences(seq, pattern, k)
            ]
            assert got == expected

    def test_map_read_reports_record(self):
        coll = SequenceCollection({"chr1": "acagacag", "chr2": "ggggggg"})
        hits = coll.map_read("acag", 0)
        assert any(name == "chr1" and h.strand == "+" for name, h in hits)


class TestFasta:
    FASTA = """>chr1 some description
ACAG
aca
>chr2
ttacat
"""

    def test_parse(self):
        coll = SequenceCollection.from_fasta_text(self.FASTA)
        assert coll.names == ["chr1", "chr2"]
        assert coll.record("chr1").text == "acagaca"
        assert coll.record("chr2").text == "ttacat"

    def test_parse_rejects_empty(self):
        with pytest.raises(PatternError):
            SequenceCollection.from_fasta_text("no records here\n")

    def test_iter_records(self):
        coll = SequenceCollection.from_fasta_text(self.FASTA)
        assert dict(coll.iter_records()) == {"chr1": "acagaca", "chr2": "ttacat"}


class TestVerify:
    def test_clean_index_verifies(self):
        from repro import KMismatchIndex

        KMismatchIndex("acagacagttacgt").verify()

    def test_verify_after_load(self):
        from repro import KMismatchIndex

        index = KMismatchIndex.loads(KMismatchIndex("acagacagtt").dumps())
        index.verify()
