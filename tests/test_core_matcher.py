"""Tests for the public facade (repro.core.matcher.KMismatchIndex)."""

import pytest

from repro.alphabet import DNA, infer_alphabet
from repro.core.matcher import METHODS, KMismatchIndex
from repro.errors import AlphabetError, PatternError

from conftest import INTRO_PATTERN, INTRO_TARGET, random_dna, reference_occurrences


class TestConstruction:
    def test_rejects_empty_text(self):
        with pytest.raises(PatternError):
            KMismatchIndex("")

    def test_defaults_to_dna(self):
        assert KMismatchIndex("acgt").alphabet == DNA

    def test_infers_non_dna(self):
        index = KMismatchIndex("mississippi")
        assert index.alphabet == infer_alphabet("mississippi")
        assert [o.start for o in index.search("issi", 0)] == [1, 4]

    def test_text_property(self):
        assert KMismatchIndex("acgt").text == "acgt"

    def test_nbytes_positive(self):
        assert KMismatchIndex("acgt" * 50).nbytes() > 0


class TestSearch:
    def test_intro_example_all_methods(self):
        index = KMismatchIndex(INTRO_TARGET)
        expected = reference_occurrences(INTRO_TARGET, INTRO_PATTERN, 4)
        for method in METHODS:
            got = [(o.start, o.mismatches) for o in index.search(INTRO_PATTERN, 4, method=method)]
            assert got == expected, method

    def test_unknown_method(self):
        with pytest.raises(PatternError):
            KMismatchIndex("acgt").search("a", 0, method="quantum")

    def test_pattern_validated_against_alphabet(self):
        with pytest.raises(AlphabetError):
            KMismatchIndex("acgt").search("axg", 1)

    def test_count_k0_fast_path(self):
        index = KMismatchIndex("acagaca")
        assert index.count("aca") == 2
        assert index.count("tt") == 0

    def test_count_with_k(self):
        index = KMismatchIndex("acagaca")
        assert index.count("tcaca", k=2) == 2

    def test_contains(self):
        index = KMismatchIndex("acagaca")
        assert index.contains("gac")
        assert not index.contains("ttt")
        assert index.contains("ttt", k=3)

    def test_locate_exact(self):
        index = KMismatchIndex("acagaca")
        assert index.locate_exact("aca") == [0, 4]
        with pytest.raises(PatternError):
            index.locate_exact("")

    def test_search_with_stats_returns_stats(self):
        index = KMismatchIndex("acagaca")
        occs, stats = index.search_with_stats("tcaca", 2)
        assert len(occs) == 2
        assert stats.completed_paths >= 1

    def test_record_mtree_via_facade(self):
        index = KMismatchIndex("acagaca")
        index.search_with_stats("tcaca", 2, record_mtree=True)
        assert index.last_mtree is not None

    def test_methods_agree_randomly(self, rng):
        for _ in range(15):
            text = random_dna(rng, rng.randint(20, 100))
            index = KMismatchIndex(text)
            pattern = random_dna(rng, rng.randint(2, 12))
            k = rng.randint(0, 4)
            expected = reference_occurrences(text, pattern, k)
            for method in METHODS:
                got = [(o.start, o.mismatches) for o in index.search(pattern, k, method=method)]
                assert got == expected, (method, text, pattern, k)
