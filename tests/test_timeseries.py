"""Tests for the time-series store: windowed delta/rate/percentile
queries with counter-reset detection, pruning, the background sampler,
and the shared SLO-engine substrate.

The rate/percentile cases are hand-computed on synthetic snapshots —
including across a registry reset — per the acceptance criteria.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import (
    OBS,
    MetricsRegistry,
    TimeSeriesStore,
    configure_timeseries,
    get_timeseries,
)
from repro.obs.slo import SLOEngine, configure_slo_engine
from repro.obs.timeseries import configure_timeseries as _configure


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()
    # Restore the process-wide store (and the SLO engine that shares
    # it) so singleton-touching tests leave no history behind.
    configure_timeseries()
    configure_slo_engine()


def make_store(registry, capacity=None):
    return TimeSeriesStore(registry=registry, clock=lambda: 0.0,
                           capacity=capacity)


class TestCounterQueries:
    def build(self):
        """Snapshots: t=0 c=0, t=10 c=5, t=20 c=12."""
        registry = MetricsRegistry()
        store = make_store(registry)
        counter = registry.counter("requests")
        store.append(0.0, registry.to_dict())
        counter.inc(5)
        store.append(10.0, registry.to_dict())
        counter.inc(7)
        store.append(20.0, registry.to_dict())
        return registry, store

    def test_delta_is_sum_of_pair_increments(self):
        _, store = self.build()
        # (0 -> 5) + (5 -> 12) = 12
        assert store.delta("requests") == 12

    def test_rate_divides_by_covered_seconds(self):
        _, store = self.build()
        assert store.rate("requests") == pytest.approx(12 / 20.0)

    def test_window_excludes_older_increments(self):
        _, store = self.build()
        # window 9s right-edged at 20: baseline is the newest snapshot
        # at or before t=11, i.e. t=10 -> only the 5->12 increment.
        assert store.delta("requests", window_s=9, right_ts=20.0) == 7
        assert store.rate("requests", window_s=9, right_ts=20.0) == \
            pytest.approx(7 / 10.0)

    def test_delta_across_counter_reset(self):
        registry, store = self.build()
        # The registry resets (process restart / explicit reset); the
        # counter restarts from 0 and accumulates 3 by t=30.  The
        # 12 -> 3 pair must contribute 3 (the after value), not -9:
        # 5 + 7 + 3 = 15.
        registry.reset()
        registry.counter("requests").inc(3)
        store.append(30.0, registry.to_dict())
        assert store.delta("requests") == 15
        assert store.rate("requests") == pytest.approx(15 / 30.0)

    def test_labelled_series_are_queried_independently(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        store.append(0.0, registry.to_dict())
        registry.counter("q", engine="a").inc(4)
        registry.counter("q", engine="b").inc(6)
        store.append(10.0, registry.to_dict())
        assert store.delta("q", labels={"engine": "a"}) == 4
        assert store.delta("q", labels={"engine": "b"}) == 6

    def test_fewer_than_two_snapshots_is_zero(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        assert store.delta("requests") == 0.0
        assert store.rate("requests") == 0.0
        registry.counter("requests").inc(5)
        store.append(0.0, registry.to_dict())
        assert store.delta("requests") == 0.0

    def test_missing_family_is_zero(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        registry.counter("present").inc()
        store.append(0.0, registry.to_dict())
        registry.counter("present").inc()
        store.append(10.0, registry.to_dict())
        assert store.delta("absent") == 0.0


class TestGaugeQueries:
    def test_gauge_delta_is_last_minus_first(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        gauge = registry.gauge("level")
        gauge.set(5)
        store.append(0.0, registry.to_dict())
        gauge.set(9)
        store.append(10.0, registry.to_dict())
        gauge.set(2)
        store.append(20.0, registry.to_dict())
        # Levels, not increments: 2 - 5 = -3 (negative allowed).
        assert store.delta("level") == -3


class TestHistogramQueries:
    def build(self):
        """t=0 empty, t=10 observe 5, t=20 observe 50 and 60."""
        registry = MetricsRegistry()
        store = make_store(registry)
        hist = registry.histogram("lat", (1, 10, 100))
        store.append(0.0, registry.to_dict())
        hist.observe(5)
        store.append(10.0, registry.to_dict())
        hist.observe(50)
        hist.observe(60)
        store.append(20.0, registry.to_dict())
        return registry, store

    def test_delta_counts_window_observations(self):
        _, store = self.build()
        assert store.delta("lat") == 3
        assert store.delta("lat", window_s=9, right_ts=20.0) == 2

    def test_percentile_over_time_full_window(self):
        _, store = self.build()
        # Observations {5, 50, 60}; p50 rank 1.5 lands in the le=100
        # bucket (cumulative 1, 3): upper bound 100.  p1 rank 0.03
        # lands in le=10: upper bound 10.
        assert store.percentile_over_time("lat", 50) == 100.0
        assert store.percentile_over_time("lat", 1) == 10.0

    def test_percentile_over_time_windowed(self):
        _, store = self.build()
        # Window covering only the t=10 -> t=20 pair sees {50, 60}:
        # every percentile resolves to the le=100 bucket.
        assert store.percentile_over_time(
            "lat", 1, window_s=9, right_ts=20.0) == 100.0
        assert store.percentile_over_time(
            "lat", 99, window_s=9, right_ts=20.0) == 100.0

    def test_percentile_across_histogram_reset(self):
        registry, store = self.build()
        # Reset mid-run; two fresh sub-1 observations land by t=30.
        # The reset pair contributes the after payload verbatim, so the
        # window sees {5, 50, 60} + {0.5, 0.5}: count 5, p1 in le=1.
        registry.reset()
        fresh = registry.histogram("lat", (1, 10, 100))
        fresh.observe(0.5)
        fresh.observe(0.5)
        store.append(30.0, registry.to_dict())
        assert store.delta("lat") == 5
        assert store.percentile_over_time("lat", 1) == 1.0

    def test_window_histogram_merges_increments(self):
        _, store = self.build()
        merged = store.window_histogram("lat")
        assert merged is not None
        assert merged.count == 3
        assert merged.counts == [0, 1, 2, 0]

    def test_percentile_of_non_histogram_is_zero(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        registry.counter("c").inc()
        store.append(0.0, registry.to_dict())
        registry.counter("c").inc()
        store.append(10.0, registry.to_dict())
        assert store.percentile_over_time("c", 50) == 0.0


class TestWindowSelection:
    def test_short_history_uses_oldest_as_baseline(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        counter = registry.counter("c")
        counter.inc(1)
        store.append(100.0, registry.to_dict())
        counter.inc(2)
        store.append(110.0, registry.to_dict())
        # A one-hour window over 10s of history reports what it sees.
        assert store.delta("c", window_s=3600) == 2
        assert store.rate("c", window_s=3600) == pytest.approx(2 / 10.0)

    def test_right_ts_excludes_newer_snapshots(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        counter = registry.counter("c")
        store.append(0.0, registry.to_dict())
        counter.inc(5)
        store.append(10.0, registry.to_dict())
        counter.inc(100)
        store.append(20.0, registry.to_dict())
        assert store.delta("c", right_ts=10.0) == 5


class TestRetentionAndCapacity:
    def test_retention_keeps_baseline_at_left_edge(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        store.retention_s = 10.0
        for ts in (0.0, 5.0, 10.0, 20.0, 25.0):
            store.append(ts, registry.to_dict())
        # Cutoff 15: snapshots 0 and 5 drop, 10 survives as baseline.
        assert [ts for ts, _ in store._snapshots] == [10.0, 20.0, 25.0]

    def test_capacity_thins_but_keeps_oldest_and_newest(self):
        registry = MetricsRegistry()
        store = make_store(registry, capacity=3)
        for ts in range(6):
            store.append(float(ts), registry.to_dict())
        kept = [ts for ts, _ in store._snapshots]
        assert len(kept) == 3
        assert kept[0] == 0.0
        assert kept[-1] == 5.0

    def test_capacity_floor_is_two(self):
        store = make_store(MetricsRegistry(), capacity=1)
        assert store.capacity == 2


class TestSampling:
    def test_sample_snapshots_registry(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        store = make_store(registry)
        ts, payload = store.sample(now=42.0)
        assert ts == 42.0
        assert payload["c"]["value"] == 7
        assert store.latest() == (42.0, payload)
        assert store.total_sampled == 1

    def test_private_registry_gets_no_process_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        store = make_store(registry)
        _, payload = store.sample(now=0.0)
        assert "process.uptime_s" not in payload

    def test_obs_registry_sample_refreshes_process_gauges(self):
        OBS.enable()
        store = TimeSeriesStore()  # defaults to OBS.metrics
        _, payload = store.sample()
        assert payload["process.uptime_s"]["value"] > 0
        assert "process.rss_bytes" in payload

    def test_background_sampler_collects_and_stops(self):
        registry = MetricsRegistry()
        store = TimeSeriesStore(registry=registry, interval_s=0.01)
        store.start()
        deadline = time.monotonic() + 5
        while store.total_sampled < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        store.stop()
        assert store.total_sampled >= 2
        sampled = store.total_sampled
        time.sleep(0.05)
        assert store.total_sampled == sampled  # really stopped

    def test_to_dict_summary(self):
        registry = MetricsRegistry()
        store = make_store(registry)
        store.append(1.0, registry.to_dict())
        store.append(2.0, registry.to_dict())
        doc = store.to_dict()
        assert doc["n_snapshots"] == 2
        assert doc["oldest_ts"] == 1.0
        assert doc["newest_ts"] == 2.0


class TestProcessWideStore:
    def test_get_returns_singleton(self):
        assert get_timeseries() is get_timeseries()

    def test_configure_replaces_singleton(self):
        registry = MetricsRegistry()
        store = configure_timeseries(registry=registry, capacity=8)
        assert get_timeseries() is store
        assert store.capacity == 8
        assert store.registry() is registry

    def test_configure_aliases_match(self):
        assert _configure is configure_timeseries


class TestSLOSharedSubstrate:
    def test_engine_feeds_from_given_store(self):
        registry = MetricsRegistry()
        clock = lambda: 1000.0  # noqa: E731
        store = TimeSeriesStore(registry=registry, clock=clock)
        engine = SLOEngine(registry=registry, clock=clock, store=store)
        assert engine.store is store
        # The engine pins the store's retention to its slow window.
        assert store.retention_s == engine.rules.policy.slow_s
        engine.tick(now=1000.0)
        # The tick's snapshot landed in the shared store, where
        # windowed queries can see it.
        assert len(store) == 1
        assert engine._snapshots is store._snapshots

    def test_process_wide_engine_shares_process_wide_store(self):
        engine = configure_slo_engine()
        assert engine.store is get_timeseries()
